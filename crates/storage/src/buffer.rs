//! Buffer-pool cache simulator.
//!
//! Section 3(c) of the paper singles out disk-page caching as a major source
//! of cost uncertainty: "the pattern of caching the disk pages is influenced
//! by many asynchronous processes totally unrelated to a given retrieval."
//! This module reproduces exactly that phenomenon. Data structures
//! (heap tables, B-trees, temp tables) route every logical page touch
//! through [`BufferPool::access`], which classifies it as hit or miss
//! against a capacity-bounded cache and charges the caller's
//! [`crate::CostMeter`] accordingly. [`BufferPool::perturb`] injects the
//! "asynchronous interference" the paper describes.
//!
//! # Eviction policy
//!
//! The replacement policy is **midpoint-insertion LRU**
//! ([`EvictionPolicy::Midpoint`], the default): each shard's LRU list is
//! split into a young head-side prefix and an old tail-side suffix holding
//! at least 3/8 of the current list length
//! ([`EvictionPolicy::old_target`]). Misses insert at the old-sublist head
//! (the midpoint); only a *second* touch promotes a page to the young head;
//! eviction always takes the tail, which is always old. A beyond-RAM
//! sequential scan therefore churns the old sublist and cannot flush the
//! re-referenced working set riding the young sublist. Classic LRU
//! ([`EvictionPolicy::Lru`]) is the degenerate `old_target == len`
//! configuration — same code path, every page old, midpoint == head.
//! [`crate::ReferencePool`] is the executable specification of both
//! configurations; the differential proptests pin equivalence.
//!
//! # Hot-path layout
//!
//! Every simulated page touch goes through this module, so the residency
//! check is the innermost loop of the whole engine. The pool therefore keys
//! pages by a packed `u64` ([`PageId::pack`]) and stores them in
//! open-addressed tables (Fibonacci hashing, linear probing, backward-shift
//! deletion) whose entries double as intrusive LRU links — one array, no
//! `HashMap`, no separate slab, at most one cache line per probe step. Each
//! table is sized to at most 50% load, and slot vacancy is encoded in the
//! `prev` link (`FREE`) so no page key needs to be reserved as a sentinel.
//!
//! # Sharding
//!
//! The pool is shared by every session of one database instance, so it is
//! lock-striped: residency state lives in `N` power-of-two shards, each an
//! independent open-addressed table + LRU list behind its own mutex. A page
//! is routed to a shard by Fibonacci-hashing its packed key with the low
//! [`BLOCK_PAGES`] page bits masked off, so a sequential 64-page run stays
//! in one shard and [`BufferPool::access_run`] takes one lock per block
//! rather than one per page. Disjoint working sets therefore never contend;
//! contended acquisitions are counted in [`BufferPool::contention`].
//!
//! [`shared_pool`] builds a **single-shard** pool: with one shard the pool
//! is one global true-LRU, observably identical (hit/miss sequence,
//! eviction order, counters) to the pre-sharding pool — this is what the
//! deterministic tests, goldens and the simulation harness use. Multi-shard
//! pools ([`shared_pool_sharded`]) partition capacity evenly across shards,
//! which changes *which* pages are evicted under pressure (each shard runs
//! its own LRU) but preserves every conservation property: a page is
//! resident in exactly one shard, and hits + misses always equals accesses.
//!
//! # Lock-free hit path
//!
//! A resident-page hit used to pay an uncontended shard lock plus two
//! counter bumps — the "hot-hit tax". Now each shard pairs its
//! mutex-guarded table with a `ProbeMirror`: a seqlock-versioned array
//! of atomic key words mirroring slot occupancy, readable without the
//! lock. [`BufferPool::access`] first probes the mirror optimistically:
//! read the version (odd means a writer is mid-mutation — fall back), walk
//! the probe chain, then re-read the version and accept the answer only if
//! it is unchanged. All residency mutations run under the shard mutex and
//! bump the version to odd before moving any key and back to even after
//! (`ProbeMirror::begin_write`/`ProbeMirror::end_write`), so a torn
//! read can never validate. Crucially, a locked-path *hit* only splices
//! LRU links — keys do not move — so pure-hit traffic never invalidates
//! concurrent optimistic readers.
//!
//! A validated optimistic hit defers its two former under-lock effects to
//! the per-thread, per-pool touch buffer in `crate::touch`: the LRU
//! splice is recorded as a pending *touch* and the pool-wide hit tally as
//! a pending *count*, both absorbed at batch boundaries by
//! [`BufferPool::flush_session`]. The caller's [`crate::CostMeter`] is
//! still charged per access — mid-run cost totals feed the competition's
//! kill rules, so their timing must not change.
//!
//! **Deferred-promotion invariant.** Hit/miss classification depends only
//! on residency, and residency changes only under shard locks. Every
//! locked entry point (a miss, a batched run, `perturb`, `clear`) and
//! every counter read first replays the calling thread's pending touches
//! in access order, so under single-threaded use the pool is *observably
//! identical* to [`crate::ReferencePool`] — the differential proptests
//! prove identical hit/miss sequences, counters, residency and
//! bit-identical cost totals. Under concurrency, another thread's pending
//! promotions may land up to `crate::touch::TOUCH_CAP` accesses late,
//! which can only make a recently-hit page look slightly colder to an
//! eviction decision; classification, counter conservation and cost
//! totals are unaffected. Pending *counts* are absorbed on every exit
//! path, including thread teardown, via the touch buffer's drop guard;
//! only pending *promotions* may be dropped when a thread exits.
//!
//! Cost attribution is the caller's: every charging entry point takes the
//! meter to charge, so concurrent sessions sharing the pool each pay for
//! exactly their own page touches.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::cost::{CostConfig, CostMeter, SharedCost};
use crate::error::StorageError;
use crate::fault::FaultPolicy;
use crate::mirror::{ProbeMirror, FIB, MIRROR_VACANT};
use crate::touch::{self, DeferredCounters, Recorded};

/// Shared handle to one [`BufferPool`]. All storage structures of one
/// database instance (heap tables, indexes, temp tables) share a pool so
/// they compete for the same simulated memory, as in the paper; sessions on
/// different OS threads clone the `Arc`.
pub type SharedPool = Arc<BufferPool>;

/// Creates a fresh shared pool with a **single shard** — fully
/// deterministic, observably identical to the pre-sharding pool. Use
/// [`shared_pool_sharded`] for multi-session throughput.
pub fn shared_pool(capacity: usize, cost: SharedCost) -> SharedPool {
    Arc::new(BufferPool::new(capacity, cost))
}

/// Creates a fresh shared pool with `shards` lock stripes (rounded up to a
/// power of two).
pub fn shared_pool_sharded(capacity: usize, shards: usize, cost: SharedCost) -> SharedPool {
    Arc::new(BufferPool::with_shards(capacity, shards, cost))
}

/// Pages per shard-routing block: runs of this many consecutive pages of
/// one file always land in the same shard, so batched sequential access
/// takes one lock per block.
pub const BLOCK_PAGES: u32 = 64;

/// Immutable snapshot of a pool's lifetime hit/miss counters.
///
/// Per-query observability takes one snapshot before the run and one after;
/// [`PoolStats::since`] yields the delta the query itself caused. (Under
/// concurrency the pool-wide delta includes other sessions' traffic —
/// per-session accounting reads the session's own [`crate::CostMeter`]
/// instead.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Buffer hits (page found resident).
    pub hits: u64,
    /// Buffer misses (simulated physical read).
    pub misses: u64,
}

impl PoolStats {
    /// Hits and misses accumulated between `earlier` and `self`.
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }
}

/// Identifies one storage file (a heap table, one index, a temp area).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Identifies one page across all files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    /// Owning file.
    pub file: FileId,
    /// Page number within the file.
    pub page: u32,
}

impl PageId {
    /// Creates a page id.
    pub fn new(file: FileId, page: u32) -> Self {
        PageId { file, page }
    }

    /// Packs the id into one word: `file` in the high 32 bits, `page` in
    /// the low 32. Every `(file, page)` pair maps to a distinct `u64`, so
    /// the pool can key on a single integer.
    #[inline]
    pub fn pack(self) -> u64 {
        ((self.file.0 as u64) << 32) | self.page as u64
    }

    /// Inverse of [`PageId::pack`].
    #[inline]
    pub fn unpack(key: u64) -> Self {
        PageId::new(FileId((key >> 32) as u32), key as u32)
    }
}

/// Outcome of a page access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Page was resident; charged [`crate::CostConfig::cache_hit`].
    Hit,
    /// Page was faulted in; charged [`crate::CostConfig::io_read`].
    Miss,
}

/// Replacement policy of a [`BufferPool`] (see the module docs).
///
/// Both variants run the same midpoint machinery; they differ only in the
/// old-sublist target length, so the differential proptests cover both
/// with one model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Classic true-LRU: the old sublist spans the whole list, so the
    /// midpoint is the head and insert/promote/evict reduce to textbook
    /// LRU. Kept as the baseline the beyond-RAM bench measures against.
    Lru,
    /// Midpoint insertion (the default): misses enter at the boundary of
    /// the old suffix (3/8 of the current list length); promotion to the
    /// young prefix requires a second touch. Scan-resistant.
    #[default]
    Midpoint,
}

impl EvictionPolicy {
    /// The old-sublist target length `T` for a list currently holding
    /// `len` pages: the whole list for [`EvictionPolicy::Lru`], 3/8 of it
    /// (at least one page — the eviction victim must be old) for
    /// [`EvictionPolicy::Midpoint`]. Derived from the *current* length,
    /// not the capacity, so a working set re-referenced while the pool is
    /// still filling turns young and is already protected when beyond-RAM
    /// pressure arrives.
    pub fn old_target(self, len: usize) -> usize {
        match self {
            EvictionPolicy::Lru => len,
            EvictionPolicy::Midpoint => {
                if len == 0 {
                    0
                } else {
                    (len * 3 / 8).max(1)
                }
            }
        }
    }
}

/// `prev` value marking a vacant slot. Never a valid slot index (tables are
/// far smaller than `u32::MAX` entries).
const FREE: u32 = u32::MAX;
/// `prev`/`next` value terminating the LRU list. Distinct from [`FREE`] so
/// the list head is not mistaken for a vacant slot.
const NIL: u32 = u32::MAX - 1;

/// Generator for [`BufferPool::id`] — the key per-thread touch buffers use
/// to tell pools apart.
static POOL_IDS: AtomicU64 = AtomicU64::new(1);

/// One open-addressed table slot: the packed page key plus the intrusive
/// LRU links. `prev == FREE` means the slot is vacant; occupied slots have
/// `prev` either a slot index or [`NIL`] (list head). `old` is the
/// midpoint-policy sublist label (see [`EvictionPolicy`]).
#[derive(Debug, Clone, Copy)]
struct Slot {
    key: u64,
    prev: u32,
    next: u32,
    old: bool,
}

const VACANT: Slot = Slot {
    key: 0,
    prev: FREE,
    next: NIL,
    old: false,
};

/// Result of one table walk: the key's slot, or the FREE slot terminating
/// its probe chain (which is the insertion point while the table is
/// unchanged).
enum Probe {
    Hit(usize),
    Miss(usize),
}

/// One lock stripe: the mutex-guarded open-addressed true-LRU table plus
/// its lock-free probe mirror.
#[derive(Debug)]
struct Shard {
    state: Mutex<PoolShard>,
    mirror: ProbeMirror,
}

impl Shard {
    fn new(capacity: usize, policy: EvictionPolicy) -> Self {
        let state = PoolShard::new(capacity, policy);
        let mirror = ProbeMirror::new(state.slots.len());
        Shard {
            state: Mutex::new(state),
            mirror,
        }
    }
}

/// Mutex-guarded state of one lock stripe: an independent open-addressed
/// true-LRU table (the PR-1 hot-path layout, unchanged) plus its lifetime
/// hit/miss counters. Every mutation that moves a key also updates the
/// shard's [`ProbeMirror`], passed in by the caller.
#[derive(Debug)]
struct PoolShard {
    capacity: usize,
    /// Replacement policy — determines the old-sublist target length
    /// [`PoolShard::rebalance`] restores (see [`EvictionPolicy`]).
    policy: EvictionPolicy,
    slots: Box<[Slot]>,
    mask: usize,
    shift: u32,
    len: usize,
    head: u32, // most recently used
    tail: u32, // least recently used
    /// First old slot walking head→tail, or [`NIL`] when the old sublist
    /// is empty. Old slots always form a contiguous tail suffix.
    mid: u32,
    old_len: usize,
    hits: u64,
    misses: u64,
}

impl PoolShard {
    fn new(capacity: usize, policy: EvictionPolicy) -> Self {
        assert!(capacity >= 1, "shard capacity must be at least 1");
        assert!(
            capacity < (NIL as usize) / 2,
            "shard capacity exceeds slot index range"
        );
        // ≤50% load keeps linear-probe runs short; power of two lets the
        // Fibonacci hash reduce by shift instead of modulo.
        let table_len = (capacity * 2).next_power_of_two().max(4);
        PoolShard {
            capacity,
            policy,
            slots: vec![VACANT; table_len].into_boxed_slice(),
            mask: table_len - 1,
            shift: 64 - table_len.trailing_zeros(),
            len: 0,
            head: NIL,
            tail: NIL,
            mid: NIL,
            old_len: 0,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(FIB) >> self.shift) as usize
    }

    /// One probe resolving `key` to either its slot (`Hit`) or the FREE
    /// slot ending its probe chain (`Miss`) — the single table walk that
    /// serves both classification and insertion. Linear probing; terminates
    /// because the table is at most half full.
    ///
    /// SAFETY of the unchecked indexing here and in
    /// [`PoolShard::unlink`]/[`PoolShard::push_front`]: every index is
    /// either reduced by `& self.mask` or read from a stored LRU link, and
    /// the module maintains the invariant that `mask == slots.len() - 1`
    /// (a power of two) and that every non-[`NIL`]/[`FREE`] link is a valid
    /// slot index. `debug_assert!`s guard the invariant in debug builds.
    #[inline]
    fn probe(&self, key: u64) -> Probe {
        let mut i = self.home(key);
        loop {
            debug_assert!(i < self.slots.len());
            // SAFETY: `i` comes from `home` (reduced by the table mask) or
            // from the `& self.mask` wrap below, and `mask == slots.len()-1`
            // with a power-of-two length, so `i < slots.len()` always.
            let s = unsafe { self.slots.get_unchecked(i) };
            if s.prev == FREE {
                return Probe::Miss(i);
            }
            if s.key == key {
                return Probe::Hit(i);
            }
            i = (i + 1) & self.mask;
        }
    }

    #[inline]
    fn slot_mut(&mut self, i: usize) -> &mut Slot {
        debug_assert!(i < self.slots.len());
        // SAFETY: callers pass `i` from `probe` results or stored LRU links,
        // both maintained `< slots.len()` by this module's invariant (see
        // the `probe` doc comment).
        unsafe { self.slots.get_unchecked_mut(i) }
    }

    /// Classifies `key` and updates residency/recency (no counters, no
    /// charges — the callers batch those).
    #[inline]
    fn touch(&mut self, key: u64, mirror: &ProbeMirror) -> Access {
        match self.probe(key) {
            Probe::Hit(i) => {
                self.hit_promote(i);
                Access::Hit
            }
            Probe::Miss(f) => {
                self.place(key, f, mirror);
                Access::Miss
            }
        }
    }

    /// The hit path: moves slot `i` to the global MRU head as a young
    /// entry and restores the sublist invariant. Re-reference is the only
    /// way into the young sublist (see [`EvictionPolicy`]). Pure link/flag
    /// surgery — keys never move, so no mirror writer section is needed.
    #[inline]
    fn hit_promote(&mut self, i: usize) {
        let iu = i as u32;
        if self.slot_mut(i).old {
            self.slot_mut(i).old = false;
            self.old_len -= 1;
            if self.mid == iu {
                self.mid = self.slot_mut(i).next;
            }
        }
        if self.head != iu {
            self.unlink(i);
            self.push_front(i);
        }
        self.rebalance();
    }

    /// Restores `old_len >= policy.old_target(len)` by demoting young-tail
    /// entries into the old sublist (re-labelled in place, never
    /// repositioned). One-sided on purpose: the old sublist may *exceed*
    /// its target — misses stay old until genuinely re-referenced — and
    /// only a hit's promotion can shrink it, so the bound caps the young
    /// sublist at `len - target` without ever promoting a page the
    /// workload did not touch twice.
    #[inline]
    fn rebalance(&mut self) {
        let target = self.policy.old_target(self.len);
        while self.old_len < target {
            // Demote the young entry adjacent to the boundary (the young
            // tail) into the old sublist.
            let i = if self.mid == NIL {
                self.tail
            } else {
                self.slot_mut(self.mid as usize).prev
            };
            debug_assert_ne!(i, NIL, "demote with no young entry");
            self.slot_mut(i as usize).old = true;
            self.mid = i;
            self.old_len += 1;
        }
    }

    /// Replays one deferred touch: promotes `key` to MRU if still
    /// resident, silently skips it otherwise (the page may have been
    /// evicted or cleared since the optimistic hit recorded it).
    #[inline]
    fn promote_if_resident(&mut self, key: u64) {
        if let Probe::Hit(i) = self.probe(key) {
            self.hit_promote(i);
        }
    }

    /// Replays one deferred touch using the slot the mirror probe saw the
    /// key in. In the common case — the page has not moved since the
    /// optimistic hit — the residency check is a single compare and the
    /// probe walk is skipped entirely. A stale slot (the page was evicted
    /// and the slot reused, or the key re-faulted elsewhere after a
    /// backward shift) fails the compare and degrades to
    /// [`PoolShard::promote_if_resident`], which re-probes; semantics are
    /// identical either way.
    #[inline]
    fn promote_at(&mut self, key: u64, slot: u32) {
        let i = slot as usize;
        if i < self.slots.len() {
            let s = *self.slot_mut(i);
            if s.prev != FREE && s.key == key {
                self.hit_promote(i);
                return;
            }
        }
        self.promote_if_resident(key);
    }

    fn contains(&self, key: u64) -> bool {
        matches!(self.probe(key), Probe::Hit(_))
    }

    fn clear(&mut self, mirror: &ProbeMirror) {
        mirror.begin_write();
        self.slots.fill(VACANT);
        mirror.fill_vacant();
        self.head = NIL;
        self.tail = NIL;
        self.mid = NIL;
        self.old_len = 0;
        self.len = 0;
        mirror.end_write();
    }

    /// Faults `key` in without recency update if already resident and
    /// without any counters — the perturbation path.
    fn fault_in_if_absent(&mut self, key: u64, mirror: &ProbeMirror) {
        if let Probe::Miss(f) = self.probe(key) {
            self.place(key, f, mirror);
        }
    }

    /// Single insertion path: evicts the LRU page if full, claims a vacant
    /// slot for `key`, and links it at the MRU end. `key` must not be
    /// resident and `f` must be the FREE slot terminating its probe chain
    /// (as returned by [`PoolShard::probe`]). Access misses, batched-run
    /// misses and [`BufferPool::perturb`] faults all go through here.
    /// The entire mutation — eviction, backward shift, claim — runs inside
    /// one mirror writer section.
    fn place(&mut self, key: u64, f: usize, mirror: &ProbeMirror) {
        mirror.begin_write();
        let mut slot = f;
        if self.len == self.capacity {
            let hole = self.evict_lru(mirror);
            // Eviction vacates exactly one slot. If it lies on `key`'s
            // probe chain — cyclically in `[home, f)` — then inserting at
            // `f` would leave a FREE gap that terminates lookups early, so
            // the new entry claims the hole instead. Either way the probe
            // from the classification walk is reused, not repeated.
            let home = self.home(key);
            let in_chain = if home <= f {
                hole >= home && hole < f
            } else {
                hole >= home || hole < f
            };
            if in_chain {
                slot = hole;
            }
        }
        debug_assert_eq!(self.slot_mut(slot).prev, FREE, "place on an occupied slot");
        self.slot_mut(slot).key = key;
        mirror.set(slot, key);
        self.len += 1;
        self.link_at_mid(slot);
        self.rebalance();
        mirror.end_write();
    }

    /// Links the claimed slot `i` just above the old-sublist head (the
    /// midpoint) and marks it old — the miss insertion position of the
    /// midpoint policy. With an empty old sublist the midpoint is the tail
    /// end, so the entry is appended there. Like [`PoolShard::push_front`],
    /// this is what marks a claimed slot occupied (`prev` becomes
    /// non-[`FREE`]: either a slot index or [`NIL`]).
    #[inline]
    fn link_at_mid(&mut self, i: usize) {
        let iu = i as u32;
        self.slot_mut(i).old = true;
        if self.mid == NIL {
            // Old sublist empty: the midpoint is the list's back.
            let tail = self.tail;
            let s = self.slot_mut(i);
            s.prev = tail;
            s.next = NIL;
            if tail == NIL {
                self.head = iu;
            } else {
                self.slot_mut(tail as usize).next = iu;
            }
            self.tail = iu;
        } else {
            let mid = self.mid;
            let prev = self.slot_mut(mid as usize).prev;
            {
                let s = self.slot_mut(i);
                s.prev = prev;
                s.next = mid;
            }
            self.slot_mut(mid as usize).prev = iu;
            if prev == NIL {
                self.head = iu;
            } else {
                self.slot_mut(prev as usize).next = iu;
            }
        }
        self.mid = iu;
        self.old_len += 1;
    }

    /// Evicts the LRU page and returns the table slot left vacant after
    /// backward-shift compaction. Caller must be inside a mirror writer
    /// section (only [`PoolShard::place`] calls this).
    fn evict_lru(&mut self, mirror: &ProbeMirror) -> usize {
        debug_assert_ne!(self.tail, NIL, "evict from empty shard");
        let i = self.tail as usize;
        debug_assert!(self.slots[i].old, "the tail is always an old page");
        self.slot_mut(i).old = false;
        self.old_len -= 1;
        if self.mid == self.tail {
            self.mid = NIL; // the tail was the only old entry
        }
        self.unlink(i);
        self.len -= 1;
        self.remove_slot(i, mirror)
    }

    /// Detaches slot `i` from the LRU list (slot stays occupied).
    #[inline]
    fn unlink(&mut self, i: usize) {
        let Slot { prev, next, .. } = *self.slot_mut(i);
        if prev == NIL {
            self.head = next;
        } else {
            self.slot_mut(prev as usize).next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slot_mut(next as usize).prev = prev;
        }
    }

    /// Links slot `i` at the MRU end. Also what marks a claimed slot
    /// occupied: it overwrites `prev` with a non-[`FREE`] value.
    #[inline]
    fn push_front(&mut self, i: usize) {
        let iu = i as u32;
        let head = self.head;
        let s = self.slot_mut(i);
        s.prev = NIL;
        s.next = head;
        if head == NIL {
            self.tail = iu;
        } else {
            self.slot_mut(head as usize).prev = iu;
        }
        self.head = iu;
    }

    /// Vacates slot `i` (already unlinked from the LRU list) by the
    /// backward-shift technique: entries displaced past `i` by linear
    /// probing are moved into the hole so lookups never need tombstones.
    /// Moved entries drag their LRU links along via [`PoolShard::relink`]
    /// and their mirror words along via [`ProbeMirror::set`]. Returns the
    /// slot that ends up vacant once the shift cascade settles. Caller
    /// must be inside a mirror writer section.
    fn remove_slot(&mut self, mut i: usize, mirror: &ProbeMirror) -> usize {
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            let sj = *self.slot_mut(j);
            if sj.prev == FREE {
                break;
            }
            let h = self.home(sj.key);
            // The entry at `j` may stay iff its home `h` lies cyclically in
            // `(i, j]`; otherwise the hole at `i` would break its probe
            // chain, so it moves into the hole.
            let stays = if j > i {
                h > i && h <= j
            } else {
                h > i || h <= j
            };
            if stays {
                continue;
            }
            *self.slot_mut(i) = sj;
            mirror.set(i, sj.key);
            self.relink(i);
            if self.mid == j as u32 {
                // `mid` is a slot-index pointer like the LRU links: when
                // the entry it names moves, it moves with it.
                self.mid = i as u32;
            }
            i = j;
        }
        self.slot_mut(i).prev = FREE;
        mirror.set(i, MIRROR_VACANT);
        i
    }

    /// Repoints the LRU neighbours of the entry now living in slot `i`
    /// (after a backward-shift move changed its slot index).
    fn relink(&mut self, i: usize) {
        let Slot { prev, next, .. } = *self.slot_mut(i);
        let iu = i as u32;
        if prev == NIL {
            self.head = iu;
        } else {
            self.slot_mut(prev as usize).next = iu;
        }
        if next == NIL {
            self.tail = iu;
        } else {
            self.slot_mut(next as usize).prev = iu;
        }
    }
}

/// A capacity-bounded, lock-striped true-LRU page cache that charges the
/// caller's [`crate::CostMeter`].
///
/// The pool stores no page bytes — the in-memory data structures own their
/// data. What the pool simulates is the *cost* of residency: which logical
/// pages would have been in memory, and therefore whether an access is a
/// physical I/O. This keeps the experiments faithful to the paper's
/// I/O-dominated cost model while remaining deterministic.
///
/// All methods take `&self`; the pool is `Send + Sync` and is shared across
/// session threads via [`SharedPool`].
#[derive(Debug)]
pub struct BufferPool {
    /// Process-unique instance id keying the per-thread touch buffers.
    id: u64,
    /// The database-default meter (sessions carry their own; this one backs
    /// load-time work and single-session callers).
    cost: SharedCost,
    shards: Box<[Shard]>,
    /// log2(number of shards); shard routing shifts by `64 - shard_bits`.
    shard_bits: u32,
    capacity: usize,
    /// Count of shard-lock acquisitions that found the lock held.
    contention: AtomicU64,
    /// Absorption target for the per-thread deferred hit tallies; `Arc`'d
    /// so a thread outliving the pool can still absorb safely.
    deferred: Arc<DeferredCounters>,
    /// Fast-path flag: fault checks are skipped entirely unless armed.
    fault_armed: AtomicBool,
    fault: Mutex<Option<FaultPolicy>>,
    /// Pages modified since the last checkpoint write-back. A sorted set
    /// (not per-shard) because it is touched only on the cold write path;
    /// reads never mark. Eviction ignores it: page *bytes* live in the
    /// owning data structures, so evicting a dirty page loses residency,
    /// never data — write-back is driven by checkpoints, not eviction.
    dirty: Mutex<BTreeSet<u64>>,
    /// Sequential read-ahead switch, consulted by heap scans before they
    /// build a prefetch window. On by default; benchmarks flip it off to
    /// measure the unbatched baseline.
    read_ahead: AtomicBool,
    /// Read-ahead windows issued (each one batched store read).
    prefetch_runs: AtomicU64,
    /// Frames fetched early by read-ahead windows.
    prefetched_pages: AtomicU64,
    /// Prefetched frames later consumed by the miss they anticipated;
    /// `prefetched_pages - consumed` is the wasted-prefetch count.
    prefetch_consumed: AtomicU64,
}

/// Point-in-time copy of a pool's read-ahead counters.
///
/// Prefetch lives *outside* the residency simulation — prefetched frames
/// are not admitted into the LRU until their miss actually happens — so
/// these counters are kept apart from [`PoolStats`] and never affect
/// hit/miss equivalence with the reference model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefetchStats {
    /// Read-ahead windows issued (batched store reads).
    pub runs: u64,
    /// Frames fetched early across all windows.
    pub prefetched_pages: u64,
    /// Prefetched frames consumed by the miss they anticipated.
    pub consumed_pages: u64,
}

impl PrefetchStats {
    /// Frames fetched ahead but never consumed (the scan ended, the page
    /// turned dirty, or another session faulted it in first).
    pub fn unused_pages(&self) -> u64 {
        self.prefetched_pages.saturating_sub(self.consumed_pages)
    }

    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &PrefetchStats) -> PrefetchStats {
        PrefetchStats {
            runs: self.runs - earlier.runs,
            prefetched_pages: self.prefetched_pages - earlier.prefetched_pages,
            consumed_pages: self.consumed_pages - earlier.consumed_pages,
        }
    }
}

impl BufferPool {
    /// Creates a single-shard pool that can hold `capacity` pages
    /// (`capacity >= 1`) — the deterministic configuration.
    pub fn new(capacity: usize, cost: SharedCost) -> Self {
        Self::with_shards(capacity, 1, cost)
    }

    /// Creates a pool striped over `shards` locks (rounded up to a power of
    /// two) under the default [`EvictionPolicy::Midpoint`] policy. Total
    /// capacity is split evenly; every shard holds at least one page.
    pub fn with_shards(capacity: usize, shards: usize, cost: SharedCost) -> Self {
        Self::with_policy(capacity, shards, EvictionPolicy::default(), cost)
    }

    /// Creates a pool with an explicit eviction policy, applied per shard
    /// (each shard runs its own midpoint boundary over its own LRU list,
    /// matching a per-shard [`crate::ReferencePool`] built the same way).
    pub fn with_policy(
        capacity: usize,
        shards: usize,
        policy: EvictionPolicy,
        cost: SharedCost,
    ) -> Self {
        assert!(capacity >= 1, "buffer pool capacity must be at least 1");
        assert!(shards >= 1, "buffer pool needs at least one shard");
        let n = shards.next_power_of_two();
        let per_shard = capacity.div_ceil(n).max(1);
        let shards: Vec<Shard> = (0..n).map(|_| Shard::new(per_shard, policy)).collect();
        BufferPool {
            // Relaxed: unique-id counter; no ordering with other memory.
            id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
            cost,
            shards: shards.into_boxed_slice(),
            shard_bits: n.trailing_zeros(),
            capacity: per_shard * n,
            contention: AtomicU64::new(0),
            deferred: Arc::new(DeferredCounters::default()),
            fault_armed: AtomicBool::new(false),
            fault: Mutex::new(None),
            dirty: Mutex::new(BTreeSet::new()),
            read_ahead: AtomicBool::new(true),
            prefetch_runs: AtomicU64::new(0),
            prefetched_pages: AtomicU64::new(0),
            prefetch_consumed: AtomicU64::new(0),
        }
    }

    /// Enables or disables sequential read-ahead for scans over this pool.
    pub fn set_read_ahead(&self, enabled: bool) {
        // Relaxed: an independent on/off flag; readers only need to see
        // the value eventually, nothing is published under it.
        self.read_ahead.store(enabled, Ordering::Relaxed);
    }

    /// True when sequential scans should issue read-ahead windows.
    pub fn read_ahead_enabled(&self) -> bool {
        // Relaxed: see `set_read_ahead`.
        self.read_ahead.load(Ordering::Relaxed)
    }

    /// Records one issued read-ahead window of `pages` frames.
    pub fn note_prefetch(&self, pages: u64) {
        // Relaxed: statistical tallies, same independent-counter argument
        // as `contention`; no reader infers other state from them.
        self.prefetch_runs.fetch_add(1, Ordering::Relaxed);
        self.prefetched_pages.fetch_add(pages, Ordering::Relaxed);
    }

    /// Records one prefetched frame consumed by the miss it anticipated.
    pub fn note_prefetch_consumed(&self) {
        // Relaxed: see `note_prefetch`.
        self.prefetch_consumed.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of the read-ahead counters.
    pub fn prefetch_stats(&self) -> PrefetchStats {
        // Relaxed: monotonic tally snapshot; exact under a quiesced pool,
        // statistically consistent under concurrency like `PoolStats`.
        PrefetchStats {
            runs: self.prefetch_runs.load(Ordering::Relaxed),
            prefetched_pages: self.prefetched_pages.load(Ordering::Relaxed),
            consumed_pages: self.prefetch_consumed.load(Ordering::Relaxed),
        }
    }

    /// Installs (or with `None`, removes) a read-fault injection policy.
    /// Only the fallible [`BufferPool::try_access`]/
    /// [`BufferPool::try_access_run`] path consults it. The policy is
    /// global to the pool (one mutex, shared by all shards): its fault
    /// sequence is a function of the order reads reach it, which is
    /// deterministic exactly when the access stream is.
    pub fn set_fault_policy(&self, policy: Option<FaultPolicy>) {
        let mut guard = lock(&self.fault);
        self.fault_armed.store(policy.is_some(), Ordering::Release);
        *guard = policy;
    }

    /// A copy of the installed fault policy, if any (for its counters).
    pub fn fault_policy(&self) -> Option<FaultPolicy> {
        lock(&self.fault).clone()
    }

    /// Number of pages the pool can hold (summed over shards).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lock stripes.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of pages currently resident (sums shards; a racing snapshot
    /// under concurrency). Unaffected by deferred touches — promotions
    /// never change residency — so no flush is needed here.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(&s.state).len).sum()
    }

    /// True if no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The database-default cost meter. Sessions and background stages
    /// charge their own meters; this is the fallback for load-time and
    /// single-session work.
    pub fn cost(&self) -> &SharedCost {
        &self.cost
    }

    /// The cost weights in force (for estimate formulas).
    pub fn cost_config(&self) -> CostConfig {
        self.cost.config()
    }

    /// Lifetime hit count (summed over shards).
    pub fn hits(&self) -> u64 {
        self.stats().hits
    }

    /// Lifetime miss count (summed over shards).
    pub fn misses(&self) -> u64 {
        self.stats().misses
    }

    /// Shard-lock acquisitions that found the lock already held — the
    /// contention signal reported by the throughput benchmark.
    pub fn contention(&self) -> u64 {
        // Relaxed: statistical counter read; orders against nothing.
        self.contention.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the hit/miss counters, for per-query deltas.
    /// Flushes the calling thread's deferred state first, so a
    /// single-threaded caller always reads exact values.
    pub fn stats(&self) -> PoolStats {
        self.flush_session();
        let mut stats = PoolStats::default();
        for shard in self.shards.iter() {
            let g = lock(&shard.state);
            stats.hits += g.hits;
            stats.misses += g.misses;
        }
        stats.hits += self.deferred.total();
        stats
    }

    /// The shard `page` routes to — exposed so differential tests can
    /// project an access sequence onto per-shard reference models.
    pub fn shard_of(&self, page: PageId) -> usize {
        self.shard_index(page.pack())
    }

    /// Routes a packed page key to its shard. The low [`BLOCK_PAGES`] page
    /// bits are masked off before hashing so sequential runs stay in one
    /// shard; the remaining bits are Fibonacci-hashed so files and blocks
    /// spread evenly across stripes.
    #[inline]
    fn shard_index(&self, key: u64) -> usize {
        if self.shard_bits == 0 {
            return 0;
        }
        ((key / BLOCK_PAGES as u64).wrapping_mul(FIB) >> (64 - self.shard_bits)) as usize
    }

    /// Locks shard `i`, counting contended acquisitions.
    #[inline]
    fn lock_shard(&self, i: usize) -> MutexGuard<'_, PoolShard> {
        match self.shards[i].state.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::WouldBlock) => {
                // Relaxed: contention tally only feeds benchmark reporting;
                // the subsequent blocking lock provides the real ordering.
                self.contention.fetch_add(1, Ordering::Relaxed);
                lock(&self.shards[i].state)
            }
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
        }
    }

    /// Absorbs the calling thread's deferred state for this pool: pending
    /// hit tallies land in the pool-wide counters and buffered LRU
    /// promotions are replayed in access order. Runs automatically on
    /// every locked entry point, on counter reads, and when the touch
    /// buffer fills; the tallies alone are also absorbed at thread exit by
    /// the buffer's drop guard. Safe to call at any time; a no-op when
    /// nothing is pending.
    pub fn flush_session(&self) {
        touch::drain(self.id, |keys| self.apply_touches(keys));
    }

    /// Replays drained `(key, slot)` touches as LRU promotions, holding
    /// each shard lock across the consecutive keys that route to it. The
    /// remembered mirror slot makes each replay a compare-and-splice in
    /// the common case (see [`PoolShard::promote_at`]).
    fn apply_touches(&self, touches: &[(u64, u32)]) {
        let mut iter = touches.iter().peekable();
        while let Some(&(key, slot)) = iter.next() {
            let si = self.shard_index(key);
            let mut state = self.lock_shard(si);
            state.promote_at(key, slot);
            while let Some(&&(k, s)) = iter.peek() {
                if self.shard_index(k) != si {
                    break;
                }
                state.promote_at(k, s);
                iter.next();
            }
        }
    }

    /// Touches `page`, classifying the access and charging `cost`.
    ///
    /// Hits on resident pages take the lock-free optimistic path (see the
    /// module docs): a validated mirror probe defers the LRU splice and
    /// pool tally to the session touch buffer and only charges the meter.
    /// Misses, unvalidated probes and the one `MIRROR_VACANT` key fall
    /// back to the locked path, which first replays this thread's pending
    /// promotions so any eviction sees them.
    pub fn access(&self, page: PageId, cost: &CostMeter) -> Access {
        let key = page.pack();
        let si = self.shard_index(key);
        if key != MIRROR_VACANT {
            if let Some((true, slot)) = self.shards[si].mirror.probe_resident(key) {
                match touch::record_hit(self.id, &self.deferred, key, slot) {
                    Recorded::Ok => {
                        cost.charge_cache_hit();
                        return Access::Hit;
                    }
                    Recorded::NeedsFlush => {
                        cost.charge_cache_hit();
                        self.flush_session();
                        return Access::Hit;
                    }
                    // Thread-local storage is tearing down; classify under
                    // the lock instead.
                    Recorded::Unavailable => {}
                }
            }
        }
        self.flush_session();
        let shard = &self.shards[si];
        let mut state = self.lock_shard(si);
        match state.touch(key, &shard.mirror) {
            Access::Hit => {
                state.hits += 1;
                drop(state);
                cost.charge_cache_hit();
                Access::Hit
            }
            Access::Miss => {
                state.misses += 1;
                drop(state);
                cost.charge_page_read();
                Access::Miss
            }
        }
    }

    /// Fallible variant of [`BufferPool::access`] used by *data* read
    /// paths (heap fetches and scans, index range scans, temp-table
    /// scan-backs). With no fault policy installed it is exactly
    /// `Ok(self.access(page, cost))`; with one, the read may fail with
    /// [`StorageError::InjectedFault`] before anything is charged or any
    /// LRU state changes — a failed read never happened.
    pub fn try_access(&self, page: PageId, cost: &CostMeter) -> Result<Access, StorageError> {
        if self.fault_armed.load(Ordering::Acquire) {
            let mut guard = lock(&self.fault);
            if let Some(policy) = guard.as_mut() {
                if policy.should_fail(page) {
                    return Err(StorageError::InjectedFault {
                        file: page.file,
                        page: page.page,
                    });
                }
            }
        }
        Ok(self.access(page, cost))
    }

    /// Fallible variant of [`BufferPool::access_run`]. Pages before a
    /// fault are accessed and charged normally (the scan really did read
    /// them); the faulting page and everything after it are not.
    pub fn try_access_run(
        &self,
        file: FileId,
        first_page: u32,
        n: u32,
        cost: &CostMeter,
    ) -> Result<(u64, u64), StorageError> {
        if !self.fault_armed.load(Ordering::Acquire) {
            return Ok(self.access_run(file, first_page, n, cost));
        }
        let (mut hits, mut misses) = (0u64, 0u64);
        for p in first_page..first_page.saturating_add(n) {
            match self.try_access(PageId::new(file, p), cost) {
                Ok(Access::Hit) => hits += 1,
                Ok(Access::Miss) => misses += 1,
                Err(e) => return Err(e),
            }
        }
        Ok((hits, misses))
    }

    /// Touches the sequential run `first_page .. first_page + n` of `file`
    /// with identical semantics (and identical resulting state, counters
    /// and cost) to `n` successive [`BufferPool::access`] calls, but with a
    /// single batched charge per class and one lock acquisition per
    /// [`BLOCK_PAGES`]-aligned block (block-masked routing guarantees each
    /// block lives in one shard). Returns `(hits, misses)` for the run.
    /// This is the fast path for full scans and temp-table reads.
    pub fn access_run(&self, file: FileId, first_page: u32, n: u32, cost: &CostMeter) -> (u64, u64) {
        self.flush_session();
        let end = first_page.saturating_add(n);
        let mut hits = 0u64;
        let mut p = first_page;
        while p < end {
            // End of the 64-page block containing `p`, clamped to the run.
            let block_end = match (p - p % BLOCK_PAGES).checked_add(BLOCK_PAGES) {
                Some(b) => b.min(end),
                None => end,
            };
            let key0 = PageId::new(file, p).pack();
            let si = self.shard_index(key0);
            let shard = &self.shards[si];
            let mut state = self.lock_shard(si);
            let mut block_hits = 0u64;
            for q in p..block_end {
                if state.touch(PageId::new(file, q).pack(), &shard.mirror) == Access::Hit {
                    block_hits += 1;
                }
            }
            let block_misses = (block_end - p) as u64 - block_hits;
            state.hits += block_hits;
            state.misses += block_misses;
            drop(state);
            hits += block_hits;
            p = block_end;
        }
        let misses = n as u64 - hits;
        cost.charge_cache_hits(hits);
        cost.charge_page_reads(misses);
        (hits, misses)
    }

    /// Records a page *write* access (temp-table spill). Writes always cost
    /// an I/O and do not pollute the read cache.
    pub fn write(&self, _page: PageId, cost: &CostMeter) {
        cost.charge_page_write();
    }

    /// Records `n` sequential page writes with one batched charge.
    pub fn write_run(&self, _file: FileId, _first_page: u32, n: u32, cost: &CostMeter) {
        cost.charge_page_writes(n as u64);
    }

    /// Marks `page` dirty: modified in memory since the last checkpoint
    /// write-back. Durable tables call this on every insert/delete; the
    /// next checkpoint drains the set via [`BufferPool::take_dirty`].
    pub fn mark_dirty(&self, page: PageId) {
        lock(&self.dirty).insert(page.pack());
    }

    /// True when `page` has unwritten-back modifications. Durable reads
    /// use this to skip disk verification for pages whose frame is
    /// legitimately stale (or absent) until the next checkpoint.
    pub fn is_dirty(&self, page: PageId) -> bool {
        lock(&self.dirty).contains(&page.pack())
    }

    /// Number of dirty pages awaiting write-back.
    pub fn dirty_len(&self) -> usize {
        lock(&self.dirty).len()
    }

    /// Drains the dirty set in sorted page order (the checkpoint's
    /// write-back worklist). A failed checkpoint must re-mark what it
    /// could not write.
    pub fn take_dirty(&self) -> Vec<PageId> {
        std::mem::take(&mut *lock(&self.dirty))
            .into_iter()
            .map(PageId::unpack)
            .collect()
    }

    /// True if `page` is currently resident (no cost charged, no LRU
    /// touch). Answered lock-free when the mirror probe validates.
    pub fn contains(&self, page: PageId) -> bool {
        let key = page.pack();
        let si = self.shard_index(key);
        if key != MIRROR_VACANT {
            if let Some((resident, _)) = self.shards[si].mirror.probe_resident(key) {
                return resident;
            }
        }
        lock(&self.shards[si].state).contains(key)
    }

    /// Evicts every resident page — a cold restart. Shards are cleared one
    /// at a time in index order (the only multi-shard operation; it takes
    /// no two locks at once, so no ordering constraint arises).
    pub fn clear(&self) {
        self.flush_session();
        for shard in self.shards.iter() {
            lock(&shard.state).clear(&shard.mirror);
        }
    }

    /// Simulates interference from unrelated queries (paper Section 3(c)):
    /// touches `foreign_pages` synthetic pages belonging to `foreign_file`,
    /// evicting that much of this query's working set, without charging any
    /// meter (the cost belongs to the "other" query). Foreign pages already
    /// resident are left in place (their recency belongs to whoever faulted
    /// them in).
    pub fn perturb(&self, foreign_file: FileId, foreign_pages: u32) {
        self.flush_session();
        for p in 0..foreign_pages {
            let key = PageId::new(foreign_file, p).pack();
            let si = self.shard_index(key);
            let shard = &self.shards[si];
            lock(&shard.state).fault_in_if_absent(key, &shard.mirror);
        }
    }

    /// Asserts that every shard's mirror word-for-word matches its slot
    /// table — the invariant the lock-free probe relies on.
    #[cfg(test)]
    fn assert_mirror_consistent(&self) {
        for (si, shard) in self.shards.iter().enumerate() {
            let g = lock(&shard.state);
            for (i, s) in g.slots.iter().enumerate() {
                let expect = if s.prev == FREE { MIRROR_VACANT } else { s.key };
                let got = shard.mirror.peek(i);
                assert_eq!(got, expect, "mirror drift in shard {si} slot {i}");
            }
        }
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        // Remove the dropping thread's touch buffer for this pool; its
        // drop guard absorbs any pending tally. Buffers on other threads
        // drain at their own exit — the Arc'd counters outlive the pool.
        touch::forget(self.id);
    }
}

/// Locks a mutex, recovering the data from a poisoned lock (shard and
/// policy state are plain data; a panicking holder — only ever an assert in
/// tests — leaves them readable).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{shared_meter, CostConfig};

    fn pool(capacity: usize) -> (BufferPool, SharedCost) {
        let cost = shared_meter(CostConfig::default());
        (BufferPool::new(capacity, cost.clone()), cost)
    }

    fn pid(file: u32, page: u32) -> PageId {
        PageId::new(FileId(file), page)
    }

    #[test]
    fn pool_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BufferPool>();
        assert_send_sync::<SharedPool>();
    }

    #[test]
    fn packed_key_roundtrips_and_orders() {
        let p = pid(7, 0xDEAD_BEEF);
        assert_eq!(PageId::unpack(p.pack()), p);
        assert_ne!(pid(0, 1).pack(), pid(1, 0).pack());
    }

    #[test]
    fn first_access_misses_second_hits() {
        let (p, cost) = pool(4);
        assert_eq!(p.access(pid(0, 0), &cost), Access::Miss);
        assert_eq!(p.access(pid(0, 0), &cost), Access::Hit);
        assert_eq!(p.hits(), 1);
        assert_eq!(p.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (p, cost) = pool(2);
        p.access(pid(0, 0), &cost);
        p.access(pid(0, 1), &cost);
        p.access(pid(0, 0), &cost); // 1 becomes LRU
        p.access(pid(0, 2), &cost); // evicts 1
        assert!(p.contains(pid(0, 0)));
        assert!(!p.contains(pid(0, 1)));
        assert!(p.contains(pid(0, 2)));
    }

    #[test]
    fn capacity_is_respected() {
        let (p, cost) = pool(3);
        for i in 0..100 {
            p.access(pid(0, i), &cost);
        }
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn costs_match_access_classes() {
        let (p, cost) = pool(2);
        p.access(pid(0, 0), &cost); // miss: 1.0
        p.access(pid(0, 0), &cost); // hit: 0.01
        assert!((cost.total() - 1.01).abs() < 1e-12);
    }

    #[test]
    fn charges_go_to_the_callers_meter() {
        let (p, pool_cost) = pool(4);
        let session = shared_meter(CostConfig::default());
        p.access(pid(0, 0), &session);
        assert_eq!(pool_cost.total(), 0.0, "default meter untouched");
        assert!((session.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perturb_pressures_old_pages_without_cost() {
        let (p, cost) = pool(4);
        p.access(pid(0, 0), &cost);
        p.access(pid(0, 1), &cost);
        p.access(pid(0, 0), &cost); // second touch: page 0 turns young
        let before = cost.total();
        p.perturb(FileId(99), 4);
        assert_eq!(cost.total(), before, "interference must be free");
        // Midpoint policy: the foreign scan churns the old sublist, so the
        // once-touched page 1 is flushed but the re-referenced page 0
        // survives pressure that exceeds the whole pool capacity.
        assert!(p.contains(pid(0, 0)));
        assert!(!p.contains(pid(0, 1)));
    }

    #[test]
    fn lru_policy_lets_perturb_flush_everything() {
        // Under the classic-LRU configuration the same interference evicts
        // the entire working set — the pre-midpoint behaviour, kept as the
        // beyond-RAM baseline.
        let cost = shared_meter(CostConfig::default());
        let p = BufferPool::with_policy(4, 1, EvictionPolicy::Lru, cost.clone());
        p.access(pid(0, 0), &cost);
        p.access(pid(0, 1), &cost);
        p.access(pid(0, 0), &cost);
        p.perturb(FileId(99), 4);
        assert!(!p.contains(pid(0, 0)));
        assert!(!p.contains(pid(0, 1)));
    }

    #[test]
    fn midpoint_retains_hot_set_under_scan_pressure() {
        // The scan-resistance property, deterministically: a hot set that
        // has been re-referenced rides the young sublist while a huge
        // sequential scan (4x pool capacity) cycles through the old
        // sublist. Pure LRU retains none of the hot set here. The filler
        // touches between the hot set's first and second rounds give the
        // old sublist colder pages to hold, so every hot page is young
        // (not merely recent) when pressure arrives.
        let (p, cost) = pool(64);
        for page in 0..16 {
            p.access(pid(0, page), &cost);
        }
        for page in 0..16 {
            p.access(pid(8, page), &cost); // filler, touched once
        }
        for page in 0..16 {
            p.access(pid(0, page), &cost); // second touch: hot set young
        }
        for page in 0..256 {
            p.access(pid(9, page), &cost); // beyond-RAM scan, single touch
        }
        let retained = (0..16).filter(|&page| p.contains(pid(0, page))).count();
        assert_eq!(retained, 16, "young sublist must survive the scan");
    }

    #[test]
    fn clear_makes_everything_cold() {
        let (p, cost) = pool(4);
        p.access(pid(0, 0), &cost);
        p.clear();
        assert_eq!(p.access(pid(0, 0), &cost), Access::Miss);
    }

    #[test]
    fn different_files_do_not_collide() {
        let (p, cost) = pool(4);
        p.access(pid(0, 7), &cost);
        assert_eq!(p.access(pid(1, 7), &cost), Access::Miss);
    }

    #[test]
    fn access_run_matches_per_page_accesses() {
        let (a, cost_a) = pool(6);
        let (b, cost_b) = pool(6);
        // Shared warm state in both pools.
        for p in 0..4 {
            a.access(pid(1, p), &cost_a);
            b.access(pid(1, p), &cost_b);
        }
        let (hits, misses) = a.access_run(FileId(1), 2, 8, &cost_a);
        let mut expect_hits = 0;
        for p in 2..10 {
            if b.access(pid(1, p), &cost_b) == Access::Hit {
                expect_hits += 1;
            }
        }
        assert_eq!(hits, expect_hits);
        assert_eq!(hits + misses, 8);
        assert_eq!(a.hits(), b.hits());
        assert_eq!(a.misses(), b.misses());
        assert_eq!(cost_a.total(), cost_b.total(), "batched charge must be exact");
        for p in 0..12 {
            assert_eq!(a.contains(pid(1, p)), b.contains(pid(1, p)));
        }
    }

    #[test]
    fn access_run_crossing_block_boundaries_matches_per_page() {
        // A run spanning several 64-page blocks must classify identically
        // to per-page accesses, on both single- and multi-shard pools.
        for shards in [1usize, 4] {
            let cost_a = shared_meter(CostConfig::default());
            let cost_b = shared_meter(CostConfig::default());
            let a = BufferPool::with_shards(400, shards, cost_a.clone());
            let b = BufferPool::with_shards(400, shards, cost_b.clone());
            a.access_run(FileId(1), 30, 200, &cost_a);
            for p in 30..230 {
                b.access(pid(1, p), &cost_b);
            }
            let (hits, misses) = a.access_run(FileId(1), 100, 64, &cost_a);
            let mut expect_hits = 0u64;
            for p in 100..164 {
                if b.access(pid(1, p), &cost_b) == Access::Hit {
                    expect_hits += 1;
                }
            }
            assert_eq!(hits, expect_hits, "{shards} shards");
            assert_eq!(hits + misses, 64);
            assert_eq!(a.stats(), b.stats(), "{shards} shards");
            assert_eq!(cost_a.total(), cost_b.total());
        }
    }

    #[test]
    fn sharded_pool_keeps_each_page_in_exactly_one_shard() {
        let cost = shared_meter(CostConfig::default());
        let p = BufferPool::with_shards(1024, 8, cost.clone());
        assert_eq!(p.num_shards(), 8);
        for i in 0..500 {
            p.access(pid(i % 5, i), &cost);
        }
        // Every accessed page is resident (capacity exceeds the working
        // set) and found again — residency was not lost or duplicated
        // across shards.
        let mut resident = 0;
        for i in 0..500 {
            if p.contains(pid(i % 5, i)) {
                resident += 1;
            }
        }
        assert_eq!(resident, 500);
        assert_eq!(p.len(), 500);
        let stats = p.stats();
        assert_eq!(stats.hits + stats.misses, 500);
    }

    #[test]
    fn concurrent_accesses_conserve_counters() {
        let cost = shared_meter(CostConfig::default());
        let p = Arc::new(BufferPool::with_shards(4096, 8, cost));
        let threads = 8;
        let per_thread = 5_000u32;
        std::thread::scope(|s| {
            for t in 0..threads {
                let p = Arc::clone(&p);
                s.spawn(move || {
                    let meter = CostMeter::new(CostConfig::default());
                    for i in 0..per_thread {
                        p.access(pid(t, i % 700), &meter);
                    }
                    let snap = meter.snapshot();
                    assert_eq!(
                        snap.page_reads + snap.cache_hits,
                        per_thread as u64,
                        "every access charged exactly once"
                    );
                    // Scoped threads signal completion before TLS
                    // destructors run, so flush deferred pool state
                    // explicitly rather than relying on the drop guard.
                    p.flush_session();
                });
            }
        });
        let stats = p.stats();
        assert_eq!(stats.hits + stats.misses, threads as u64 * per_thread as u64);
    }

    #[test]
    fn heavy_mixed_workload_is_consistent() {
        // Cross-check against a naive reference implementation. The Vec
        // model is pure LRU, so pin the classic-LRU policy explicitly.
        let cost = shared_meter(CostConfig::default());
        let p = BufferPool::with_policy(8, 1, EvictionPolicy::Lru, cost.clone());
        let mut reference: Vec<PageId> = Vec::new(); // front = MRU
        let mut x: u64 = 12345;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let page = pid((x >> 33) as u32 % 3, (x >> 17) as u32 % 20);
            let expect_hit = reference.contains(&page);
            let got = p.access(page, &cost);
            assert_eq!(got == Access::Hit, expect_hit);
            reference.retain(|&q| q != page);
            reference.insert(0, page);
            reference.truncate(8);
        }
    }

    #[test]
    fn try_access_without_policy_matches_access() {
        let (a, cost_a) = pool(4);
        let (b, cost_b) = pool(4);
        for i in 0..10 {
            let got = a.try_access(pid(0, i % 6), &cost_a).expect("no policy, no faults");
            assert_eq!(got, b.access(pid(0, i % 6), &cost_b));
        }
        assert_eq!(cost_a.total(), cost_b.total());
        assert_eq!(a.hits(), b.hits());
    }

    #[test]
    fn injected_fault_charges_nothing_and_leaves_state_alone() {
        let (p, cost) = pool(4);
        p.access(pid(0, 0), &cost);
        let before = cost.total();
        p.set_fault_policy(Some(crate::FaultPolicy::fail_from_nth(0)));
        let err = p.try_access(pid(0, 1), &cost).unwrap_err();
        assert_eq!(
            err,
            crate::StorageError::InjectedFault {
                file: FileId(0),
                page: 1
            }
        );
        assert_eq!(cost.total(), before, "failed read must not be charged");
        assert!(!p.contains(pid(0, 1)), "failed read must not become resident");
        assert!(p.contains(pid(0, 0)));
        // Removing the policy restores the infallible behaviour.
        p.set_fault_policy(None);
        assert!(p.try_access(pid(0, 1), &cost).is_ok());
    }

    #[test]
    fn try_access_run_commits_pages_before_the_fault() {
        let (p, cost) = pool(8);
        p.set_fault_policy(Some(crate::FaultPolicy::fail_from_nth(3)));
        let err = p.try_access_run(FileId(2), 0, 6, &cost).unwrap_err();
        assert_eq!(
            err,
            crate::StorageError::InjectedFault {
                file: FileId(2),
                page: 3
            }
        );
        for page in 0..3 {
            assert!(p.contains(pid(2, page)), "pre-fault pages were read");
        }
        for page in 3..6 {
            assert!(!p.contains(pid(2, page)), "post-fault pages were not");
        }
        assert!((cost.total() - 3.0).abs() < 1e-12, "three misses charged");
    }

    #[test]
    fn scoped_policy_spares_other_files() {
        let (p, cost) = pool(8);
        p.set_fault_policy(Some(
            crate::FaultPolicy::fail_from_nth(0).scoped_to(FileId(7)),
        ));
        assert!(p.try_access(pid(1, 0), &cost).is_ok());
        assert!(p.try_access_run(FileId(1), 0, 4, &cost).is_ok());
        assert!(p.try_access(pid(7, 0), &cost).is_err());
        let policy = p.fault_policy().expect("policy still installed");
        assert_eq!(policy.faults_injected(), 1);
    }

    #[test]
    fn backward_shift_keeps_table_and_list_coherent() {
        // Small capacity + many files forces constant eviction, exercising
        // hole-filling moves and the LRU relinking they require.
        let (p, cost) = pool(5);
        let mut x: u64 = 99;
        for step in 0..20_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            p.access(pid((x >> 40) as u32 % 17, (x >> 20) as u32 % 13), &cost);
            assert!(p.len() <= 5);
            if step % 1024 == 0 {
                p.clear();
                assert!(p.is_empty());
            }
        }
        assert_eq!(p.hits() + p.misses(), 20_000);
    }

    #[test]
    fn optimistic_hits_keep_counters_and_costs_exact() {
        let (p, cost) = pool(4);
        assert_eq!(p.access(pid(0, 0), &cost), Access::Miss);
        for _ in 0..100 {
            assert_eq!(p.access(pid(0, 0), &cost), Access::Hit);
        }
        assert_eq!(p.hits(), 100, "deferred tallies flushed on read");
        assert_eq!(p.misses(), 1);
        assert!(
            (cost.total() - (1.0 + 100.0 * 0.01)).abs() < 1e-12,
            "meter charged per access, not per flush"
        );
    }

    #[test]
    fn deferred_tallies_survive_thread_exit_without_a_flush() {
        let cost = shared_meter(CostConfig::default());
        let p = Arc::new(BufferPool::new(64, cost));
        let worker = Arc::clone(&p);
        let meter = shared_meter(CostConfig::default());
        let m = Arc::clone(&meter);
        std::thread::spawn(move || {
            worker.access(pid(3, 1), &m); // miss
            for _ in 0..10 {
                worker.access(pid(3, 1), &m); // optimistic hits, never flushed
            }
        })
        .join()
        .expect("worker thread");
        // The worker never read stats; its drop guard absorbed the tally.
        let stats = p.stats();
        assert_eq!(stats.hits, 10);
        assert_eq!(stats.misses, 1);
        assert_eq!(meter.snapshot().cache_hits, 10);
    }

    #[test]
    fn sentinel_page_takes_the_locked_path_correctly() {
        // (u32::MAX, u32::MAX) packs to the mirror's vacant sentinel; it
        // must still classify, promote and count exactly.
        let (p, cost) = pool(2);
        let weird = pid(u32::MAX, u32::MAX);
        assert_eq!(p.access(weird, &cost), Access::Miss);
        assert_eq!(p.access(weird, &cost), Access::Hit);
        assert!(p.contains(weird));
        p.access(pid(0, 1), &cost); // weird becomes the LRU entry
        p.access(pid(0, 2), &cost); // evicts weird
        assert!(!p.contains(weird));
        assert_eq!(p.hits(), 1);
        assert_eq!(p.misses(), 3);
    }

    #[test]
    fn mirror_tracks_table_through_evictions_and_clears() {
        let (p, cost) = pool(5);
        let mut x: u64 = 7;
        for step in 0..4_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            p.access(pid((x >> 40) as u32 % 11, (x >> 20) as u32 % 9), &cost);
            if step % 512 == 0 {
                p.flush_session();
                p.assert_mirror_consistent();
            }
            if step % 1500 == 0 {
                p.clear();
                p.assert_mirror_consistent();
            }
        }
        p.flush_session();
        p.assert_mirror_consistent();
    }

    #[test]
    fn flush_session_is_idempotent() {
        let (p, cost) = pool(4);
        p.access(pid(0, 0), &cost);
        p.access(pid(0, 0), &cost);
        p.flush_session();
        p.flush_session();
        assert_eq!(p.hits(), 1);
        assert_eq!(p.misses(), 1);
    }
}
