//! Sequential read-ahead window: the per-scan state machine behind
//! batched disk reads.
//!
//! A beyond-RAM sequential scan misses on page after page; without
//! batching every miss performs its own positioned read (and, in the file
//! store, its own file open). [`ReadAhead`] turns that into one batched
//! [`read_run`](crate::store::PageStore::read_run) per *window*: when the
//! scan misses on a page with no window coverage, the heap builds a run of
//! upcoming clean, on-disk, non-resident pages, reads them all at once,
//! and parks the per-frame outcomes here. Subsequent misses consume their
//! parked outcome instead of touching the store — a torn frame surfaces
//! exactly when the scan reaches the page it belongs to, never earlier.
//!
//! # Adaptive depth
//!
//! The window starts at [`MIN_DEPTH`] frames. Each time a new window is
//! filled, the previous window's fate decides the next size: fully
//! consumed doubles the depth (up to [`MAX_DEPTH`]) — the scan is
//! genuinely sequential and longer runs amortize better; any unused frame
//! halves it (down to `MIN_DEPTH`) — the scan is stopping short or the
//! pages keep turning resident, so fetching ahead is wasted work. The
//! depth therefore tracks the observed sequentiality of the access
//! pattern, not a static guess.

use crate::error::StorageError;

/// Smallest (and initial) read-ahead window, in frames.
pub const MIN_DEPTH: u32 = 4;

/// Largest read-ahead window, in frames.
pub const MAX_DEPTH: u32 = 64;

/// Per-scan read-ahead state: the current window of deferred per-frame
/// outcomes plus the adaptive depth.
#[derive(Debug, Clone, Default)]
pub struct ReadAhead {
    /// Page number of the window's first frame.
    first: u32,
    /// Deferred outcome per frame, `None` once consumed.
    outcomes: Vec<Option<Result<(), StorageError>>>,
    /// Frames of the current window already consumed.
    taken: usize,
    /// Next window size, in frames (0 until the first `fill`, which
    /// initializes it to [`MIN_DEPTH`]).
    depth: u32,
}

impl ReadAhead {
    /// Fresh state with an empty window.
    pub fn new() -> Self {
        ReadAhead {
            first: 0,
            outcomes: Vec::new(),
            taken: 0,
            depth: MIN_DEPTH,
        }
    }

    /// Frames the next window should cover, given how the previous ones
    /// went.
    pub fn depth(&self) -> u32 {
        self.depth.clamp(MIN_DEPTH, MAX_DEPTH)
    }

    /// Takes the deferred outcome for `page` out of the window, if the
    /// window covers it and it has not been consumed yet.
    pub fn take(&mut self, page: u32) -> Option<Result<(), StorageError>> {
        let at = page.checked_sub(self.first)? as usize;
        let out = self.outcomes.get_mut(at)?.take();
        if out.is_some() {
            self.taken += 1;
        }
        out
    }

    /// Installs a new window of outcomes for pages `first..first + len`,
    /// adapting the depth to the fate of the window being replaced:
    /// fully consumed doubles it, any unused frame halves it.
    pub fn fill(&mut self, first: u32, outcomes: Vec<Result<(), StorageError>>) {
        if !self.outcomes.is_empty() {
            self.depth = if self.taken == self.outcomes.len() {
                (self.depth() * 2).min(MAX_DEPTH)
            } else {
                (self.depth() / 2).max(MIN_DEPTH)
            };
        }
        self.first = first;
        self.outcomes = outcomes.into_iter().map(Some).collect();
        self.taken = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::FileId;

    fn window(n: usize) -> Vec<Result<(), StorageError>> {
        vec![Ok(()); n]
    }

    #[test]
    fn take_consumes_each_frame_once() {
        let mut ra = ReadAhead::new();
        assert!(ra.take(0).is_none(), "empty window covers nothing");
        ra.fill(10, window(3));
        assert!(ra.take(9).is_none(), "below the window");
        assert!(ra.take(13).is_none(), "past the window");
        assert_eq!(ra.take(11), Some(Ok(())));
        assert!(ra.take(11).is_none(), "a frame is consumed once");
        assert_eq!(ra.take(10), Some(Ok(())));
        assert_eq!(ra.take(12), Some(Ok(())));
    }

    #[test]
    fn deferred_error_surfaces_on_its_own_page() {
        let mut ra = ReadAhead::new();
        let torn = StorageError::TornPage {
            file: FileId(1),
            page: 6,
        };
        ra.fill(5, vec![Ok(()), Err(torn.clone()), Ok(())]);
        assert_eq!(ra.take(5), Some(Ok(())));
        assert_eq!(ra.take(6), Some(Err(torn)));
        assert_eq!(ra.take(7), Some(Ok(())));
    }

    #[test]
    fn depth_doubles_when_fully_consumed_and_halves_otherwise() {
        let mut ra = ReadAhead::new();
        assert_eq!(ra.depth(), MIN_DEPTH);
        ra.fill(0, window(MIN_DEPTH as usize));
        assert_eq!(ra.depth(), MIN_DEPTH, "first window never adapts");
        for p in 0..MIN_DEPTH {
            ra.take(p);
        }
        ra.fill(MIN_DEPTH, window(8));
        assert_eq!(ra.depth(), MIN_DEPTH * 2, "full consumption doubles");
        // Leave one frame unused: the next fill halves the depth.
        for p in MIN_DEPTH..MIN_DEPTH + 7 {
            ra.take(p);
        }
        ra.fill(100, window(4));
        assert_eq!(ra.depth(), MIN_DEPTH, "waste halves, floored at MIN");
    }

    #[test]
    fn depth_saturates_at_max() {
        let mut ra = ReadAhead::new();
        let mut first = 0u32;
        for _ in 0..10 {
            let n = ra.depth();
            ra.fill(first, window(n as usize));
            for p in first..first + n {
                ra.take(p);
            }
            first += n;
        }
        ra.fill(first, window(1));
        assert_eq!(ra.depth(), MAX_DEPTH);
    }
}
