//! [`FilePageStore`]: the file-backed [`PageStore`].
//!
//! A database is a directory:
//!
//! ```text
//! db/
//!   rdb.meta      header: magic, version, page_bytes, base LSN (atomically
//!                 replaced via tmp+rename at every checkpoint)
//!   catalog.rdb   last checkpointed catalog blob (tmp+rename)
//!   wal.rdb       append-only WAL (see crate::wal for framing)
//!   f<N>.rdb      page frames for FileId(N), 4096 bytes per frame
//! ```
//!
//! Each data frame is:
//!
//! ```text
//! offset  size  field
//!      0     4  magic "RDBP" (all-zero frame = hole, reads as None)
//!      4     4  file id
//!      8     4  page number
//!     12     8  page LSN (last record applied when the frame was written)
//!     20     4  payload length
//!     24     8  FNV-1a checksum over bytes [4, 24) + payload
//!     32  4064  payload: the page image (Page::encode_image)
//! ```
//!
//! A frame whose checksum does not verify is reported as
//! [`StorageError::TornPage`]; recovery repairs it from a full-page image
//! in the WAL or surfaces the error. The WAL's own torn tail is truncated
//! silently at open (crash semantics: the tail never happened).

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::buffer::{FileId, PageId};
use crate::error::StorageError;
use crate::page::Page;
use crate::store::{lock, PageStore, StoreStats};
use crate::wal::{checksum64, decode_stream, encode_entry, Lsn, WalRecord, WalView};

/// Size of one on-disk data frame, header included.
pub const FRAME_BYTES: usize = 4096;
/// Bytes of frame header before the page-image payload.
pub const FRAME_HEADER: usize = 32;
/// Largest page image a frame can hold.
pub const FRAME_PAYLOAD_MAX: usize = FRAME_BYTES - FRAME_HEADER;
/// Recommended page payload capacity for durable databases: leaves
/// image-encoding slack (a length word per slot, tombstones) inside the
/// 4064-byte frame payload for pages that have seen delete churn.
pub const DURABLE_PAGE_BYTES: usize = 4000;

const FRAME_MAGIC: u32 = 0x5042_4452; // "RDBP" little-endian
const META_MAGIC: u32 = 0x4D42_4452; // "RDBM"
const META_VERSION: u32 = 1;

#[derive(Debug)]
struct Inner {
    wal: File,
    next_lsn: Lsn,
    base_lsn: Lsn,
    stats: StoreStats,
    /// Data files written since the last sync (flushed by `sync`).
    touched: Vec<FileId>,
}

/// The file-backed page store. See the module docs for the layout.
#[derive(Debug)]
pub struct FilePageStore {
    dir: PathBuf,
    page_bytes: usize,
    inner: Mutex<Inner>,
}

fn io_err<'a>(
    op: &'static str,
    path: &'a Path,
) -> impl FnOnce(std::io::Error) -> StorageError + 'a {
    move |e| StorageError::io(op, path, &e)
}

/// Reads exactly `buf.len()` bytes at `offset`, or reports how many bytes
/// were available (a short read near EOF is not an error here; callers
/// decide what a partial frame means).
fn read_at(file: &mut File, offset: u64, buf: &mut [u8]) -> std::io::Result<usize> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        let mut done = 0usize;
        while let Some(rest) = buf.get_mut(done..).filter(|r| !r.is_empty()) {
            let n = file.read_at(rest, offset + done as u64)?;
            if n == 0 {
                break;
            }
            done += n;
        }
        Ok(done)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Seek, SeekFrom};
        file.seek(SeekFrom::Start(offset))?;
        let mut done = 0usize;
        while let Some(rest) = buf.get_mut(done..).filter(|r| !r.is_empty()) {
            let n = file.read(rest)?;
            if n == 0 {
                break;
            }
            done += n;
        }
        Ok(done)
    }
}

/// Writes all of `buf` at `offset`.
fn write_at(file: &mut File, offset: u64, buf: &[u8]) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.write_all_at(buf, offset)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Seek, SeekFrom};
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(buf)
    }
}

/// Atomically replaces `path` with `bytes` via a tmp file and rename.
fn replace_file(path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp).map_err(io_err("create", &tmp))?;
    f.write_all(bytes).map_err(io_err("write", &tmp))?;
    f.sync_data().map_err(io_err("sync", &tmp))?;
    fs::rename(&tmp, path).map_err(io_err("rename", path))
}

fn le32(buf: &[u8], at: usize) -> Option<u32> {
    buf.get(at..at + 4)
        .and_then(|b| b.try_into().ok())
        .map(u32::from_le_bytes)
}

fn le64(buf: &[u8], at: usize) -> Option<u64> {
    buf.get(at..at + 8)
        .and_then(|b| b.try_into().ok())
        .map(u64::from_le_bytes)
}

impl FilePageStore {
    /// Opens (or initializes) the database directory at `dir`.
    ///
    /// A fresh or empty directory is initialized with `page_bytes` page
    /// capacity; an existing database keeps the capacity recorded in its
    /// header (callers read it back via [`PageStore::page_bytes`]). The
    /// WAL's torn tail, if any, is truncated here.
    pub fn open(dir: impl Into<PathBuf>, page_bytes: usize) -> Result<FilePageStore, StorageError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(io_err("create_dir", &dir))?;
        let meta_path = dir.join("rdb.meta");
        let (page_bytes, base_lsn) = if meta_path.exists() {
            Self::read_meta(&meta_path)?
        } else {
            if !(64..=FRAME_PAYLOAD_MAX - 16).contains(&page_bytes) {
                return Err(StorageError::RecordTooLarge {
                    size: page_bytes,
                    max: FRAME_PAYLOAD_MAX - 16,
                });
            }
            write_meta(&meta_path, page_bytes, 0)?;
            (page_bytes, 0)
        };

        let wal_path = dir.join("wal.rdb");
        let mut wal = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&wal_path)
            .map_err(io_err("open", &wal_path))?;
        let mut bytes = Vec::new();
        wal.read_to_end(&mut bytes)
            .map_err(io_err("read", &wal_path))?;
        let view = decode_stream(&bytes);
        if view.truncated {
            // Crash mid-append: discard the torn tail so new appends start
            // at a clean record boundary.
            wal.set_len(view.clean_bytes as u64)
                .map_err(io_err("truncate", &wal_path))?;
        }
        let max_wal_lsn = view.entries.last().map(|(lsn, _)| *lsn).unwrap_or(0);
        let next_lsn = base_lsn.max(max_wal_lsn) + 1;

        Ok(FilePageStore {
            dir,
            page_bytes,
            inner: Mutex::new(Inner {
                wal,
                next_lsn,
                base_lsn,
                stats: StoreStats::default(),
                touched: Vec::new(),
            }),
        })
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the data-frame file backing `file` under `dir` (exposed so
    /// crash harnesses can tear specific frames).
    pub fn data_path(dir: &Path, file: FileId) -> PathBuf {
        dir.join(format!("f{}.rdb", file.0))
    }

    /// Path of the WAL under `dir` (exposed so crash harnesses can cut it).
    pub fn wal_path(dir: &Path) -> PathBuf {
        dir.join("wal.rdb")
    }

    fn read_meta(path: &Path) -> Result<(usize, Lsn), StorageError> {
        let bytes = fs::read(path).map_err(io_err("read", path))?;
        let parsed = (|| {
            let magic = le32(&bytes, 0)?;
            let version = le32(&bytes, 4)?;
            let page_bytes = le32(&bytes, 8)? as usize;
            let base_lsn = le64(&bytes, 12)?;
            let crc = le64(&bytes, 20)?;
            if magic != META_MAGIC || version != META_VERSION {
                return None;
            }
            if checksum64(bytes.get(0..20)?) != crc {
                return None;
            }
            Some((page_bytes, base_lsn))
        })();
        parsed.ok_or(StorageError::Corrupt("database header (rdb.meta)"))
    }

    fn frame_file(&self, file: FileId, create: bool) -> Result<Option<File>, StorageError> {
        let path = Self::data_path(&self.dir, file);
        let open = OpenOptions::new()
            .read(true)
            .write(true)
            .create(create)
            .open(&path);
        match open {
            Ok(f) => Ok(Some(f)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound && !create => Ok(None),
            Err(e) => Err(StorageError::io("open", &path, &e)),
        }
    }
}

fn write_meta(path: &Path, page_bytes: usize, base_lsn: Lsn) -> Result<(), StorageError> {
    let mut bytes = Vec::with_capacity(28);
    bytes.extend_from_slice(&META_MAGIC.to_le_bytes());
    bytes.extend_from_slice(&META_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(page_bytes as u32).to_le_bytes());
    bytes.extend_from_slice(&base_lsn.to_le_bytes());
    let crc = checksum64(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    replace_file(path, &bytes)
}

impl PageStore for FilePageStore {
    fn is_durable(&self) -> bool {
        true
    }

    fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    fn max_image_len(&self) -> usize {
        FRAME_PAYLOAD_MAX
    }

    fn read_page(&self, page: PageId) -> Result<Option<(Page, Lsn)>, StorageError> {
        let Some(mut file) = self.frame_file(page.file, false)? else {
            return Ok(None);
        };
        let path = Self::data_path(&self.dir, page.file);
        let mut frame = vec![0u8; FRAME_BYTES];
        let offset = page.page as u64 * FRAME_BYTES as u64;
        let got = read_at(&mut file, offset, &mut frame).map_err(io_err("read", &path))?;
        if got < FRAME_HEADER {
            return Ok(None); // past EOF: no frame for this page
        }
        frame.truncate(got);
        let torn = Err(StorageError::TornPage {
            file: page.file,
            page: page.page,
        });
        let Some(magic) = le32(&frame, 0) else {
            return torn;
        };
        if magic == 0 && frame.iter().all(|&b| b == 0) {
            return Ok(None); // hole: frame never written
        }
        if magic != FRAME_MAGIC {
            return torn;
        }
        let header = (|| {
            let file_id = le32(&frame, 4)?;
            let page_no = le32(&frame, 8)?;
            let lsn = le64(&frame, 12)?;
            let len = le32(&frame, 20)? as usize;
            let crc = le64(&frame, 24)?;
            Some((file_id, page_no, lsn, len, crc))
        })();
        let Some((file_id, page_no, lsn, len, crc)) = header else {
            return torn;
        };
        if file_id != page.file.0 || page_no != page.page || len > FRAME_PAYLOAD_MAX {
            return torn;
        }
        let Some(payload) = frame.get(FRAME_HEADER..FRAME_HEADER + len) else {
            return torn;
        };
        let mut summed = frame.get(4..24).unwrap_or(&[]).to_vec();
        summed.extend_from_slice(payload);
        if checksum64(&summed) != crc {
            return torn;
        }
        let image = match Page::decode_image(self.page_bytes, payload) {
            Ok(p) => p,
            Err(_) => return torn,
        };
        lock(&self.inner).stats.page_reads += 1;
        Ok(Some((image, lsn)))
    }

    fn write_page(&self, page: PageId, image: &Page, lsn: Lsn) -> Result<(), StorageError> {
        let mut payload = Vec::with_capacity(image.image_len());
        image.encode_image(&mut payload)?;
        if payload.len() > FRAME_PAYLOAD_MAX {
            return Err(StorageError::RecordTooLarge {
                size: payload.len(),
                max: FRAME_PAYLOAD_MAX,
            });
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        frame.extend_from_slice(&page.file.0.to_le_bytes());
        frame.extend_from_slice(&page.page.to_le_bytes());
        frame.extend_from_slice(&lsn.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let mut summed = frame.get(4..24).unwrap_or(&[]).to_vec();
        summed.extend_from_slice(&payload);
        frame.extend_from_slice(&checksum64(&summed).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.resize(FRAME_BYTES, 0);

        let path = Self::data_path(&self.dir, page.file);
        let Some(mut file) = self.frame_file(page.file, true)? else {
            return Err(StorageError::Io {
                op: "open",
                path: path.display().to_string(),
                detail: "data file vanished".into(),
            });
        };
        let offset = page.page as u64 * FRAME_BYTES as u64;
        write_at(&mut file, offset, &frame).map_err(io_err("write", &path))?;
        let mut inner = lock(&self.inner);
        inner.stats.page_writes += 1;
        if !inner.touched.contains(&page.file) {
            inner.touched.push(page.file);
        }
        Ok(())
    }

    fn file_pages(&self, file: FileId) -> Result<u32, StorageError> {
        let path = Self::data_path(&self.dir, file);
        match fs::metadata(&path) {
            Ok(m) => Ok((m.len() / FRAME_BYTES as u64) as u32),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(StorageError::io("stat", &path, &e)),
        }
    }

    fn files(&self) -> Result<Vec<FileId>, StorageError> {
        let mut out = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(io_err("read_dir", &self.dir))?;
        for entry in entries {
            let entry = entry.map_err(io_err("read_dir", &self.dir))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = name
                .strip_prefix('f')
                .and_then(|rest| rest.strip_suffix(".rdb"))
                .and_then(|n| n.parse::<u32>().ok())
            {
                out.push(FileId(id));
            }
        }
        out.sort();
        Ok(out)
    }

    fn append(&self, record: &WalRecord) -> Result<Lsn, StorageError> {
        let mut inner = lock(&self.inner);
        let lsn = inner.next_lsn;
        inner.next_lsn += 1;
        let mut bytes = Vec::with_capacity(64);
        encode_entry(lsn, record, &mut bytes);
        let path = Self::wal_path(&self.dir);
        inner
            .wal
            .write_all(&bytes)
            .map_err(io_err("append", &path))?;
        inner.stats.wal_appends += 1;
        Ok(lsn)
    }

    fn wal(&self) -> Result<WalView, StorageError> {
        let path = Self::wal_path(&self.dir);
        let bytes = fs::read(&path).map_err(io_err("read", &path))?;
        let mut view = decode_stream(&bytes);
        let base = lock(&self.inner).base_lsn;
        view.entries.retain(|(lsn, _)| *lsn > base);
        Ok(view)
    }

    fn base_lsn(&self) -> Lsn {
        lock(&self.inner).base_lsn
    }

    fn read_catalog(&self) -> Result<Option<Vec<u8>>, StorageError> {
        let path = self.dir.join("catalog.rdb");
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StorageError::io("read", &path, &e)),
        };
        let parsed = (|| {
            let len = le32(&bytes, 0)? as usize;
            let crc = le64(&bytes, 4)?;
            let blob = bytes.get(12..12 + len)?;
            if bytes.len() != 12 + len || checksum64(blob) != crc {
                return None;
            }
            Some(blob.to_vec())
        })();
        parsed
            .map(Some)
            .ok_or(StorageError::Corrupt("catalog blob (catalog.rdb)"))
    }

    fn checkpoint_done(&self, catalog: &[u8], end_lsn: Lsn) -> Result<(), StorageError> {
        let mut framed = Vec::with_capacity(12 + catalog.len());
        framed.extend_from_slice(&(catalog.len() as u32).to_le_bytes());
        framed.extend_from_slice(&checksum64(catalog).to_le_bytes());
        framed.extend_from_slice(catalog);
        replace_file(&self.dir.join("catalog.rdb"), &framed)?;
        // Header advance is the commit point of the checkpoint: a crash
        // before it replays from the old base (data frames may be newer —
        // the per-page LSN guard skips those records); a crash after it
        // replays nothing older than `end_lsn`.
        write_meta(&self.dir.join("rdb.meta"), self.page_bytes, end_lsn)?;
        let mut inner = lock(&self.inner);
        inner.base_lsn = end_lsn;
        let path = Self::wal_path(&self.dir);
        inner
            .wal
            .set_len(0)
            .map_err(io_err("truncate", &path))?;
        Ok(())
    }

    fn sync(&self) -> Result<(), StorageError> {
        let mut inner = lock(&self.inner);
        let path = Self::wal_path(&self.dir);
        inner.wal.sync_data().map_err(io_err("sync", &path))?;
        let touched = std::mem::take(&mut inner.touched);
        for file in touched {
            let path = Self::data_path(&self.dir, file);
            match File::open(&path) {
                Ok(f) => f.sync_data().map_err(io_err("sync", &path))?,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(StorageError::io("open", &path, &e)),
            }
        }
        inner.stats.syncs += 1;
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        lock(&self.inner).stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rdb-filestore-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn page_with(bytes: &[u8]) -> Page {
        let mut p = Page::new(DURABLE_PAGE_BYTES);
        p.insert(bytes.to_vec()).unwrap();
        p
    }

    #[test]
    fn frames_roundtrip_across_reopen() {
        let dir = temp_dir("roundtrip");
        let pid = PageId::new(FileId(3), 2);
        {
            let store = FilePageStore::open(&dir, DURABLE_PAGE_BYTES).unwrap();
            store.write_page(pid, &page_with(b"hello"), 17).unwrap();
            store.sync().unwrap();
            assert_eq!(store.file_pages(FileId(3)).unwrap(), 3);
        }
        let store = FilePageStore::open(&dir, 123).unwrap();
        assert_eq!(store.page_bytes(), DURABLE_PAGE_BYTES, "header wins over arg");
        let (page, lsn) = store.read_page(pid).unwrap().unwrap();
        assert_eq!(lsn, 17);
        assert_eq!(page.slot_bytes(0), Some(&b"hello"[..]));
        // Holes before the written frame read as None.
        assert_eq!(store.read_page(PageId::new(FileId(3), 0)).unwrap(), None);
        assert_eq!(store.read_page(PageId::new(FileId(3), 9)).unwrap(), None);
        assert_eq!(store.stats().page_reads, 1, "holes are not real reads");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_frame_is_a_typed_error() {
        let dir = temp_dir("torn");
        let pid = PageId::new(FileId(0), 0);
        let store = FilePageStore::open(&dir, DURABLE_PAGE_BYTES).unwrap();
        store.write_page(pid, &page_with(b"data"), 5).unwrap();
        drop(store);
        // Flip a payload byte.
        let path = FilePageStore::data_path(&dir, FileId(0));
        let mut bytes = fs::read(&path).unwrap();
        bytes[FRAME_HEADER + 2] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let store = FilePageStore::open(&dir, DURABLE_PAGE_BYTES).unwrap();
        assert_eq!(
            store.read_page(pid),
            Err(StorageError::TornPage {
                file: FileId(0),
                page: 0
            })
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_appends_survive_reopen_and_tail_tear() {
        let dir = temp_dir("wal");
        {
            let store = FilePageStore::open(&dir, DURABLE_PAGE_BYTES).unwrap();
            store.append(&WalRecord::CheckpointBegin).unwrap();
            store
                .append(&WalRecord::Catalog { blob: vec![1, 2] })
                .unwrap();
        }
        // Tear the tail mid-record.
        let wal_path = FilePageStore::wal_path(&dir);
        let len = fs::metadata(&wal_path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&wal_path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let store = FilePageStore::open(&dir, DURABLE_PAGE_BYTES).unwrap();
        let view = store.wal().unwrap();
        assert_eq!(view.entries.len(), 1, "torn record discarded");
        // New appends continue past the surviving log: the torn record was
        // never durable, so its LSN is legitimately reusable.
        let lsn = store.append(&WalRecord::CheckpointBegin).unwrap();
        assert!(lsn > 1, "LSNs stay monotonic after a tear (got {lsn})");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_persists_catalog_and_releases_wal() {
        let dir = temp_dir("ckpt");
        let store = FilePageStore::open(&dir, DURABLE_PAGE_BYTES).unwrap();
        store.append(&WalRecord::CheckpointBegin).unwrap();
        let end = store
            .append(&WalRecord::CheckpointEnd { begin: 1 })
            .unwrap();
        store.checkpoint_done(b"CATALOG", end).unwrap();
        assert!(store.wal().unwrap().entries.is_empty());
        drop(store);
        let store = FilePageStore::open(&dir, DURABLE_PAGE_BYTES).unwrap();
        assert_eq!(store.base_lsn(), end);
        assert_eq!(store.read_catalog().unwrap(), Some(b"CATALOG".to_vec()));
        assert!(store.wal().unwrap().entries.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
