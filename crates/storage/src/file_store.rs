//! [`FilePageStore`]: the file-backed [`PageStore`].
//!
//! A database is a directory:
//!
//! ```text
//! db/
//!   rdb.meta        header: magic, version, page_bytes, base LSN (atomically
//!                   replaced via tmp+rename at every checkpoint)
//!   catalog.rdb     last checkpointed catalog blob (tmp+rename)
//!   wal-<seq>.rdb   append-only WAL segments (see crate::wal for record
//!                   framing); appends rotate into a fresh segment when the
//!                   current one exceeds the segment cap
//!   f<N>.rdb        page frames for FileId(N), 4096 bytes per frame
//! ```
//!
//! # WAL segments
//!
//! The log is a chain of capped segment files, each starting with a
//! 24-byte header (`magic "RDBW" | version | u64 seq | crc over the first
//! 16 bytes`) followed by the usual record stream. Sequence numbers are
//! assigned once and never reused; the logical log is the concatenation of
//! the record streams in sequence order. [`FilePageStore::open`] walks the
//! segments and applies crash semantics at the first damage it meets — a
//! torn record tail truncates that segment, and a bad header, a
//! filename/header sequence mismatch, or a gap in the chain ends the log
//! there; later segments were never durably reachable and are deleted.
//! A checkpoint recycles the chain: after the header advance (the commit
//! point) it starts a fresh segment and deletes every released one, so
//! steady-state disk usage is bounded by the checkpoint cadence rather
//! than database lifetime.
//!
//! Each data frame is:
//!
//! ```text
//! offset  size  field
//!      0     4  magic "RDBP" (all-zero frame = hole, reads as None)
//!      4     4  file id
//!      8     4  page number
//!     12     8  page LSN (last record applied when the frame was written)
//!     20     4  payload length
//!     24     8  FNV-1a checksum over bytes [4, 24) + payload
//!     32  4064  payload: the page image (Page::encode_image)
//! ```
//!
//! A frame whose checksum does not verify is reported as
//! [`StorageError::TornPage`]; recovery repairs it from a full-page image
//! in the WAL or surfaces the error. The WAL's own torn tail is truncated
//! silently at open (crash semantics: the tail never happened).

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::buffer::{FileId, PageId};
use crate::error::StorageError;
use crate::lsn::WalTail;
use crate::page::Page;
use crate::store::{lock, PageStore, StoreStats};
use crate::wal::{checksum64, decode_stream, encode_entry, Lsn, WalRecord, WalView};

/// Size of one on-disk data frame, header included.
pub const FRAME_BYTES: usize = 4096;
/// Bytes of frame header before the page-image payload.
pub const FRAME_HEADER: usize = 32;
/// Largest page image a frame can hold.
pub const FRAME_PAYLOAD_MAX: usize = FRAME_BYTES - FRAME_HEADER;
/// Recommended page payload capacity for durable databases: leaves
/// image-encoding slack (a length word per slot, tombstones) inside the
/// 4064-byte frame payload for pages that have seen delete churn.
pub const DURABLE_PAGE_BYTES: usize = 4000;

/// Default cap on one WAL segment's size. Appends rotate into a fresh
/// segment once the current one would exceed it.
pub const DEFAULT_WAL_SEGMENT_BYTES: u64 = 1 << 20;

/// Bytes of header at the front of every WAL segment file.
pub const WAL_SEGMENT_HEADER: usize = 24;

const FRAME_MAGIC: u32 = 0x5042_4452; // "RDBP" little-endian
const META_MAGIC: u32 = 0x4D42_4452; // "RDBM"
const WAL_MAGIC: u32 = 0x5742_4452; // "RDBW"
const WAL_VERSION: u32 = 1;
const META_VERSION: u32 = 2; // v2: segmented WAL (wal-<seq>.rdb)

#[derive(Debug)]
struct Inner {
    /// The current (highest-sequence) WAL segment, append-positioned.
    wal: File,
    /// Sequence number of the current segment.
    wal_seq: u64,
    /// Bytes in the current segment, header included (the rotation gauge).
    wal_len: u64,
    base_lsn: Lsn,
    stats: StoreStats,
    /// Data files written since the last sync (flushed by `sync`).
    touched: Vec<FileId>,
}

/// The file-backed page store. See the module docs for the layout.
#[derive(Debug)]
pub struct FilePageStore {
    dir: PathBuf,
    page_bytes: usize,
    /// Segment-size cap appends rotate at (an open-time knob, not part of
    /// the persistent format — reopening with a different cap is fine).
    segment_bytes: u64,
    /// LSN allocation and framed-high-water publication. Appends allocate
    /// and publish through it while holding `inner`; `published` may be
    /// read without the mutex (see [`crate::lsn::WalTail`]).
    tail: WalTail,
    inner: Mutex<Inner>,
}

fn io_err<'a>(
    op: &'static str,
    path: &'a Path,
) -> impl FnOnce(std::io::Error) -> StorageError + 'a {
    move |e| StorageError::io(op, path, &e)
}

/// Reads exactly `buf.len()` bytes at `offset`, or reports how many bytes
/// were available (a short read near EOF is not an error here; callers
/// decide what a partial frame means).
fn read_at(file: &mut File, offset: u64, buf: &mut [u8]) -> std::io::Result<usize> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        let mut done = 0usize;
        while let Some(rest) = buf.get_mut(done..).filter(|r| !r.is_empty()) {
            let n = file.read_at(rest, offset + done as u64)?;
            if n == 0 {
                break;
            }
            done += n;
        }
        Ok(done)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Seek, SeekFrom};
        file.seek(SeekFrom::Start(offset))?;
        let mut done = 0usize;
        while let Some(rest) = buf.get_mut(done..).filter(|r| !r.is_empty()) {
            let n = file.read(rest)?;
            if n == 0 {
                break;
            }
            done += n;
        }
        Ok(done)
    }
}

/// Writes all of `buf` at `offset`.
fn write_at(file: &mut File, offset: u64, buf: &[u8]) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.write_all_at(buf, offset)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Seek, SeekFrom};
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(buf)
    }
}

/// Atomically replaces `path` with `bytes` via a tmp file and rename.
fn replace_file(path: &Path, bytes: &[u8]) -> Result<(), StorageError> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp).map_err(io_err("create", &tmp))?;
    f.write_all(bytes).map_err(io_err("write", &tmp))?;
    f.sync_data().map_err(io_err("sync", &tmp))?;
    fs::rename(&tmp, path).map_err(io_err("rename", path))
}

fn le32(buf: &[u8], at: usize) -> Option<u32> {
    buf.get(at..at + 4)
        .and_then(|b| b.try_into().ok())
        .map(u32::from_le_bytes)
}

fn le64(buf: &[u8], at: usize) -> Option<u64> {
    buf.get(at..at + 8)
        .and_then(|b| b.try_into().ok())
        .map(u64::from_le_bytes)
}

/// Parses a WAL segment header, returning its sequence number when the
/// magic, version, and checksum all verify.
fn parse_segment_header(bytes: &[u8]) -> Option<u64> {
    let magic = le32(bytes, 0)?;
    let version = le32(bytes, 4)?;
    let seq = le64(bytes, 8)?;
    let crc = le64(bytes, 16)?;
    if magic != WAL_MAGIC || version != WAL_VERSION {
        return None;
    }
    if checksum64(bytes.get(0..16)?) != crc {
        return None;
    }
    Some(seq)
}

impl FilePageStore {
    /// Opens (or initializes) the database directory at `dir`.
    ///
    /// A fresh or empty directory is initialized with `page_bytes` page
    /// capacity; an existing database keeps the capacity recorded in its
    /// header (callers read it back via [`PageStore::page_bytes`]). The
    /// WAL's torn tail, if any, is truncated here.
    pub fn open(dir: impl Into<PathBuf>, page_bytes: usize) -> Result<FilePageStore, StorageError> {
        Self::open_with(dir, page_bytes, DEFAULT_WAL_SEGMENT_BYTES)
    }

    /// [`FilePageStore::open`] with an explicit WAL segment-size cap
    /// (floored at twice the segment header; tiny caps are useful to
    /// exercise rotation in tests and crash campaigns).
    pub fn open_with(
        dir: impl Into<PathBuf>,
        page_bytes: usize,
        segment_bytes: u64,
    ) -> Result<FilePageStore, StorageError> {
        let dir = dir.into();
        let segment_bytes = segment_bytes.max(2 * WAL_SEGMENT_HEADER as u64);
        fs::create_dir_all(&dir).map_err(io_err("create_dir", &dir))?;
        let meta_path = dir.join("rdb.meta");
        let (page_bytes, base_lsn) = if meta_path.exists() {
            Self::read_meta(&meta_path)?
        } else {
            if !(64..=FRAME_PAYLOAD_MAX - 16).contains(&page_bytes) {
                return Err(StorageError::RecordTooLarge {
                    size: page_bytes,
                    max: FRAME_PAYLOAD_MAX - 16,
                });
            }
            write_meta(&meta_path, page_bytes, 0)?;
            (page_bytes, 0)
        };

        // Walk the segment chain in sequence order, applying crash
        // semantics at the first damage: a torn record tail truncates that
        // segment; a bad or mismatched header, or a sequence gap, ends the
        // log there. Everything past the end was never durably reachable
        // and is deleted.
        let mut entries_max_lsn = 0;
        let mut last_good: Option<(u64, PathBuf)> = None;
        let mut ended = false;
        for (seq, path) in Self::wal_segments(&dir)? {
            if ended {
                fs::remove_file(&path).map_err(io_err("remove", &path))?;
                continue;
            }
            if let Some((prev, _)) = &last_good {
                if seq != prev + 1 {
                    ended = true;
                    fs::remove_file(&path).map_err(io_err("remove", &path))?;
                    continue;
                }
            }
            let bytes = fs::read(&path).map_err(io_err("read", &path))?;
            if parse_segment_header(&bytes) != Some(seq) {
                ended = true;
                fs::remove_file(&path).map_err(io_err("remove", &path))?;
                continue;
            }
            let body = bytes.get(WAL_SEGMENT_HEADER..).unwrap_or(&[]);
            let view = decode_stream(body);
            if let Some((lsn, _)) = view.entries.last() {
                entries_max_lsn = entries_max_lsn.max(*lsn);
            }
            if view.truncated {
                // Crash mid-append: discard the torn tail so new appends
                // start at a clean record boundary.
                let f = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(io_err("open", &path))?;
                f.set_len((WAL_SEGMENT_HEADER + view.clean_bytes) as u64)
                    .map_err(io_err("truncate", &path))?;
                ended = true;
            }
            last_good = Some((seq, path));
        }

        let (wal, wal_seq, wal_len) = match last_good {
            Some((seq, path)) => {
                let wal = OpenOptions::new()
                    .read(true)
                    .append(true)
                    .open(&path)
                    .map_err(io_err("open", &path))?;
                let len = wal.metadata().map_err(io_err("stat", &path))?.len();
                (wal, seq, len)
            }
            None => {
                let (wal, len) = Self::create_segment(&dir, 1)?;
                (wal, 1, len)
            }
        };
        let next_lsn = base_lsn.max(entries_max_lsn) + 1;

        Ok(FilePageStore {
            dir,
            page_bytes,
            segment_bytes,
            tail: WalTail::new(next_lsn),
            inner: Mutex::new(Inner {
                wal,
                wal_seq,
                wal_len,
                base_lsn,
                stats: StoreStats::default(),
                touched: Vec::new(),
            }),
        })
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the data-frame file backing `file` under `dir` (exposed so
    /// crash harnesses can tear specific frames).
    pub fn data_path(dir: &Path, file: FileId) -> PathBuf {
        dir.join(format!("f{}.rdb", file.0))
    }

    /// Path of WAL segment `seq` under `dir` (exposed so crash harnesses
    /// can cut specific segments).
    pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
        dir.join(format!("wal-{seq:08}.rdb"))
    }

    /// The WAL segments present under `dir`, sorted by sequence number
    /// (exposed for crash harnesses; no validation beyond the filename).
    pub fn wal_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StorageError> {
        let mut out = Vec::new();
        let entries = fs::read_dir(dir).map_err(io_err("read_dir", dir))?;
        for entry in entries {
            let entry = entry.map_err(io_err("read_dir", dir))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = name
                .strip_prefix("wal-")
                .and_then(|rest| rest.strip_suffix(".rdb"))
                .and_then(|n| n.parse::<u64>().ok())
            {
                out.push((seq, entry.path()));
            }
        }
        out.sort();
        Ok(out)
    }

    /// The 24-byte header opening WAL segment `seq` (exposed so crash
    /// harnesses can fabricate segments byte-for-byte).
    pub fn encode_segment_header(seq: u64) -> [u8; WAL_SEGMENT_HEADER] {
        let mut out = [0u8; WAL_SEGMENT_HEADER];
        out[0..4].copy_from_slice(&WAL_MAGIC.to_le_bytes());
        out[4..8].copy_from_slice(&WAL_VERSION.to_le_bytes());
        out[8..16].copy_from_slice(&seq.to_le_bytes());
        let crc = checksum64(&out[0..16]);
        out[16..24].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Creates WAL segment `seq` holding just its header, synced, and
    /// returns the write handle positioned for appends plus the current
    /// length. An existing file of the same name is truncated: segments
    /// are created only at rotation points, where any leftover content was
    /// never acknowledged.
    fn create_segment(dir: &Path, seq: u64) -> Result<(File, u64), StorageError> {
        let path = Self::segment_path(dir, seq);
        let mut f = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(io_err("open", &path))?;
        f.write_all(&Self::encode_segment_header(seq))
            .map_err(io_err("write", &path))?;
        f.sync_data().map_err(io_err("sync", &path))?;
        Ok((f, WAL_SEGMENT_HEADER as u64))
    }

    fn read_meta(path: &Path) -> Result<(usize, Lsn), StorageError> {
        let bytes = fs::read(path).map_err(io_err("read", path))?;
        let parsed = (|| {
            let magic = le32(&bytes, 0)?;
            let version = le32(&bytes, 4)?;
            let page_bytes = le32(&bytes, 8)? as usize;
            let base_lsn = le64(&bytes, 12)?;
            let crc = le64(&bytes, 20)?;
            if magic != META_MAGIC || version != META_VERSION {
                return None;
            }
            if checksum64(bytes.get(0..20)?) != crc {
                return None;
            }
            Some((page_bytes, base_lsn))
        })();
        parsed.ok_or(StorageError::Corrupt("database header (rdb.meta)"))
    }

    fn frame_file(&self, file: FileId, create: bool) -> Result<Option<File>, StorageError> {
        let path = Self::data_path(&self.dir, file);
        let open = OpenOptions::new()
            .read(true)
            .write(true)
            .create(create)
            .open(&path);
        match open {
            Ok(f) => Ok(Some(f)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound && !create => Ok(None),
            Err(e) => Err(StorageError::io("open", &path, &e)),
        }
    }

    /// Decodes one on-disk frame into what [`PageStore::read_page`] returns
    /// for `page`. `frame` may be short (a read past EOF — no frame) or
    /// all-zero (a hole); both read as `None`. Pure — counters are the
    /// caller's job.
    fn decode_frame(&self, page: PageId, frame: &[u8]) -> Result<Option<(Page, Lsn)>, StorageError> {
        if frame.len() < FRAME_HEADER {
            return Ok(None); // past EOF: no frame for this page
        }
        let torn = Err(StorageError::TornPage {
            file: page.file,
            page: page.page,
        });
        let Some(magic) = le32(frame, 0) else {
            return torn;
        };
        if magic == 0 && frame.iter().all(|&b| b == 0) {
            return Ok(None); // hole: frame never written
        }
        if magic != FRAME_MAGIC {
            return torn;
        }
        let header = (|| {
            let file_id = le32(frame, 4)?;
            let page_no = le32(frame, 8)?;
            let lsn = le64(frame, 12)?;
            let len = le32(frame, 20)? as usize;
            let crc = le64(frame, 24)?;
            Some((file_id, page_no, lsn, len, crc))
        })();
        let Some((file_id, page_no, lsn, len, crc)) = header else {
            return torn;
        };
        if file_id != page.file.0 || page_no != page.page || len > FRAME_PAYLOAD_MAX {
            return torn;
        }
        let Some(payload) = frame.get(FRAME_HEADER..FRAME_HEADER + len) else {
            return torn;
        };
        let mut summed = frame.get(4..24).unwrap_or(&[]).to_vec();
        summed.extend_from_slice(payload);
        if checksum64(&summed) != crc {
            return torn;
        }
        match Page::decode_image(self.page_bytes, payload) {
            Ok(image) => Ok(Some((image, lsn))),
            Err(_) => torn,
        }
    }
}

fn write_meta(path: &Path, page_bytes: usize, base_lsn: Lsn) -> Result<(), StorageError> {
    let mut bytes = Vec::with_capacity(28);
    bytes.extend_from_slice(&META_MAGIC.to_le_bytes());
    bytes.extend_from_slice(&META_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(page_bytes as u32).to_le_bytes());
    bytes.extend_from_slice(&base_lsn.to_le_bytes());
    let crc = checksum64(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    replace_file(path, &bytes)
}

impl PageStore for FilePageStore {
    fn is_durable(&self) -> bool {
        true
    }

    fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    fn max_image_len(&self) -> usize {
        FRAME_PAYLOAD_MAX
    }

    fn read_page(&self, page: PageId) -> Result<Option<(Page, Lsn)>, StorageError> {
        let Some(mut file) = self.frame_file(page.file, false)? else {
            return Ok(None);
        };
        let path = Self::data_path(&self.dir, page.file);
        let mut frame = vec![0u8; FRAME_BYTES];
        let offset = page.page as u64 * FRAME_BYTES as u64;
        let got = read_at(&mut file, offset, &mut frame).map_err(io_err("read", &path))?;
        frame.truncate(got);
        let out = self.decode_frame(page, &frame);
        if matches!(out, Ok(Some(_))) {
            lock(&self.inner).stats.page_reads += 1;
        }
        out
    }

    fn read_run(
        &self,
        file: FileId,
        first: u32,
        n: u32,
    ) -> Vec<Result<Option<(Page, Lsn)>, StorageError>> {
        if n == 0 {
            return Vec::new();
        }
        let pages = || (0..n).map(|i| PageId::new(file, first.saturating_add(i)));
        let handle = match self.frame_file(file, false) {
            Ok(Some(f)) => f,
            Ok(None) => return pages().map(|_| Ok(None)).collect(),
            Err(e) => return pages().map(|_| Err(e.clone())).collect(),
        };
        let mut handle = handle;
        let path = Self::data_path(&self.dir, file);
        // One positioned read covers the whole run — this is the syscall
        // batching the read-ahead exists for. Frames still verify
        // individually, so a torn frame poisons only its own slot.
        let mut buf = vec![0u8; n as usize * FRAME_BYTES];
        let offset = first as u64 * FRAME_BYTES as u64;
        let got = match read_at(&mut handle, offset, &mut buf).map_err(io_err("read", &path)) {
            Ok(got) => got,
            Err(e) => return pages().map(|_| Err(e.clone())).collect(),
        };
        buf.truncate(got);
        let out: Vec<Result<Option<(Page, Lsn)>, StorageError>> = pages()
            .enumerate()
            .map(|(i, page)| {
                let start = i * FRAME_BYTES;
                let frame = buf.get(start..).map_or(&[][..], |rest| {
                    &rest[..FRAME_BYTES.min(rest.len())]
                });
                self.decode_frame(page, frame)
            })
            .collect();
        let read = out.iter().filter(|r| matches!(r, Ok(Some(_)))).count() as u64;
        let mut inner = lock(&self.inner);
        inner.stats.page_reads += read;
        inner.stats.batch_reads += 1;
        out
    }

    fn write_page(&self, page: PageId, image: &Page, lsn: Lsn) -> Result<(), StorageError> {
        let mut payload = Vec::with_capacity(image.image_len());
        image.encode_image(&mut payload)?;
        if payload.len() > FRAME_PAYLOAD_MAX {
            return Err(StorageError::RecordTooLarge {
                size: payload.len(),
                max: FRAME_PAYLOAD_MAX,
            });
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        frame.extend_from_slice(&page.file.0.to_le_bytes());
        frame.extend_from_slice(&page.page.to_le_bytes());
        frame.extend_from_slice(&lsn.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let mut summed = frame.get(4..24).unwrap_or(&[]).to_vec();
        summed.extend_from_slice(&payload);
        frame.extend_from_slice(&checksum64(&summed).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.resize(FRAME_BYTES, 0);

        let path = Self::data_path(&self.dir, page.file);
        let Some(mut file) = self.frame_file(page.file, true)? else {
            return Err(StorageError::Io {
                op: "open",
                path: path.display().to_string(),
                detail: "data file vanished".into(),
            });
        };
        let offset = page.page as u64 * FRAME_BYTES as u64;
        write_at(&mut file, offset, &frame).map_err(io_err("write", &path))?;
        let mut inner = lock(&self.inner);
        inner.stats.page_writes += 1;
        if !inner.touched.contains(&page.file) {
            inner.touched.push(page.file);
        }
        Ok(())
    }

    fn file_pages(&self, file: FileId) -> Result<u32, StorageError> {
        let path = Self::data_path(&self.dir, file);
        match fs::metadata(&path) {
            Ok(m) => Ok((m.len() / FRAME_BYTES as u64) as u32),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(StorageError::io("stat", &path, &e)),
        }
    }

    fn files(&self) -> Result<Vec<FileId>, StorageError> {
        let mut out = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(io_err("read_dir", &self.dir))?;
        for entry in entries {
            let entry = entry.map_err(io_err("read_dir", &self.dir))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = name
                .strip_prefix('f')
                .and_then(|rest| rest.strip_suffix(".rdb"))
                .and_then(|n| n.parse::<u32>().ok())
            {
                out.push(FileId(id));
            }
        }
        out.sort();
        Ok(out)
    }

    fn append(&self, record: &WalRecord) -> Result<Lsn, StorageError> {
        let mut inner = lock(&self.inner);
        // The mutex serializes appends, so allocation order is log order;
        // publication below is the lock-free handoff a checkpoint trusts.
        let lsn = self.tail.allocate();
        let mut bytes = Vec::with_capacity(64);
        encode_entry(lsn, record, &mut bytes);
        // Rotate when this record would push the segment past its cap —
        // unless the segment is still empty (a record larger than the cap
        // gets an oversize segment to itself rather than rotating forever).
        if inner.wal_len > WAL_SEGMENT_HEADER as u64
            && inner.wal_len + bytes.len() as u64 > self.segment_bytes
        {
            let old_path = Self::segment_path(&self.dir, inner.wal_seq);
            inner
                .wal
                .sync_data()
                .map_err(io_err("sync", &old_path))?;
            let (wal, len) = Self::create_segment(&self.dir, inner.wal_seq + 1)?;
            inner.wal = wal;
            inner.wal_seq += 1;
            inner.wal_len = len;
        }
        let path = Self::segment_path(&self.dir, inner.wal_seq);
        inner
            .wal
            .write_all(&bytes)
            .map_err(io_err("append", &path))?;
        inner.wal_len += bytes.len() as u64;
        inner.stats.wal_appends += 1;
        // Only now — the frame is on the segment — may the LSN be
        // published as framed (the harness (d) invariant).
        self.tail.publish(lsn);
        Ok(lsn)
    }

    fn wal(&self) -> Result<WalView, StorageError> {
        let base = lock(&self.inner).base_lsn;
        let mut out = WalView::default();
        let mut prev_seq: Option<u64> = None;
        for (seq, path) in Self::wal_segments(&self.dir)? {
            if prev_seq.is_some_and(|p| seq != p + 1) {
                out.truncated = true;
                break;
            }
            let bytes = fs::read(&path).map_err(io_err("read", &path))?;
            if parse_segment_header(&bytes) != Some(seq) {
                out.truncated = true;
                break;
            }
            let body = bytes.get(WAL_SEGMENT_HEADER..).unwrap_or(&[]);
            let view = decode_stream(body);
            out.clean_bytes += view.clean_bytes;
            out.entries.extend(view.entries);
            if view.truncated {
                out.truncated = true;
                break;
            }
            prev_seq = Some(seq);
        }
        out.entries.retain(|(lsn, _)| *lsn > base);
        Ok(out)
    }

    fn base_lsn(&self) -> Lsn {
        lock(&self.inner).base_lsn
    }

    fn read_catalog(&self) -> Result<Option<Vec<u8>>, StorageError> {
        let path = self.dir.join("catalog.rdb");
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StorageError::io("read", &path, &e)),
        };
        let parsed = (|| {
            let len = le32(&bytes, 0)? as usize;
            let crc = le64(&bytes, 4)?;
            let blob = bytes.get(12..12 + len)?;
            if bytes.len() != 12 + len || checksum64(blob) != crc {
                return None;
            }
            Some(blob.to_vec())
        })();
        parsed
            .map(Some)
            .ok_or(StorageError::Corrupt("catalog blob (catalog.rdb)"))
    }

    fn checkpoint_done(&self, catalog: &[u8], end_lsn: Lsn) -> Result<(), StorageError> {
        // A checkpoint declares everything up to `end_lsn` durable in the
        // data files; an `end_lsn` beyond the framed high-water mark would
        // discard WAL coverage for records that were never logged.
        if end_lsn > self.tail.published() {
            return Err(StorageError::Corrupt(
                "checkpoint end_lsn beyond the framed WAL tail",
            ));
        }
        let mut framed = Vec::with_capacity(12 + catalog.len());
        framed.extend_from_slice(&(catalog.len() as u32).to_le_bytes());
        framed.extend_from_slice(&checksum64(catalog).to_le_bytes());
        framed.extend_from_slice(catalog);
        replace_file(&self.dir.join("catalog.rdb"), &framed)?;
        // Header advance is the commit point of the checkpoint: a crash
        // before it replays from the old base (data frames may be newer —
        // the per-page LSN guard skips those records); a crash after it
        // replays nothing older than `end_lsn`.
        write_meta(&self.dir.join("rdb.meta"), self.page_bytes, end_lsn)?;
        let mut inner = lock(&self.inner);
        inner.base_lsn = end_lsn;
        // Recycle the chain: start a fresh segment, then delete every
        // released one. A crash anywhere in here is harmless — the header
        // already advanced, so surviving old segments replay to nothing.
        let released = inner.wal_seq;
        let (wal, len) = Self::create_segment(&self.dir, released + 1)?;
        inner.wal = wal;
        inner.wal_seq = released + 1;
        inner.wal_len = len;
        drop(inner);
        for (seq, path) in Self::wal_segments(&self.dir)? {
            if seq <= released {
                match fs::remove_file(&path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(StorageError::io("remove", &path, &e)),
                }
            }
        }
        Ok(())
    }

    fn sync(&self) -> Result<(), StorageError> {
        let mut inner = lock(&self.inner);
        let path = Self::segment_path(&self.dir, inner.wal_seq);
        inner.wal.sync_data().map_err(io_err("sync", &path))?;
        let touched = std::mem::take(&mut inner.touched);
        for file in touched {
            let path = Self::data_path(&self.dir, file);
            match File::open(&path) {
                Ok(f) => f.sync_data().map_err(io_err("sync", &path))?,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(StorageError::io("open", &path, &e)),
            }
        }
        inner.stats.syncs += 1;
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        lock(&self.inner).stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rdb-filestore-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn page_with(bytes: &[u8]) -> Page {
        let mut p = Page::new(DURABLE_PAGE_BYTES);
        p.insert(bytes.to_vec()).unwrap();
        p
    }

    #[test]
    fn frames_roundtrip_across_reopen() {
        let dir = temp_dir("roundtrip");
        let pid = PageId::new(FileId(3), 2);
        {
            let store = FilePageStore::open(&dir, DURABLE_PAGE_BYTES).unwrap();
            store.write_page(pid, &page_with(b"hello"), 17).unwrap();
            store.sync().unwrap();
            assert_eq!(store.file_pages(FileId(3)).unwrap(), 3);
        }
        let store = FilePageStore::open(&dir, 123).unwrap();
        assert_eq!(store.page_bytes(), DURABLE_PAGE_BYTES, "header wins over arg");
        let (page, lsn) = store.read_page(pid).unwrap().unwrap();
        assert_eq!(lsn, 17);
        assert_eq!(page.slot_bytes(0), Some(&b"hello"[..]));
        // Holes before the written frame read as None.
        assert_eq!(store.read_page(PageId::new(FileId(3), 0)).unwrap(), None);
        assert_eq!(store.read_page(PageId::new(FileId(3), 9)).unwrap(), None);
        assert_eq!(store.stats().page_reads, 1, "holes are not real reads");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_frame_is_a_typed_error() {
        let dir = temp_dir("torn");
        let pid = PageId::new(FileId(0), 0);
        let store = FilePageStore::open(&dir, DURABLE_PAGE_BYTES).unwrap();
        store.write_page(pid, &page_with(b"data"), 5).unwrap();
        drop(store);
        // Flip a payload byte.
        let path = FilePageStore::data_path(&dir, FileId(0));
        let mut bytes = fs::read(&path).unwrap();
        bytes[FRAME_HEADER + 2] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let store = FilePageStore::open(&dir, DURABLE_PAGE_BYTES).unwrap();
        assert_eq!(
            store.read_page(pid),
            Err(StorageError::TornPage {
                file: FileId(0),
                page: 0
            })
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_appends_survive_reopen_and_tail_tear() {
        let dir = temp_dir("wal");
        {
            let store = FilePageStore::open(&dir, DURABLE_PAGE_BYTES).unwrap();
            store.append(&WalRecord::CheckpointBegin).unwrap();
            store
                .append(&WalRecord::Catalog { blob: vec![1, 2] })
                .unwrap();
        }
        // Tear the tail mid-record.
        let wal_path = FilePageStore::segment_path(&dir, 1);
        let len = fs::metadata(&wal_path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&wal_path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let store = FilePageStore::open(&dir, DURABLE_PAGE_BYTES).unwrap();
        let view = store.wal().unwrap();
        assert_eq!(view.entries.len(), 1, "torn record discarded");
        // New appends continue past the surviving log: the torn record was
        // never durable, so its LSN is legitimately reusable.
        let lsn = store.append(&WalRecord::CheckpointBegin).unwrap();
        assert!(lsn > 1, "LSNs stay monotonic after a tear (got {lsn})");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_run_matches_read_page_and_isolates_torn_frames() {
        let dir = temp_dir("readrun");
        let fid = FileId(1);
        {
            let store = FilePageStore::open(&dir, DURABLE_PAGE_BYTES).unwrap();
            for p in [0u32, 1, 3, 4] {
                // Page 2 stays a hole.
                let image = page_with(format!("p{p}").as_bytes());
                store
                    .write_page(PageId::new(fid, p), &image, p as Lsn + 1)
                    .unwrap();
            }
        }
        // Tear frame 3's payload.
        let path = FilePageStore::data_path(&dir, fid);
        let mut bytes = fs::read(&path).unwrap();
        bytes[3 * FRAME_BYTES + FRAME_HEADER] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let store = FilePageStore::open(&dir, DURABLE_PAGE_BYTES).unwrap();
        // The run spans a hole, a torn frame, and EOF (pages 5..7).
        let run = store.read_run(fid, 0, 7);
        assert_eq!(run.len(), 7);
        let stats = store.stats();
        assert_eq!(stats.batch_reads, 1, "one positioned read for the run");
        assert_eq!(stats.page_reads, 3, "only intact frames count as reads");
        for (i, got) in run.into_iter().enumerate() {
            let single = store.read_page(PageId::new(fid, i as u32));
            assert_eq!(got, single, "page {i} must match the per-page path");
        }
        assert_eq!(
            store.read_run(FileId(42), 0, 3),
            vec![Ok(None), Ok(None), Ok(None)],
            "missing data file reads as holes"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_rotates_into_capped_segments_and_replays_across_them() {
        let dir = temp_dir("segrotate");
        let n = 40u64;
        {
            // A tiny cap forces rotation every couple of records.
            let store = FilePageStore::open_with(&dir, DURABLE_PAGE_BYTES, 96).unwrap();
            for i in 0..n {
                store
                    .append(&WalRecord::Catalog { blob: vec![i as u8; 16] })
                    .unwrap();
            }
            let segments = FilePageStore::wal_segments(&dir).unwrap();
            assert!(
                segments.len() > 3,
                "the cap must force rotation ({} segments)",
                segments.len()
            );
            for (seq, path) in &segments {
                let bytes = fs::read(path).unwrap();
                assert_eq!(parse_segment_header(&bytes), Some(*seq));
            }
            let view = store.wal().unwrap();
            assert_eq!(view.entries.len() as u64, n);
        }
        // Reopen: recovery walks the whole chain in order.
        let store = FilePageStore::open(&dir, DURABLE_PAGE_BYTES).unwrap();
        let view = store.wal().unwrap();
        assert_eq!(view.entries.len() as u64, n);
        let lsns: Vec<Lsn> = view.entries.iter().map(|(l, _)| *l).collect();
        assert!(lsns.windows(2).all(|w| w[0] < w[1]), "LSNs stay ordered");
        // New appends continue the chain past everything recovered.
        let lsn = store.append(&WalRecord::CheckpointBegin).unwrap();
        assert_eq!(lsn, n + 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cut_inside_a_segment_drops_everything_after_it() {
        let dir = temp_dir("segcut");
        {
            let store = FilePageStore::open_with(&dir, DURABLE_PAGE_BYTES, 96).unwrap();
            for i in 0..20u64 {
                store
                    .append(&WalRecord::Catalog { blob: vec![i as u8; 16] })
                    .unwrap();
            }
        }
        let segments = FilePageStore::wal_segments(&dir).unwrap();
        assert!(segments.len() >= 4, "need a chain to cut into");
        // Cut a few bytes into the *second* segment's record stream.
        let (victim_seq, victim_path) = segments[1].clone();
        let len = fs::metadata(&victim_path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&victim_path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let store = FilePageStore::open(&dir, DURABLE_PAGE_BYTES).unwrap();
        let view = store.wal().unwrap();
        assert!(!view.entries.is_empty(), "records before the cut survive");
        // Every surviving record predates the victim's torn tail, and the
        // segments after the victim are gone.
        let survivors = FilePageStore::wal_segments(&dir).unwrap();
        assert!(
            survivors.iter().all(|(seq, _)| *seq <= victim_seq),
            "segments after the cut must be deleted: {survivors:?}"
        );
        // Appends resume on the truncated segment and stay readable.
        store.append(&WalRecord::CheckpointBegin).unwrap();
        let after = store.wal().unwrap();
        assert_eq!(after.entries.len(), view.entries.len() + 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_segment_header_ends_the_log_there() {
        let dir = temp_dir("seghdr");
        {
            let store = FilePageStore::open_with(&dir, DURABLE_PAGE_BYTES, 96).unwrap();
            for i in 0..20u64 {
                store
                    .append(&WalRecord::Catalog { blob: vec![i as u8; 16] })
                    .unwrap();
            }
        }
        let segments = FilePageStore::wal_segments(&dir).unwrap();
        assert!(segments.len() >= 3);
        // Corrupt the third segment's header checksum.
        let (_, path) = segments[2].clone();
        let mut bytes = fs::read(&path).unwrap();
        bytes[17] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let before_cut: usize = segments[..2]
            .iter()
            .map(|(_, p)| {
                let b = fs::read(p).unwrap();
                decode_stream(&b[WAL_SEGMENT_HEADER..]).entries.len()
            })
            .sum();
        let store = FilePageStore::open(&dir, DURABLE_PAGE_BYTES).unwrap();
        assert_eq!(store.wal().unwrap().entries.len(), before_cut);
        let survivors = FilePageStore::wal_segments(&dir).unwrap();
        assert_eq!(survivors.len(), 2, "bad segment and later ones deleted");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_recycles_the_segment_chain() {
        let dir = temp_dir("segrecycle");
        let store = FilePageStore::open_with(&dir, DURABLE_PAGE_BYTES, 96).unwrap();
        for i in 0..20u64 {
            store
                .append(&WalRecord::Catalog { blob: vec![i as u8; 16] })
                .unwrap();
        }
        let before = FilePageStore::wal_segments(&dir).unwrap();
        assert!(before.len() > 2);
        let high = before.last().unwrap().0;
        let end = store.append(&WalRecord::CheckpointEnd { begin: 1 }).unwrap();
        store.checkpoint_done(b"CAT", end).unwrap();
        let after = FilePageStore::wal_segments(&dir).unwrap();
        assert_eq!(after.len(), 1, "one fresh segment after recycle");
        assert_eq!(after[0].0, high + 1, "sequence numbers never reused");
        assert!(store.wal().unwrap().entries.is_empty());
        // The recycled chain keeps working across reopen.
        drop(store);
        let store = FilePageStore::open(&dir, DURABLE_PAGE_BYTES).unwrap();
        assert_eq!(store.base_lsn(), end);
        store.append(&WalRecord::CheckpointBegin).unwrap();
        assert_eq!(store.wal().unwrap().entries.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_persists_catalog_and_releases_wal() {
        let dir = temp_dir("ckpt");
        let store = FilePageStore::open(&dir, DURABLE_PAGE_BYTES).unwrap();
        store.append(&WalRecord::CheckpointBegin).unwrap();
        let end = store
            .append(&WalRecord::CheckpointEnd { begin: 1 })
            .unwrap();
        store.checkpoint_done(b"CATALOG", end).unwrap();
        assert!(store.wal().unwrap().entries.is_empty());
        drop(store);
        let store = FilePageStore::open(&dir, DURABLE_PAGE_BYTES).unwrap();
        assert_eq!(store.base_lsn(), end);
        assert_eq!(store.read_catalog().unwrap(), Some(b"CATALOG".to_vec()));
        assert!(store.wal().unwrap().entries.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
