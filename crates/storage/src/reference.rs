//! Reference buffer-pool model: `HashMap`-plus-slab midpoint-insertion
//! LRU, kept as an executable specification.
//!
//! [`crate::BufferPool`] implements the same policy over an open-addressed
//! table for speed; correctness of that implementation is defined as
//! *observable equivalence to this model* — identical hit/miss
//! classification, eviction order, counters and charges on any
//! access/perturb/clear interleaving. The property tests in
//! `tests/proptests.rs` check exactly that (for both eviction policies),
//! and the `hotpath` benchmark measures the speedup against this baseline.
//!
//! # The midpoint policy
//!
//! The LRU list is split into a **young** prefix (head side) and an **old**
//! suffix (tail side) of target length `T = policy.old_target(len)` —
//! 3/8 of the *current* list length for
//! [`EvictionPolicy::Midpoint`]. The invariant restored after every
//! operation is `old_len >= T` — old pages always form a contiguous
//! suffix, and the young sublist (membership earned only by
//! re-reference) never exceeds `len - T`.
//!
//! * A **miss** inserts the new page at the *old-sublist head* (the
//!   midpoint), not the global head: one touch is not yet evidence of a
//!   working set.
//! * A **hit** — second touch or later — moves the page to the global head
//!   and marks it young: promotion happens only on re-reference.
//! * **Eviction** takes the global tail, which is always an old page.
//!
//! A beyond-RAM sequential scan therefore churns through the old sublist
//! only, while the re-referenced working set rides the young sublist —
//! scan-resistant caching. Pure LRU is the degenerate `T == len`:
//! every page is old, the midpoint is the head, and insert/promote/evict
//! reduce to classic LRU positions, which is how
//! [`EvictionPolicy::Lru`] is implemented (one code path, no branches).

use std::collections::HashMap;

use crate::buffer::{Access, EvictionPolicy, FileId, PageId};
use crate::cost::SharedCost;

const NIL: usize = usize::MAX;

/// Intrusive doubly-linked LRU node stored in a slab.
#[derive(Debug, Clone, Copy)]
struct Node {
    page: PageId,
    prev: usize,
    next: usize,
    /// True while the node sits in the old (tail-side) sublist.
    old: bool,
}

/// The reference pool: `HashMap` index into a slab of LRU nodes, with the
/// young/old midpoint boundary tracked explicitly.
#[derive(Debug)]
pub struct ReferencePool {
    cost: SharedCost,
    capacity: usize,
    /// Replacement policy — determines the old-sublist target length
    /// (see module docs).
    policy: EvictionPolicy,
    map: HashMap<PageId, usize>,
    slab: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used (always old when non-empty)
    /// First old node walking head→tail, or `NIL` when the old sublist is
    /// empty.
    mid: usize,
    old_len: usize,
    hits: u64,
    misses: u64,
}

impl ReferencePool {
    /// Creates a pool that can hold `capacity` pages (`capacity >= 1`)
    /// under the default [`EvictionPolicy::Midpoint`] policy.
    pub fn new(capacity: usize, cost: SharedCost) -> Self {
        Self::with_policy(capacity, EvictionPolicy::Midpoint, cost)
    }

    /// Creates a pool with an explicit eviction policy.
    pub fn with_policy(capacity: usize, policy: EvictionPolicy, cost: SharedCost) -> Self {
        assert!(capacity >= 1, "buffer pool capacity must be at least 1");
        ReferencePool {
            cost,
            capacity,
            policy,
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            mid: NIL,
            old_len: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of pages currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Touches `page`, classifying the access and charging the meter.
    pub fn access(&mut self, page: PageId) -> Access {
        if let Some(&idx) = self.map.get(&page) {
            self.promote(idx);
            self.hits += 1;
            self.cost.charge_cache_hit();
            return Access::Hit;
        }
        self.misses += 1;
        self.cost.charge_page_read();
        self.admit(page);
        Access::Miss
    }

    /// True if `page` is currently resident (no cost, no LRU touch).
    pub fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    /// Evicts every resident page — a cold restart.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.mid = NIL;
        self.old_len = 0;
    }

    /// Faults in `foreign_pages` pages of `foreign_file` without charging;
    /// already-resident foreign pages keep their recency.
    pub fn perturb(&mut self, foreign_file: FileId, foreign_pages: u32) {
        for p in 0..foreign_pages {
            self.perturb_one(PageId::new(foreign_file, p));
        }
    }

    /// Faults in a single page without charging (the unit step of
    /// [`ReferencePool::perturb`], exposed so sharded differential tests
    /// can route perturbations page by page).
    pub fn perturb_one(&mut self, page: PageId) {
        if self.map.contains_key(&page) {
            return;
        }
        self.admit(page);
    }

    /// The miss/fault insertion path: evict if full, link the new page at
    /// the midpoint, restore the sublist invariant.
    fn admit(&mut self, page: PageId) {
        if self.map.len() == self.capacity {
            self.evict_lru();
        }
        let idx = self.alloc(page);
        self.insert_at_mid(idx);
        self.map.insert(page, idx);
        self.rebalance();
    }

    /// The hit path: move `idx` to the global head as a young node,
    /// restore the sublist invariant.
    fn promote(&mut self, idx: usize) {
        if self.slab[idx].old {
            self.old_len -= 1;
            if self.mid == idx {
                self.mid = self.slab[idx].next;
            }
            self.slab[idx].old = false;
        }
        self.unlink(idx);
        self.push_front(idx);
        self.rebalance();
    }

    /// Restores `old_len >= policy.old_target(len)` by demoting young-tail
    /// nodes into the old sublist (no node is repositioned, only
    /// re-labelled). One-sided on purpose: the old sublist may *exceed*
    /// its target — misses stay old until genuinely re-referenced — and
    /// only a hit's promotion can shrink it, so the bound caps the young
    /// sublist at `len - target` without ever promoting a page the
    /// workload did not touch twice.
    fn rebalance(&mut self) {
        let target = self.policy.old_target(self.map.len());
        while self.old_len < target {
            // Demote the young node adjacent to the boundary (the young
            // tail) into the old sublist.
            let idx = if self.mid == NIL {
                self.tail
            } else {
                self.slab[self.mid].prev
            };
            debug_assert_ne!(idx, NIL, "demote with no young node");
            self.slab[idx].old = true;
            self.mid = idx;
            self.old_len += 1;
        }
    }

    fn alloc(&mut self, page: PageId) -> usize {
        let node = Node {
            page,
            prev: NIL,
            next: NIL,
            old: false,
        };
        if let Some(idx) = self.free.pop() {
            self.slab[idx] = node;
            idx
        } else {
            self.slab.push(node);
            self.slab.len() - 1
        }
    }

    fn evict_lru(&mut self) {
        let idx = self.tail;
        debug_assert_ne!(idx, NIL, "evict from empty pool");
        debug_assert!(self.slab[idx].old, "the tail is always an old page");
        let page = self.slab[idx].page;
        self.old_len -= 1;
        if self.mid == idx {
            self.mid = NIL; // idx was the only old node
        }
        self.unlink(idx);
        self.map.remove(&page);
        self.free.push(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let Node { prev, next, .. } = self.slab[idx];
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Links `idx` just above the old-sublist head (the midpoint) and
    /// marks it old. With an empty old sublist the midpoint is the tail
    /// end, so the node is appended there.
    fn insert_at_mid(&mut self, idx: usize) {
        self.slab[idx].old = true;
        if self.mid == NIL {
            // Old sublist empty: the midpoint is the list's back.
            self.slab[idx].prev = self.tail;
            self.slab[idx].next = NIL;
            if self.tail != NIL {
                self.slab[self.tail].next = idx;
            }
            self.tail = idx;
            if self.head == NIL {
                self.head = idx;
            }
        } else {
            let mid = self.mid;
            let prev = self.slab[mid].prev;
            self.slab[idx].prev = prev;
            self.slab[idx].next = mid;
            self.slab[mid].prev = idx;
            if prev == NIL {
                self.head = idx;
            } else {
                self.slab[prev].next = idx;
            }
        }
        self.mid = idx;
        self.old_len += 1;
    }
}
