//! Reference buffer-pool model: the original `HashMap`-plus-slab true-LRU
//! implementation, kept verbatim as an executable specification.
//!
//! [`crate::BufferPool`] replaced this with an open-addressed table for
//! speed; correctness of that replacement is defined as *observable
//! equivalence to this model* — identical hit/miss classification, eviction
//! order, counters and charges on any access/perturb/clear interleaving.
//! The property test in `tests/proptests.rs` checks exactly that, and the
//! `hotpath` benchmark measures the speedup against this baseline.

use std::collections::HashMap;

use crate::buffer::{Access, FileId, PageId};
use crate::cost::SharedCost;

const NIL: usize = usize::MAX;

/// Intrusive doubly-linked LRU node stored in a slab.
#[derive(Debug, Clone, Copy)]
struct Node {
    page: PageId,
    prev: usize,
    next: usize,
}

/// The seed `BufferPool`: `HashMap` index into a slab of LRU nodes.
#[derive(Debug)]
pub struct ReferencePool {
    cost: SharedCost,
    capacity: usize,
    map: HashMap<PageId, usize>,
    slab: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    hits: u64,
    misses: u64,
}

impl ReferencePool {
    /// Creates a pool that can hold `capacity` pages (`capacity >= 1`).
    pub fn new(capacity: usize, cost: SharedCost) -> Self {
        assert!(capacity >= 1, "buffer pool capacity must be at least 1");
        ReferencePool {
            cost,
            capacity,
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of pages currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Touches `page`, classifying the access and charging the meter.
    pub fn access(&mut self, page: PageId) -> Access {
        if let Some(&idx) = self.map.get(&page) {
            self.unlink(idx);
            self.push_front(idx);
            self.hits += 1;
            self.cost.charge_cache_hit();
            return Access::Hit;
        }
        self.misses += 1;
        self.cost.charge_page_read();
        if self.map.len() == self.capacity {
            self.evict_lru();
        }
        let idx = self.alloc(page);
        self.push_front(idx);
        self.map.insert(page, idx);
        Access::Miss
    }

    /// True if `page` is currently resident (no cost, no LRU touch).
    pub fn contains(&self, page: PageId) -> bool {
        self.map.contains_key(&page)
    }

    /// Evicts every resident page — a cold restart.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Faults in `foreign_pages` pages of `foreign_file` without charging;
    /// already-resident foreign pages keep their recency.
    pub fn perturb(&mut self, foreign_file: FileId, foreign_pages: u32) {
        for p in 0..foreign_pages {
            self.perturb_one(PageId::new(foreign_file, p));
        }
    }

    /// Faults in a single page without charging (the unit step of
    /// [`ReferencePool::perturb`], exposed so sharded differential tests
    /// can route perturbations page by page).
    pub fn perturb_one(&mut self, page: PageId) {
        if self.map.contains_key(&page) {
            return;
        }
        if self.map.len() == self.capacity {
            self.evict_lru();
        }
        let idx = self.alloc(page);
        self.push_front(idx);
        self.map.insert(page, idx);
    }

    fn alloc(&mut self, page: PageId) -> usize {
        if let Some(idx) = self.free.pop() {
            self.slab[idx] = Node {
                page,
                prev: NIL,
                next: NIL,
            };
            idx
        } else {
            self.slab.push(Node {
                page,
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        }
    }

    fn evict_lru(&mut self) {
        let idx = self.tail;
        debug_assert_ne!(idx, NIL, "evict from empty pool");
        let page = self.slab[idx].page;
        self.unlink(idx);
        self.map.remove(&page);
        self.free.push(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let Node { prev, next, .. } = self.slab[idx];
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}
