//! Temporary tables for spilled RID lists.
//!
//! Section 6: "Each index scan produces a RID list, stores it into a main
//! memory buffer, and writes it into a temporary table upon buffer
//! overflow." This is that temporary table: an append-only RID store with
//! page-granular write cost on spill and read cost on scan-back.

use crate::buffer::{FileId, SharedPool};
use crate::cost::CostMeter;
use crate::error::StorageError;
use crate::rid::Rid;

/// How many RIDs fit on one temp-table page (a RID is 6 bytes; an 8 KiB
/// page holds ~1300; we round to a clean number).
pub const RIDS_PER_PAGE: usize = 1024;

/// Append-only spill store for RIDs, charging page writes as it grows and
/// page reads as it is scanned back.
#[derive(Debug)]
pub struct TempTable {
    file: FileId,
    pool: SharedPool,
    rids: Vec<Rid>,
    pages_written: u32,
    rids_per_page: usize,
}

impl TempTable {
    /// Creates an empty temp table in file `file`.
    pub fn new(file: FileId, pool: SharedPool) -> Self {
        Self::with_rids_per_page(file, pool, RIDS_PER_PAGE)
    }

    /// Creates a temp table with custom page granularity (for tests).
    pub fn with_rids_per_page(file: FileId, pool: SharedPool, rids_per_page: usize) -> Self {
        assert!(rids_per_page >= 1);
        TempTable {
            file,
            pool,
            rids: Vec::new(),
            pages_written: 0,
            rids_per_page,
        }
    }

    /// Number of RIDs stored.
    pub fn len(&self) -> usize {
        self.rids.len()
    }

    /// True if no RIDs are stored.
    pub fn is_empty(&self) -> bool {
        self.rids.is_empty()
    }

    /// Pages written so far.
    pub fn pages_written(&self) -> u32 {
        self.pages_written
    }

    /// Appends a batch of RIDs, charging one page write to `cost` each
    /// time a page boundary is crossed.
    pub fn append(&mut self, batch: &[Rid], cost: &CostMeter) {
        if batch.is_empty() {
            return;
        }
        let before_pages = self.page_count_for(self.rids.len());
        self.rids.extend_from_slice(batch);
        let after_pages = self.page_count_for(self.rids.len());
        if after_pages > before_pages {
            self.pool.write_run(
                self.file,
                before_pages,
                after_pages - before_pages,
                cost,
            );
            self.pages_written = self.pages_written.max(after_pages);
        }
        cost.charge_rid_ops(batch.len() as u64);
    }

    fn page_count_for(&self, n: usize) -> u32 {
        n.div_ceil(self.rids_per_page) as u32
    }

    /// Reads the whole list back in insertion order, charging one page read
    /// per page to `cost`, and returns it. Goes through the pool's fallible
    /// path: temp pages are real storage and die with the rest of the disk.
    pub fn scan_all(&self, cost: &CostMeter) -> Result<Vec<Rid>, StorageError> {
        let pages = self.page_count_for(self.rids.len());
        self.pool.try_access_run(self.file, 0, pages, cost)?;
        Ok(self.rids.clone())
    }

    /// Discards the contents (cheap; temp pages are simply dropped).
    pub fn clear(&mut self) {
        self.rids.clear();
        self.pages_written = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::shared_pool;
    use crate::cost::{shared_meter, CostConfig};

    fn temp(rpp: usize) -> (TempTable, crate::cost::SharedCost) {
        let cost = shared_meter(CostConfig::default());
        let pool = shared_pool(64, cost.clone());
        (
            TempTable::with_rids_per_page(FileId(9), pool, rpp),
            cost,
        )
    }

    fn rids(n: usize) -> Vec<Rid> {
        (0..n).map(|i| Rid::new(i as u32, 0)).collect()
    }

    #[test]
    fn append_charges_page_writes_on_boundaries() {
        let (mut t, cost) = temp(10);
        t.append(&rids(5), &cost);
        assert_eq!(cost.snapshot().page_writes, 1, "first page started");
        t.append(&rids(4), &cost);
        assert_eq!(cost.snapshot().page_writes, 1, "still within page");
        t.append(&rids(2), &cost);
        assert_eq!(cost.snapshot().page_writes, 2, "crossed into page 2");
        assert_eq!(t.len(), 11);
    }

    #[test]
    fn scan_all_returns_in_order_and_charges_reads() {
        let (mut t, cost) = temp(10);
        let input = rids(25);
        t.append(&input, &cost);
        let before = cost.snapshot();
        let out = t.scan_all(&cost).unwrap();
        assert_eq!(out, input);
        assert_eq!(cost.snapshot().since(&before).page_reads + cost.snapshot().since(&before).cache_hits, 3);
    }

    #[test]
    fn clear_resets() {
        let (mut t, cost) = temp(10);
        t.append(&rids(15), &cost);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.pages_written(), 0);
    }

    #[test]
    fn empty_append_is_free() {
        let (mut t, cost) = temp(10);
        t.append(&[], &cost);
        assert_eq!(cost.total(), 0.0);
    }
}
