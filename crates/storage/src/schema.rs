//! Table schemas.

use std::fmt;

use crate::error::StorageError;
use crate::record::Record;
use crate::value::ValueType;

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (case-sensitive).
    pub name: String,
    /// Column type.
    pub ty: ValueType,
    /// Whether NULLs are allowed.
    pub nullable: bool,
}

impl Column {
    /// Creates a non-nullable column.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        Column {
            name: name.into(),
            ty,
            nullable: false,
        }
    }

    /// Creates a nullable column.
    pub fn nullable(name: impl Into<String>, ty: ValueType) -> Self {
        Column {
            name: name.into(),
            ty,
            nullable: true,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Creates a schema; column names must be unique.
    pub fn new(columns: Vec<Column>) -> Self {
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate column name {:?}", a.name);
            }
        }
        Schema { columns }
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of the column named `name`.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column at position `idx`.
    pub fn column(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Validates `record` against this schema (arity, types, nullability).
    pub fn validate(&self, record: &Record) -> Result<(), StorageError> {
        if record.len() != self.columns.len() {
            return Err(StorageError::SchemaMismatch(format!(
                "expected {} columns, got {}",
                self.columns.len(),
                record.len()
            )));
        }
        for (col, value) in self.columns.iter().zip(record.values()) {
            match value.value_type() {
                None if !col.nullable => {
                    return Err(StorageError::SchemaMismatch(format!(
                        "NULL in non-nullable column {:?}",
                        col.name
                    )));
                }
                Some(ty) if ty != col.ty => {
                    return Err(StorageError::SchemaMismatch(format!(
                        "column {:?} expects {}, got {}",
                        col.name, col.ty, ty
                    )));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
            if c.nullable {
                write!(f, " NULL")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", ValueType::Int),
            Column::nullable("name", ValueType::Str),
        ])
    }

    #[test]
    fn column_lookup() {
        let s = schema();
        assert_eq!(s.column_index("name"), Some(1));
        assert_eq!(s.column_index("missing"), None);
    }

    #[test]
    fn validate_accepts_conforming_record() {
        let s = schema();
        assert!(s
            .validate(&Record::new(vec![Value::Int(1), Value::Str("a".into())]))
            .is_ok());
        assert!(s.validate(&Record::new(vec![Value::Int(1), Value::Null])).is_ok());
    }

    #[test]
    fn validate_rejects_bad_arity_type_null() {
        let s = schema();
        assert!(s.validate(&Record::new(vec![Value::Int(1)])).is_err());
        assert!(s
            .validate(&Record::new(vec![Value::Str("x".into()), Value::Null]))
            .is_err());
        assert!(s
            .validate(&Record::new(vec![Value::Null, Value::Null]))
            .is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_panic() {
        Schema::new(vec![
            Column::new("x", ValueType::Int),
            Column::new("x", ValueType::Int),
        ]);
    }
}
