//! Typed column values with a total order and a compact binary codec.
//!
//! The paper's restrictions (`AGE >= :A1`, range predicates on index keys)
//! compare values constantly — both during B-tree descent and during record
//! restriction evaluation — so the comparison here is the single hottest
//! non-I/O operation in the system.

use std::cmp::Ordering;
use std::fmt;

use crate::error::StorageError;

/// The type of a [`Value`]. Used by [`crate::Schema`] for validation and by
/// the binary codec for decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float (ordered via `total_cmp`).
    Float,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Int => f.write_str("INT"),
            ValueType::Float => f.write_str("FLOAT"),
            ValueType::Str => f.write_str("STR"),
        }
    }
}

/// A single column value.
///
/// `Null` sorts before every non-null value, mirroring the index ordering
/// used by Rdb-style B-trees. Cross-type comparisons between `Int` and
/// `Float` compare numerically so mixed-type range bounds behave intuitively;
/// any other cross-type comparison orders by type tag (total order, never
/// panics).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Returns the type of this value, or `None` for `Null` (which is
    /// compatible with every type).
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Str(_) => Some(ValueType::Str),
        }
    }

    /// True iff this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view of the value, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view of the value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) | Value::Float(_) => 1,
            Value::Str(_) => 2,
        }
    }

    /// Serialized size in bytes under the codec used by [`Value::encode`].
    pub fn encoded_len(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) | Value::Float(_) => 9,
            Value::Str(s) => 1 + 4 + s.len(),
        }
    }

    /// Appends the binary encoding of this value to `out`.
    ///
    /// Layout: 1 tag byte (0=Null, 1=Int, 2=Float, 3=Str), then for Int/Float
    /// 8 little-endian bytes, for Str a little-endian u32 length + UTF-8
    /// bytes.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Int(i) => {
                out.push(1);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(2);
                out.extend_from_slice(&f.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }

    /// Decodes one value from `buf` starting at `*pos`, advancing `*pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Value, StorageError> {
        let tag = *buf.get(*pos).ok_or(StorageError::Corrupt("value tag"))?;
        *pos += 1;
        match tag {
            0 => Ok(Value::Null),
            1 => {
                let bytes = read_array::<8>(buf, pos)?;
                Ok(Value::Int(i64::from_le_bytes(bytes)))
            }
            2 => {
                let bytes = read_array::<8>(buf, pos)?;
                Ok(Value::Float(f64::from_le_bytes(bytes)))
            }
            3 => {
                let len_bytes = read_array::<4>(buf, pos)?;
                let len = u32::from_le_bytes(len_bytes) as usize;
                let end = pos
                    .checked_add(len)
                    .filter(|&e| e <= buf.len())
                    .ok_or(StorageError::Corrupt("string length"))?;
                let s = std::str::from_utf8(&buf[*pos..end])
                    .map_err(|_| StorageError::Corrupt("string utf8"))?;
                *pos = end;
                Ok(Value::Str(s.to_owned()))
            }
            _ => Err(StorageError::Corrupt("value tag")),
        }
    }
}

fn read_array<const N: usize>(buf: &[u8], pos: &mut usize) -> Result<[u8; N], StorageError> {
    let end = pos
        .checked_add(N)
        .filter(|&e| e <= buf.len())
        .ok_or(StorageError::Corrupt("value payload"))?;
    let mut arr = [0u8; N];
    arr.copy_from_slice(&buf[*pos..end]);
    *pos = end;
    Ok(arr)
}

impl Eq for Value {}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Hash ints and floats identically when they compare equal.
            Value::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                1u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Str(String::new()));
        assert!(Value::Null < Value::Float(f64::NEG_INFINITY));
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(Value::Int(3).cmp(&Value::Float(3.0)), Ordering::Equal);
        assert!(Value::Int(3) < Value::Float(3.5));
        assert!(Value::Float(2.5) < Value::Int(3));
    }

    #[test]
    fn strings_sort_after_numbers() {
        assert!(Value::Int(i64::MAX) < Value::Str("a".into()));
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Float(f64::INFINITY) < nan);
    }

    #[test]
    fn codec_roundtrip() {
        let values = vec![
            Value::Null,
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Float(3.25),
            Value::Str("héllo".into()),
            Value::Str(String::new()),
        ];
        let mut buf = Vec::new();
        for v in &values {
            let before = buf.len();
            v.encode(&mut buf);
            assert_eq!(buf.len() - before, v.encoded_len());
        }
        let mut pos = 0;
        for v in &values {
            let decoded = Value::decode(&buf, &mut pos).unwrap();
            assert_eq!(&decoded, v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn decode_rejects_truncated() {
        let mut buf = Vec::new();
        Value::Str("hello".into()).encode(&mut buf);
        buf.truncate(buf.len() - 1);
        let mut pos = 0;
        assert!(Value::decode(&buf, &mut pos).is_err());
    }

    #[test]
    fn decode_rejects_bad_tag() {
        let buf = [9u8];
        let mut pos = 0;
        assert!(Value::decode(&buf, &mut pos).is_err());
    }

    #[test]
    fn decode_rejects_overflowing_length() {
        // Str with a length that would overflow usize addition.
        let mut buf = vec![3u8];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut pos = 0;
        assert!(Value::decode(&buf, &mut pos).is_err());
    }

    #[test]
    fn equal_int_float_hash_identically() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
    }
}
