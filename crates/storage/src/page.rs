//! Slotted data pages.
//!
//! Records live in fixed-capacity slotted pages. The slot array gives each
//! record a stable [`crate::Rid`] `(page, slot)` even as other records on
//! the page are deleted; byte accounting enforces the page capacity so page
//! counts — and therefore simulated I/O costs — track record sizes the way
//! they would on disk.

use crate::error::StorageError;
use crate::record::Record;

/// Default page capacity in bytes (payload area).
pub const DEFAULT_PAGE_BYTES: usize = 8192;

/// Per-slot bookkeeping overhead, in bytes, counted against the capacity.
const SLOT_OVERHEAD: usize = 4;

/// One slotted page of serialized records.
#[derive(Debug, Clone)]
pub struct Page {
    capacity: usize,
    used: usize,
    slots: Vec<Option<Vec<u8>>>,
    live: u16,
}

impl Page {
    /// Creates an empty page with `capacity` payload bytes.
    pub fn new(capacity: usize) -> Self {
        Page {
            capacity,
            used: 0,
            slots: Vec::new(),
            live: 0,
        }
    }

    /// Payload capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes used (record payloads + slot overhead).
    pub fn used(&self) -> usize {
        self.used
    }

    /// Number of live (non-deleted) records.
    pub fn live_records(&self) -> u16 {
        self.live
    }

    /// Number of slots ever allocated (live + deleted).
    pub fn slot_count(&self) -> u16 {
        self.slots.len() as u16
    }

    /// True if a record of `record_bytes` payload bytes fits.
    pub fn fits(&self, record_bytes: usize) -> bool {
        self.used + record_bytes + SLOT_OVERHEAD <= self.capacity
            && self.slots.len() < u16::MAX as usize
    }

    /// Inserts an encoded record, returning its slot.
    ///
    /// Callers must check [`Page::fits`] first; inserting into a full page
    /// returns `RecordTooLarge`.
    pub fn insert(&mut self, bytes: Vec<u8>) -> Result<u16, StorageError> {
        if !self.fits(bytes.len()) {
            return Err(StorageError::RecordTooLarge {
                size: bytes.len(),
                max: self.capacity.saturating_sub(self.used + SLOT_OVERHEAD),
            });
        }
        self.used += bytes.len() + SLOT_OVERHEAD;
        self.slots.push(Some(bytes));
        self.live += 1;
        Ok((self.slots.len() - 1) as u16)
    }

    /// Raw bytes of the record in `slot`, if live.
    pub fn slot_bytes(&self, slot: u16) -> Option<&[u8]> {
        self.slots.get(slot as usize)?.as_deref()
    }

    /// Decodes the record in `slot`.
    pub fn record(&self, slot: u16) -> Result<Record, StorageError> {
        let bytes = self.slot_bytes(slot).ok_or(StorageError::InvalidSlot {
            page: 0,
            slot,
        })?;
        Record::decode(bytes)
    }

    /// Deletes the record in `slot`; the slot number is never reused.
    pub fn delete(&mut self, slot: u16) -> Result<(), StorageError> {
        let entry = self
            .slots
            .get_mut(slot as usize)
            .ok_or(StorageError::InvalidSlot { page: 0, slot })?;
        match entry.take() {
            Some(bytes) => {
                self.used -= bytes.len() + SLOT_OVERHEAD;
                self.live -= 1;
                Ok(())
            }
            None => Err(StorageError::InvalidSlot { page: 0, slot }),
        }
    }

    /// Iterates `(slot, bytes)` over live records.
    pub fn iter_live(&self) -> impl Iterator<Item = (u16, &[u8])> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_deref().map(|b| (i as u16, b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn encoded(rec: &Record) -> Vec<u8> {
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        buf
    }

    #[test]
    fn insert_and_read_back() {
        let mut page = Page::new(DEFAULT_PAGE_BYTES);
        let rec = Record::new(vec![Value::Int(7), Value::Str("x".into())]);
        let slot = page.insert(encoded(&rec)).unwrap();
        assert_eq!(page.record(slot).unwrap(), rec);
        assert_eq!(page.live_records(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut page = Page::new(64);
        let rec = Record::new(vec![Value::Str("0123456789012345678901234".into())]);
        let bytes = encoded(&rec);
        assert!(page.insert(bytes.clone()).is_ok());
        assert!(!page.fits(bytes.len()));
        assert!(page.insert(bytes).is_err());
    }

    #[test]
    fn delete_frees_space_but_not_slot_numbers() {
        let mut page = Page::new(DEFAULT_PAGE_BYTES);
        let rec = Record::new(vec![Value::Int(1)]);
        let s0 = page.insert(encoded(&rec)).unwrap();
        let s1 = page.insert(encoded(&rec)).unwrap();
        page.delete(s0).unwrap();
        assert!(page.slot_bytes(s0).is_none());
        assert!(page.slot_bytes(s1).is_some());
        let s2 = page.insert(encoded(&rec)).unwrap();
        assert_ne!(s2, s0, "slots are never reused");
        assert_eq!(page.live_records(), 2);
    }

    #[test]
    fn double_delete_is_an_error() {
        let mut page = Page::new(DEFAULT_PAGE_BYTES);
        let slot = page
            .insert(encoded(&Record::new(vec![Value::Int(1)])))
            .unwrap();
        page.delete(slot).unwrap();
        assert!(page.delete(slot).is_err());
    }

    #[test]
    fn iter_live_skips_deleted() {
        let mut page = Page::new(DEFAULT_PAGE_BYTES);
        for i in 0..5 {
            page.insert(encoded(&Record::new(vec![Value::Int(i)])))
                .unwrap();
        }
        page.delete(2).unwrap();
        let slots: Vec<u16> = page.iter_live().map(|(s, _)| s).collect();
        assert_eq!(slots, vec![0, 1, 3, 4]);
    }
}
