//! Slotted data pages.
//!
//! Records live in fixed-capacity slotted pages. The slot array gives each
//! record a stable [`crate::Rid`] `(page, slot)` even as other records on
//! the page are deleted; byte accounting enforces the page capacity so page
//! counts — and therefore simulated I/O costs — track record sizes the way
//! they would on disk.

use crate::error::StorageError;
use crate::record::Record;

/// Default page capacity in bytes (payload area).
pub const DEFAULT_PAGE_BYTES: usize = 8192;

/// Per-slot bookkeeping overhead, in bytes, counted against the capacity.
const SLOT_OVERHEAD: usize = 4;

/// One slotted page of serialized records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    capacity: usize,
    used: usize,
    slots: Vec<Option<Vec<u8>>>,
    live: u16,
}

impl Page {
    /// Creates an empty page with `capacity` payload bytes.
    pub fn new(capacity: usize) -> Self {
        Page {
            capacity,
            used: 0,
            slots: Vec::new(),
            live: 0,
        }
    }

    /// Payload capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes used (record payloads + slot overhead).
    pub fn used(&self) -> usize {
        self.used
    }

    /// Number of live (non-deleted) records.
    pub fn live_records(&self) -> u16 {
        self.live
    }

    /// Number of slots ever allocated (live + deleted).
    pub fn slot_count(&self) -> u16 {
        self.slots.len() as u16
    }

    /// True if a record of `record_bytes` payload bytes fits.
    pub fn fits(&self, record_bytes: usize) -> bool {
        self.used + record_bytes + SLOT_OVERHEAD <= self.capacity
            && self.slots.len() < u16::MAX as usize
    }

    /// Inserts an encoded record, returning its slot.
    ///
    /// Callers must check [`Page::fits`] first; inserting into a full page
    /// returns `RecordTooLarge`.
    pub fn insert(&mut self, bytes: Vec<u8>) -> Result<u16, StorageError> {
        if !self.fits(bytes.len()) {
            return Err(StorageError::RecordTooLarge {
                size: bytes.len(),
                max: self.capacity.saturating_sub(self.used + SLOT_OVERHEAD),
            });
        }
        self.used += bytes.len() + SLOT_OVERHEAD;
        self.slots.push(Some(bytes));
        self.live += 1;
        Ok((self.slots.len() - 1) as u16)
    }

    /// Raw bytes of the record in `slot`, if live.
    pub fn slot_bytes(&self, slot: u16) -> Option<&[u8]> {
        self.slots.get(slot as usize)?.as_deref()
    }

    /// Decodes the record in `slot`.
    pub fn record(&self, slot: u16) -> Result<Record, StorageError> {
        let bytes = self.slot_bytes(slot).ok_or(StorageError::InvalidSlot {
            page: 0,
            slot,
        })?;
        Record::decode(bytes)
    }

    /// Deletes the record in `slot`; the slot number is never reused.
    pub fn delete(&mut self, slot: u16) -> Result<(), StorageError> {
        let entry = self
            .slots
            .get_mut(slot as usize)
            .ok_or(StorageError::InvalidSlot { page: 0, slot })?;
        match entry.take() {
            Some(bytes) => {
                self.used -= bytes.len() + SLOT_OVERHEAD;
                self.live -= 1;
                Ok(())
            }
            None => Err(StorageError::InvalidSlot { page: 0, slot }),
        }
    }

    /// Iterates `(slot, bytes)` over live records.
    pub fn iter_live(&self) -> impl Iterator<Item = (u16, &[u8])> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_deref().map(|b| (i as u16, b)))
    }

    /// Size in bytes of this page's serialized image (see
    /// [`Page::encode_image`]): the slot-count word plus a length word per
    /// slot (tombstones included) plus the live payload bytes.
    pub fn image_len(&self) -> usize {
        2 + self
            .slots
            .iter()
            .map(|s| 2 + s.as_ref().map_or(0, Vec::len))
            .sum::<usize>()
    }

    /// Serializes the page into `out` as a self-describing image:
    ///
    /// ```text
    /// u16 slot_count | per slot: u16 len + bytes, or 0xFFFF (tombstone)
    /// ```
    ///
    /// Slot numbers — and therefore RIDs — survive the round trip exactly,
    /// tombstones included. Errors only if a record is too long for the
    /// `u16` length word (impossible for disk-sized pages).
    pub fn encode_image(&self, out: &mut Vec<u8>) -> Result<(), StorageError> {
        const TOMBSTONE: u16 = u16::MAX;
        out.extend_from_slice(&(self.slots.len() as u16).to_le_bytes());
        for slot in &self.slots {
            match slot {
                Some(bytes) => {
                    if bytes.len() >= TOMBSTONE as usize {
                        return Err(StorageError::Corrupt("record too long for page image"));
                    }
                    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
                    out.extend_from_slice(bytes);
                }
                None => out.extend_from_slice(&TOMBSTONE.to_le_bytes()),
            }
        }
        Ok(())
    }

    /// Reconstructs a page of `capacity` payload bytes from an image
    /// produced by [`Page::encode_image`]. Byte accounting (`used`, live
    /// count) is recomputed from the decoded slots.
    pub fn decode_image(capacity: usize, buf: &[u8]) -> Result<Page, StorageError> {
        const TOMBSTONE: u16 = u16::MAX;
        let word = |at: usize| -> Result<u16, StorageError> {
            let bytes: [u8; 2] = buf
                .get(at..at + 2)
                .and_then(|b| b.try_into().ok())
                .ok_or(StorageError::Corrupt("truncated page image"))?;
            Ok(u16::from_le_bytes(bytes))
        };
        let slot_count = word(0)? as usize;
        let mut page = Page::new(capacity);
        let mut at = 2usize;
        for _ in 0..slot_count {
            let len = word(at)?;
            at += 2;
            if len == TOMBSTONE {
                page.slots.push(None);
                continue;
            }
            let bytes = buf
                .get(at..at + len as usize)
                .ok_or(StorageError::Corrupt("truncated page image payload"))?;
            at += len as usize;
            page.used += bytes.len() + SLOT_OVERHEAD;
            page.live += 1;
            page.slots.push(Some(bytes.to_vec()));
        }
        if at != buf.len() {
            return Err(StorageError::Corrupt("trailing bytes after page image"));
        }
        Ok(page)
    }

    /// Redo-applies an insert of `bytes` at exactly `slot`, growing the
    /// slot array with tombstones if needed. Used only by WAL replay, which
    /// knows the slot a logged insert landed on; an already-occupied slot
    /// is overwritten (replay is idempotent under the caller's LSN guard).
    pub fn apply_insert_at(&mut self, slot: u16, bytes: Vec<u8>) {
        let at = slot as usize;
        while self.slots.len() <= at {
            self.slots.push(None);
        }
        if let Some(entry) = self.slots.get_mut(at) {
            if let Some(old) = entry.take() {
                self.used -= old.len() + SLOT_OVERHEAD;
                self.live -= 1;
            }
            self.used += bytes.len() + SLOT_OVERHEAD;
            self.live += 1;
            *entry = Some(bytes);
        }
    }

    /// Redo-applies a delete of `slot`. Deleting an absent or already-dead
    /// slot is a no-op (replay is idempotent under the caller's LSN guard).
    pub fn apply_delete_at(&mut self, slot: u16) {
        if let Some(entry) = self.slots.get_mut(slot as usize) {
            if let Some(old) = entry.take() {
                self.used -= old.len() + SLOT_OVERHEAD;
                self.live -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn encoded(rec: &Record) -> Vec<u8> {
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        buf
    }

    #[test]
    fn insert_and_read_back() {
        let mut page = Page::new(DEFAULT_PAGE_BYTES);
        let rec = Record::new(vec![Value::Int(7), Value::Str("x".into())]);
        let slot = page.insert(encoded(&rec)).unwrap();
        assert_eq!(page.record(slot).unwrap(), rec);
        assert_eq!(page.live_records(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut page = Page::new(64);
        let rec = Record::new(vec![Value::Str("0123456789012345678901234".into())]);
        let bytes = encoded(&rec);
        assert!(page.insert(bytes.clone()).is_ok());
        assert!(!page.fits(bytes.len()));
        assert!(page.insert(bytes).is_err());
    }

    #[test]
    fn delete_frees_space_but_not_slot_numbers() {
        let mut page = Page::new(DEFAULT_PAGE_BYTES);
        let rec = Record::new(vec![Value::Int(1)]);
        let s0 = page.insert(encoded(&rec)).unwrap();
        let s1 = page.insert(encoded(&rec)).unwrap();
        page.delete(s0).unwrap();
        assert!(page.slot_bytes(s0).is_none());
        assert!(page.slot_bytes(s1).is_some());
        let s2 = page.insert(encoded(&rec)).unwrap();
        assert_ne!(s2, s0, "slots are never reused");
        assert_eq!(page.live_records(), 2);
    }

    #[test]
    fn double_delete_is_an_error() {
        let mut page = Page::new(DEFAULT_PAGE_BYTES);
        let slot = page
            .insert(encoded(&Record::new(vec![Value::Int(1)])))
            .unwrap();
        page.delete(slot).unwrap();
        assert!(page.delete(slot).is_err());
    }

    #[test]
    fn image_roundtrip_preserves_slots_and_tombstones() {
        let mut page = Page::new(DEFAULT_PAGE_BYTES);
        for i in 0..6 {
            page.insert(encoded(&Record::new(vec![Value::Int(i)]))).unwrap();
        }
        page.delete(1).unwrap();
        page.delete(4).unwrap();
        let mut buf = Vec::new();
        page.encode_image(&mut buf).unwrap();
        assert_eq!(buf.len(), page.image_len());
        let back = Page::decode_image(DEFAULT_PAGE_BYTES, &buf).unwrap();
        assert_eq!(back.used(), page.used());
        assert_eq!(back.live_records(), page.live_records());
        assert_eq!(back.slot_count(), page.slot_count());
        for slot in 0..page.slot_count() {
            assert_eq!(back.slot_bytes(slot), page.slot_bytes(slot));
        }
    }

    #[test]
    fn image_decode_rejects_truncation_and_trailing_garbage() {
        let mut page = Page::new(DEFAULT_PAGE_BYTES);
        page.insert(encoded(&Record::new(vec![Value::Int(9)]))).unwrap();
        let mut buf = Vec::new();
        page.encode_image(&mut buf).unwrap();
        assert!(Page::decode_image(DEFAULT_PAGE_BYTES, &buf[..buf.len() - 1]).is_err());
        let mut long = buf.clone();
        long.push(0);
        assert!(Page::decode_image(DEFAULT_PAGE_BYTES, &long).is_err());
    }

    #[test]
    fn apply_insert_and_delete_replay_exact_slots() {
        let mut page = Page::new(DEFAULT_PAGE_BYTES);
        let bytes = encoded(&Record::new(vec![Value::Int(3)]));
        page.apply_insert_at(2, bytes.clone());
        assert_eq!(page.slot_count(), 3);
        assert_eq!(page.slot_bytes(2), Some(bytes.as_slice()));
        assert!(page.slot_bytes(0).is_none());
        assert_eq!(page.live_records(), 1);
        page.apply_delete_at(2);
        assert_eq!(page.live_records(), 0);
        assert_eq!(page.used(), 0);
        // Idempotent on dead/absent slots.
        page.apply_delete_at(2);
        page.apply_delete_at(40);
        assert_eq!(page.live_records(), 0);
    }

    #[test]
    fn iter_live_skips_deleted() {
        let mut page = Page::new(DEFAULT_PAGE_BYTES);
        for i in 0..5 {
            page.insert(encoded(&Record::new(vec![Value::Int(i)])))
                .unwrap();
        }
        page.delete(2).unwrap();
        let slots: Vec<u16> = page.iter_live().map(|(s, _)| s).collect();
        assert_eq!(slots, vec![0, 1, 3, 4]);
    }
}
