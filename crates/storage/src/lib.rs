//! # rdb-storage
//!
//! Storage substrate for the reproduction of *Dynamic Query Optimization in
//! Rdb/VMS* (Antoshenkov, ICDE 1993).
//!
//! The paper's dynamic optimizer makes all of its decisions from **observed
//! and projected I/O costs**. This crate provides the pieces that generate
//! those costs deterministically:
//!
//! * [`Value`], [`Schema`], [`Record`] — the tuple model.
//! * [`Rid`] — record identifiers (`page`, `slot`), the currency of the
//!   paper's Jscan RID lists.
//! * Slotted [`page::Page`]s and the [`HeapTable`] built from them.
//! * A [`BufferPool`] cache simulator with true LRU behaviour: every logical
//!   page touch is classified hit/miss and charged to a shared [`CostMeter`].
//! * [`TempTable`] — the spill target for RID lists that overflow main
//!   memory during Jscan (Section 6 of the paper).
//! * A durable backend behind the [`PageStore`] seam: [`FilePageStore`]
//!   keeps 4KB checksummed page frames plus an LSN-stamped write-ahead
//!   log on disk, [`MemPageStore`] speaks the same protocol in memory,
//!   and [`DurableCtx`] / [`durable::recover`] implement WAL logging,
//!   fuzzy checkpoints, and ARIES-lite redo recovery on open.
//!
//! Costs are *simulated units*, not wall time: a miss costs one I/O unit, a
//! hit a small fraction, CPU work smaller still (see [`CostConfig`]). On a
//! durable database the unit is grounded: every cold-cache miss of a
//! checkpointed page performs (and checksum-verifies) a real frame read,
//! and [`StoreStats`] counts the genuine traffic. This mirrors the
//! I/O-dominated cost reasoning of the paper while keeping every
//! experiment reproducible.

pub mod buffer;
pub mod cost;
pub mod durable;
pub mod error;
pub mod fault;
pub mod file_store;
pub mod heap;
pub mod lsn;
pub mod mirror;
pub mod page;
pub mod readahead;
pub mod record;
pub mod reference;
pub mod rid;
pub mod schema;
pub mod store;
pub mod sync;
pub mod temp;
pub mod touch;
pub mod value;
pub mod wal;

pub use buffer::{
    shared_pool, shared_pool_sharded, Access, BufferPool, EvictionPolicy, FileId, PageId,
    PoolStats, PrefetchStats, SharedPool,
};
pub use cost::shared_meter;
pub use cost::{CostConfig, CostMeter, CostSnapshot, SharedCost};
pub use durable::{
    recover, CheckpointStats, DurableCtx, Recovered, RecoveredFile, RecoveryReport,
};
pub use error::StorageError;
pub use fault::FaultPolicy;
pub use file_store::{
    FilePageStore, DEFAULT_WAL_SEGMENT_BYTES, DURABLE_PAGE_BYTES, FRAME_BYTES, WAL_SEGMENT_HEADER,
};
pub use heap::{HeapScan, HeapTable};
pub use lsn::WalTail;
pub use mirror::{ProbeMirror, MIRROR_VACANT};
pub use readahead::ReadAhead;
pub use record::Record;
pub use reference::ReferencePool;
pub use rid::Rid;
pub use schema::{Column, Schema};
pub use store::{MemPageStore, PageStore, SharedStore, StoreStats};
pub use sync::{AtomicWord, RealSync, SyncFacade};
pub use temp::TempTable;
pub use touch::{DeferredCounters, PendingTally};
pub use value::{Value, ValueType};
pub use wal::{Lsn, WalRecord, WalView};
