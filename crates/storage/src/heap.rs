//! Heap tables: the data-record store behind Tscan and all record fetches.
//!
//! Every logical page touch goes through the shared [`crate::BufferPool`], so a
//! full table scan costs one miss per page on a cold cache, and random RID
//! fetches cost one miss per *distinct* page — which is exactly why the
//! paper's background-only tactic sorts RID lists before the final fetch
//! stage (Section 7).

use crate::buffer::{FileId, PageId, SharedPool};
use crate::cost::CostMeter;
use crate::error::StorageError;
use crate::page::{Page, DEFAULT_PAGE_BYTES};
use crate::record::Record;
use crate::rid::Rid;
use crate::schema::Schema;

/// A heap table of slotted pages sharing a buffer pool.
#[derive(Debug)]
pub struct HeapTable {
    name: String,
    file: FileId,
    schema: Schema,
    pages: Vec<Page>,
    pool: SharedPool,
    page_bytes: usize,
    live_records: u64,
    /// Pages known to have free space after deletes (a tiny free-space
    /// map); inserts try these before appending a new page.
    free_hints: Vec<u32>,
}

impl HeapTable {
    /// Creates an empty table with the default page size.
    pub fn new(name: impl Into<String>, file: FileId, schema: Schema, pool: SharedPool) -> Self {
        Self::with_page_bytes(name, file, schema, pool, DEFAULT_PAGE_BYTES)
    }

    /// Creates an empty table with a custom page payload size. Smaller pages
    /// mean more pages for the same data — useful in experiments that need
    /// high page counts without huge record counts.
    pub fn with_page_bytes(
        name: impl Into<String>,
        file: FileId,
        schema: Schema,
        pool: SharedPool,
        page_bytes: usize,
    ) -> Self {
        HeapTable {
            name: name.into(),
            file,
            schema,
            pages: Vec::new(),
            pool,
            page_bytes,
            live_records: 0,
            free_hints: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's file id within the shared pool.
    pub fn file(&self) -> FileId {
        self.file
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of pages.
    pub fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    /// Number of live records (the paper's table cardinality `c`).
    pub fn cardinality(&self) -> u64 {
        self.live_records
    }

    /// Shared buffer pool.
    pub fn pool(&self) -> &SharedPool {
        &self.pool
    }

    /// Inserts a record, returning its RID. Insertion is free of *read*
    /// cost: experiments measure retrieval, and loading is setup.
    pub fn insert(&mut self, record: Record) -> Result<Rid, StorageError> {
        self.schema.validate(&record)?;
        let mut bytes = Vec::with_capacity(record.encoded_len());
        record.encode(&mut bytes);
        if bytes.len() + 4 > self.page_bytes {
            return Err(StorageError::RecordTooLarge {
                size: bytes.len(),
                max: self.page_bytes,
            });
        }
        // Placement: the current tail page, then any page the free-space
        // map says has room (space reclaimed by deletes), then a new page.
        let page_no = if self.pages.last().is_some_and(|p| p.fits(bytes.len())) {
            (self.pages.len() - 1) as u32
        } else if let Some(pos) = self
            .free_hints
            .iter()
            .position(|&p| self.pages[p as usize].fits(bytes.len()))
        {
            self.free_hints.swap_remove(pos)
        } else {
            self.pages.push(Page::new(self.page_bytes));
            (self.pages.len() - 1) as u32
        };
        let slot = self.pages[page_no as usize].insert(bytes)?;
        self.live_records += 1;
        Ok(Rid::new(page_no, slot))
    }

    /// Fetches the record at `rid`, charging a buffer access for its page
    /// and one record's CPU cost to `cost` (the calling session's meter).
    pub fn fetch(&self, rid: Rid, cost: &CostMeter) -> Result<Record, StorageError> {
        let page = self
            .pages
            .get(rid.page as usize)
            .ok_or(StorageError::PageOutOfRange {
                page: rid.page,
                pages: self.pages.len() as u32,
            })?;
        self.pool
            .try_access(PageId::new(self.file, rid.page), cost)?;
        cost.charge_records(1);
        let bytes = page.slot_bytes(rid.slot).ok_or(StorageError::InvalidSlot {
            page: rid.page,
            slot: rid.slot,
        })?;
        Record::decode(bytes)
    }

    /// True if `rid` refers to a live record (no cost charged).
    pub fn exists(&self, rid: Rid) -> bool {
        self.pages
            .get(rid.page as usize)
            .and_then(|p| p.slot_bytes(rid.slot))
            .is_some()
    }

    /// Deletes the record at `rid`.
    pub fn delete(&mut self, rid: Rid) -> Result<(), StorageError> {
        let pages = self.pages.len() as u32;
        let page = self
            .pages
            .get_mut(rid.page as usize)
            .ok_or(StorageError::PageOutOfRange {
                page: rid.page,
                pages,
            })?;
        page.delete(rid.slot).map_err(|_| StorageError::InvalidSlot {
            page: rid.page,
            slot: rid.slot,
        })?;
        self.live_records -= 1;
        if !self.free_hints.contains(&rid.page) {
            self.free_hints.push(rid.page);
        }
        Ok(())
    }

    /// Opens a resumable sequential scan (the substrate of Tscan).
    pub fn scan(&self) -> HeapScan {
        HeapScan {
            page: 0,
            slot: 0,
            page_opened: false,
        }
    }
}

/// Resumable cursor over a heap table in physical order.
///
/// The cursor holds no reference to the table, so a strategy can keep it
/// across scheduling quanta; pass the table to [`HeapScan::next`] on each
/// call. Page read cost is charged once per page *entered*.
#[derive(Debug, Clone)]
pub struct HeapScan {
    page: u32,
    slot: u16,
    page_opened: bool,
}

impl HeapScan {
    /// Advances to the next live record, `Ok(None)` at end of table.
    ///
    /// Page reads go through the pool's fallible path, so an injected
    /// storage fault (or a record that fails to decode) surfaces as an
    /// `Err` instead of silently ending the scan. Charges go to `cost`,
    /// the calling session's meter.
    pub fn next(
        &mut self,
        table: &HeapTable,
        cost: &CostMeter,
    ) -> Result<Option<(Rid, Record)>, StorageError> {
        loop {
            let Some(page) = table.pages.get(self.page as usize) else {
                return Ok(None);
            };
            if !self.page_opened {
                table
                    .pool
                    .try_access(PageId::new(table.file, self.page), cost)?;
                self.page_opened = true;
            }
            while (self.slot as usize) < page.slot_count() as usize {
                let slot = self.slot;
                self.slot += 1;
                if let Some(bytes) = page.slot_bytes(slot) {
                    cost.charge_records(1);
                    let record = Record::decode(bytes)?;
                    return Ok(Some((Rid::new(self.page, slot), record)));
                }
            }
            self.page += 1;
            self.slot = 0;
            self.page_opened = false;
        }
    }

    /// Fraction of the table already scanned, in pages (for progress-based
    /// cost projection).
    pub fn progress(&self, table: &HeapTable) -> f64 {
        if table.pages.is_empty() {
            1.0
        } else {
            (self.page as f64).min(table.pages.len() as f64) / table.pages.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::shared_pool;
    use crate::cost::{shared_meter, CostConfig};
    use crate::schema::Column;
    use crate::value::{Value, ValueType};

    fn table(pool_pages: usize, page_bytes: usize) -> (HeapTable, crate::cost::SharedCost) {
        let cost = shared_meter(CostConfig::default());
        let pool = shared_pool(pool_pages, cost.clone());
        (
            HeapTable::with_page_bytes(
                "t",
                FileId(0),
                Schema::new(vec![Column::new("x", ValueType::Int)]),
                pool,
                page_bytes,
            ),
            cost,
        )
    }

    fn rec(x: i64) -> Record {
        Record::new(vec![Value::Int(x)])
    }

    #[test]
    fn insert_fetch_roundtrip() {
        let (mut t, cost) = table(16, 256);
        let rid = t.insert(rec(42)).unwrap();
        assert_eq!(t.fetch(rid, &cost).unwrap(), rec(42));
    }

    #[test]
    fn records_spill_to_new_pages() {
        let (mut t, _) = table(64, 64);
        for i in 0..20 {
            t.insert(rec(i)).unwrap();
        }
        assert!(t.page_count() > 1, "small pages must force multiple pages");
        assert_eq!(t.cardinality(), 20);
    }

    #[test]
    fn scan_visits_all_in_physical_order() {
        let (mut t, cost) = table(64, 64);
        let mut rids = Vec::new();
        for i in 0..50 {
            rids.push(t.insert(rec(i)).unwrap());
        }
        let mut scan = t.scan();
        let mut seen = Vec::new();
        while let Some((rid, record)) = scan.next(&t, &cost).unwrap() {
            seen.push((rid, record[0].as_i64().unwrap()));
        }
        assert_eq!(seen.len(), 50);
        assert!(seen.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(seen.iter().map(|s| s.1).collect::<Vec<_>>(), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn scan_skips_deleted() {
        let (mut t, cost) = table(64, 1024);
        let rids: Vec<Rid> = (0..10).map(|i| t.insert(rec(i)).unwrap()).collect();
        t.delete(rids[3]).unwrap();
        t.delete(rids[7]).unwrap();
        let mut scan = t.scan();
        let mut vals = Vec::new();
        while let Some((_, record)) = scan.next(&t, &cost).unwrap() {
            vals.push(record[0].as_i64().unwrap());
        }
        assert_eq!(vals, vec![0, 1, 2, 4, 5, 6, 8, 9]);
    }

    #[test]
    fn cold_scan_costs_one_io_per_page() {
        let cost = shared_meter(CostConfig::default());
        let pool = shared_pool(1000, cost.clone());
        let mut t = HeapTable::with_page_bytes(
            "t",
            FileId(0),
            Schema::new(vec![Column::new("x", ValueType::Int)]),
            pool,
            128,
        );
        for i in 0..100 {
            t.insert(rec(i)).unwrap();
        }
        let pages = t.page_count() as u64;
        let before = cost.snapshot();
        let mut scan = t.scan();
        while scan.next(&t, &cost).unwrap().is_some() {}
        let delta = cost.snapshot().since(&before);
        assert_eq!(delta.page_reads, pages);
        assert_eq!(delta.records_examined, 100);
    }

    #[test]
    fn sorted_rid_fetches_hit_cache_within_page() {
        let cost = shared_meter(CostConfig::default());
        let pool = shared_pool(4, cost.clone());
        let mut t = HeapTable::with_page_bytes(
            "t",
            FileId(0),
            Schema::new(vec![Column::new("x", ValueType::Int)]),
            pool,
            1024,
        );
        let rids: Vec<Rid> = (0..60).map(|i| t.insert(rec(i)).unwrap()).collect();
        // Fetch all records in sorted RID order: misses == distinct pages.
        let before = cost.snapshot();
        for &rid in &rids {
            t.fetch(rid, &cost).unwrap();
        }
        let delta = cost.snapshot().since(&before);
        assert_eq!(delta.page_reads as u32, t.page_count());
    }

    #[test]
    fn fetch_errors_on_bad_rid() {
        let (mut t, cost) = table(16, 256);
        let rid = t.insert(rec(1)).unwrap();
        assert!(t.fetch(Rid::new(99, 0), &cost).is_err());
        assert!(t.fetch(Rid::new(rid.page, 99), &cost).is_err());
    }

    #[test]
    fn schema_violation_rejected() {
        let (mut t, _) = table(16, 256);
        assert!(t
            .insert(Record::new(vec![Value::Str("not an int".into())]))
            .is_err());
    }

    #[test]
    fn record_larger_than_page_rejected() {
        let (mut t, _) = table(16, 32);
        let huge = Record::new(vec![Value::Int(1)]);
        // 32-byte page can hold an 11-byte record; make one that can't fit.
        assert!(t.insert(huge).is_ok());
        let (mut t2, _) = table(16, 8);
        assert!(t2.insert(rec(1)).is_err());
    }

    #[test]
    fn deleted_space_is_reused_before_growing() {
        let (mut t, cost) = table(64, 256);
        let rids: Vec<Rid> = (0..100).map(|i| t.insert(rec(i)).unwrap()).collect();
        let pages_before = t.page_count();
        // Free a whole page's worth of records from the middle.
        for &rid in rids.iter().filter(|r| r.page == 1) {
            t.delete(rid).unwrap();
        }
        // Fill the tail page, then keep inserting: the holes on page 1 must
        // absorb inserts before any new page is allocated.
        let mut landed_on_freed_page = false;
        for i in 0..20 {
            let rid = t.insert(rec(1000 + i)).unwrap();
            if rid.page == 1 {
                landed_on_freed_page = true;
            }
            if t.page_count() > pages_before {
                break;
            }
        }
        assert!(landed_on_freed_page, "free-space map must route inserts");
        // Scan still sees a consistent record set.
        let mut scan = t.scan();
        let mut count = 0;
        while scan.next(&t, &cost).unwrap().is_some() {
            count += 1;
        }
        assert_eq!(count as u64, t.cardinality());
    }

    #[test]
    fn fetch_and_scan_surface_injected_faults() {
        let (mut t, cost) = table(64, 64);
        let rids: Vec<Rid> = (0..30).map(|i| t.insert(rec(i)).unwrap()).collect();
        assert!(t.page_count() >= 3, "need multiple pages");
        // Fail the second page read the scan performs.
        t.pool()
            .set_fault_policy(Some(crate::FaultPolicy::fail_from_nth(1)));
        let mut scan = t.scan();
        let mut seen = 0usize;
        let err = loop {
            match scan.next(&t, &cost) {
                Ok(Some(_)) => seen += 1,
                Ok(None) => panic!("scan must hit the injected fault"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, StorageError::InjectedFault { .. }));
        assert!(seen > 0, "first page was delivered before the fault");
        // Random fetches fail the same way, and recover once disarmed.
        assert!(matches!(
            t.fetch(rids[29], &cost),
            Err(StorageError::InjectedFault { .. })
        ));
        t.pool().set_fault_policy(None);
        assert_eq!(t.fetch(rids[29], &cost).unwrap(), rec(29));
    }

    #[test]
    fn progress_tracks_pages() {
        let (mut t, cost) = table(64, 64);
        for i in 0..30 {
            t.insert(rec(i)).unwrap();
        }
        let mut scan = t.scan();
        assert_eq!(scan.progress(&t), 0.0);
        while scan.next(&t, &cost).unwrap().is_some() {}
        assert!((scan.progress(&t) - 1.0).abs() < 1e-9);
    }
}
