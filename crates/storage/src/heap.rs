//! Heap tables: the data-record store behind Tscan and all record fetches.
//!
//! Every logical page touch goes through the shared [`crate::BufferPool`], so a
//! full table scan costs one miss per page on a cold cache, and random RID
//! fetches cost one miss per *distinct* page — which is exactly why the
//! paper's background-only tactic sorts RID lists before the final fetch
//! stage (Section 7).

use std::sync::Arc;

use crate::buffer::{Access, FileId, PageId, SharedPool};
use crate::cost::CostMeter;
use crate::durable::DurableCtx;
use crate::error::StorageError;
use crate::page::{Page, DEFAULT_PAGE_BYTES};
use crate::readahead::ReadAhead;
use crate::record::Record;
use crate::rid::Rid;
use crate::schema::Schema;

/// A heap table of slotted pages sharing a buffer pool.
#[derive(Debug)]
pub struct HeapTable {
    name: String,
    file: FileId,
    schema: Schema,
    pages: Vec<Page>,
    pool: SharedPool,
    page_bytes: usize,
    live_records: u64,
    /// Pages known to have free space after deletes (a tiny free-space
    /// map); inserts try these before appending a new page.
    free_hints: Vec<u32>,
    /// When attached, every insert/delete is WAL-logged and every pool
    /// miss on a clean checkpointed page re-reads (and checksum-verifies)
    /// its disk frame — real I/O on the simulated miss path.
    durable: Option<Arc<DurableCtx>>,
    /// Page-number high-water mark of frames the store holds for this
    /// table (advanced by checkpoints); pages past it have no frame yet.
    disk_pages: u32,
}

impl HeapTable {
    /// Creates an empty table with the default page size.
    pub fn new(name: impl Into<String>, file: FileId, schema: Schema, pool: SharedPool) -> Self {
        Self::with_page_bytes(name, file, schema, pool, DEFAULT_PAGE_BYTES)
    }

    /// Creates an empty table with a custom page payload size. Smaller pages
    /// mean more pages for the same data — useful in experiments that need
    /// high page counts without huge record counts.
    pub fn with_page_bytes(
        name: impl Into<String>,
        file: FileId,
        schema: Schema,
        pool: SharedPool,
        page_bytes: usize,
    ) -> Self {
        HeapTable {
            name: name.into(),
            file,
            schema,
            pages: Vec::new(),
            pool,
            page_bytes,
            live_records: 0,
            free_hints: Vec::new(),
            durable: None,
            disk_pages: 0,
        }
    }

    /// Rebuilds a table from recovered pages (see
    /// [`crate::durable::recover`]). Cardinality and the free-space map
    /// are recomputed from the pages; `disk_pages` says how many leading
    /// pages have on-disk frames backing verify-reads.
    #[allow(clippy::too_many_arguments)]
    pub fn from_recovered(
        name: impl Into<String>,
        file: FileId,
        schema: Schema,
        pool: SharedPool,
        page_bytes: usize,
        pages: Vec<Page>,
        durable: Arc<DurableCtx>,
        disk_pages: u32,
    ) -> Self {
        let live_records = pages.iter().map(|p| u64::from(p.live_records())).sum();
        let tail = pages.len().saturating_sub(1);
        let free_hints = pages
            .iter()
            .enumerate()
            .filter(|(i, p)| *i != tail && p.used() < p.capacity())
            .map(|(i, _)| i as u32)
            .collect();
        HeapTable {
            name: name.into(),
            file,
            schema,
            pages,
            pool,
            page_bytes,
            live_records,
            free_hints,
            durable: Some(durable),
            disk_pages,
        }
    }

    /// Attaches the durable context to a freshly created table: from here
    /// on every mutation is WAL-logged and misses on checkpointed pages
    /// perform real verify-reads.
    pub fn attach_durable(&mut self, ctx: Arc<DurableCtx>) {
        self.durable = Some(ctx);
    }

    /// A clone of page `page_no`'s current in-memory image (the
    /// checkpoint's write-back source).
    pub fn page_clone(&self, page_no: u32) -> Option<Page> {
        self.pages.get(page_no as usize).cloned()
    }

    /// Records that a checkpoint wrote every current page: all of them now
    /// have disk frames, so future clean misses verify against disk.
    pub fn note_checkpointed(&mut self) {
        self.disk_pages = self.pages.len() as u32;
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's file id within the shared pool.
    pub fn file(&self) -> FileId {
        self.file
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of pages.
    pub fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    /// Page payload capacity this table was created with.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// Number of live records (the paper's table cardinality `c`).
    pub fn cardinality(&self) -> u64 {
        self.live_records
    }

    /// Shared buffer pool.
    pub fn pool(&self) -> &SharedPool {
        &self.pool
    }

    /// True when `page` can take one more record of `bytes_len` payload
    /// bytes: in-memory capacity, plus — for durable tables — the disk
    /// frame's image budget (a slot-churned page whose serialized image
    /// nears the frame payload limit retires instead of overflowing it).
    fn accepts(&self, page: &Page, bytes_len: usize) -> bool {
        if !page.fits(bytes_len) {
            return false;
        }
        match &self.durable {
            Some(ctx) => page.image_len() + bytes_len + 2 <= ctx.max_image_len(),
            None => true,
        }
    }

    /// Inserts a record, returning its RID. Insertion is free of *read*
    /// cost: experiments measure retrieval, and loading is setup. On a
    /// durable table the insert is WAL-logged (a full page image on the
    /// page's first touch after a checkpoint, a compact delta after); a
    /// logging failure surfaces as the statement's error.
    pub fn insert(&mut self, record: Record) -> Result<Rid, StorageError> {
        self.schema.validate(&record)?;
        let mut bytes = Vec::with_capacity(record.encoded_len());
        record.encode(&mut bytes);
        if bytes.len() + 4 > self.page_bytes {
            return Err(StorageError::RecordTooLarge {
                size: bytes.len(),
                max: self.page_bytes,
            });
        }
        // Placement: the current tail page, then any page the free-space
        // map says has room (space reclaimed by deletes), then a new page.
        let page_no = if self
            .pages
            .last()
            .is_some_and(|p| self.accepts(p, bytes.len()))
        {
            (self.pages.len() - 1) as u32
        } else if let Some(pos) = self.free_hints.iter().position(|&p| {
            self.pages
                .get(p as usize)
                .is_some_and(|pg| self.accepts(pg, bytes.len()))
        }) {
            self.free_hints.swap_remove(pos)
        } else {
            self.pages.push(Page::new(self.page_bytes));
            (self.pages.len() - 1) as u32
        };
        let logged = self.durable.is_some().then(|| bytes.clone());
        let page = self
            .pages
            .get_mut(page_no as usize)
            .ok_or(StorageError::PageOutOfRange {
                page: page_no,
                pages: 0,
            })?;
        let slot = page.insert(bytes)?;
        self.live_records += 1;
        if let (Some(ctx), Some(bytes)) = (self.durable.as_ref(), logged) {
            ctx.log_insert(PageId::new(self.file, page_no), slot, &bytes, page)?;
        }
        Ok(Rid::new(page_no, slot))
    }

    /// On a buffer-pool miss of a durable page, performs the *real* read:
    /// re-reads and checksum-verifies the page's disk frame, so the
    /// simulated miss path carries genuine I/O and surfaces torn frames.
    /// Dirty pages (modified since the last checkpoint) are skipped —
    /// their frames are legitimately stale until write-back.
    fn verify_disk(&self, page_no: u32) -> Result<(), StorageError> {
        let Some(ctx) = &self.durable else {
            return Ok(());
        };
        if page_no >= self.disk_pages {
            return Ok(());
        }
        let pid = PageId::new(self.file, page_no);
        if self.pool.is_dirty(pid) {
            return Ok(());
        }
        ctx.verify_read(pid)
    }

    /// The sequential-scan variant of [`HeapTable::verify_disk`]: with
    /// read-ahead enabled, a miss that no window covers fetches the missed
    /// frame *and* a run of upcoming clean, on-disk, not-yet-resident
    /// frames in one batched store read, parking the per-frame outcomes in
    /// `ra`. Later misses consume their parked outcome instead of touching
    /// the store, so a torn frame still surfaces exactly on its own page.
    fn verify_disk_sequential(
        &self,
        page_no: u32,
        ra: &mut ReadAhead,
    ) -> Result<(), StorageError> {
        let Some(ctx) = &self.durable else {
            return Ok(());
        };
        if page_no >= self.disk_pages {
            return Ok(());
        }
        let pid = PageId::new(self.file, page_no);
        if self.pool.is_dirty(pid) {
            return Ok(());
        }
        if !self.pool.read_ahead_enabled() {
            return ctx.verify_read(pid);
        }
        if let Some(out) = ra.take(page_no) {
            self.pool.note_prefetch_consumed();
            return out;
        }
        // Build a fresh window: the missed page unconditionally, then
        // upcoming pages for as long as they are on disk, clean, and not
        // already resident (a resident page would be a hit — fetching its
        // frame ahead of time is guaranteed waste).
        let mut n = 1u32;
        while n < ra.depth() {
            let Some(q) = page_no.checked_add(n) else {
                break;
            };
            if q >= self.disk_pages {
                break;
            }
            let qid = PageId::new(self.file, q);
            if self.pool.is_dirty(qid) || self.pool.contains(qid) {
                break;
            }
            n += 1;
        }
        ra.fill(page_no, ctx.verify_read_run(self.file, page_no, n));
        self.pool.note_prefetch(u64::from(n));
        let out = ra.take(page_no).unwrap_or(Ok(()));
        self.pool.note_prefetch_consumed();
        out
    }

    /// Fetches the record at `rid`, charging a buffer access for its page
    /// and one record's CPU cost to `cost` (the calling session's meter).
    pub fn fetch(&self, rid: Rid, cost: &CostMeter) -> Result<Record, StorageError> {
        let page = self
            .pages
            .get(rid.page as usize)
            .ok_or(StorageError::PageOutOfRange {
                page: rid.page,
                pages: self.pages.len() as u32,
            })?;
        if self
            .pool
            .try_access(PageId::new(self.file, rid.page), cost)?
            == Access::Miss
        {
            self.verify_disk(rid.page)?;
        }
        cost.charge_records(1);
        let bytes = page.slot_bytes(rid.slot).ok_or(StorageError::InvalidSlot {
            page: rid.page,
            slot: rid.slot,
        })?;
        Record::decode(bytes)
    }

    /// True if `rid` refers to a live record (no cost charged).
    pub fn exists(&self, rid: Rid) -> bool {
        self.pages
            .get(rid.page as usize)
            .and_then(|p| p.slot_bytes(rid.slot))
            .is_some()
    }

    /// Deletes the record at `rid`.
    pub fn delete(&mut self, rid: Rid) -> Result<(), StorageError> {
        let pages = self.pages.len() as u32;
        let page = self
            .pages
            .get_mut(rid.page as usize)
            .ok_or(StorageError::PageOutOfRange {
                page: rid.page,
                pages,
            })?;
        page.delete(rid.slot).map_err(|_| StorageError::InvalidSlot {
            page: rid.page,
            slot: rid.slot,
        })?;
        self.live_records -= 1;
        if !self.free_hints.contains(&rid.page) {
            self.free_hints.push(rid.page);
        }
        if let Some(ctx) = self.durable.as_ref() {
            ctx.log_delete(PageId::new(self.file, rid.page), rid.slot, page)?;
        }
        Ok(())
    }

    /// Opens a resumable sequential scan (the substrate of Tscan).
    pub fn scan(&self) -> HeapScan {
        HeapScan {
            page: 0,
            slot: 0,
            page_opened: false,
            ra: ReadAhead::new(),
        }
    }
}

/// Resumable cursor over a heap table in physical order.
///
/// The cursor holds no reference to the table, so a strategy can keep it
/// across scheduling quanta; pass the table to [`HeapScan::next`] on each
/// call. Page read cost is charged once per page *entered*.
#[derive(Debug, Clone)]
pub struct HeapScan {
    page: u32,
    slot: u16,
    page_opened: bool,
    /// Sequential read-ahead window for this cursor's miss path (cloned
    /// cursors each carry their own window; a deferred outcome consumed
    /// from one clone re-reads in the other — correct, merely unbatched).
    ra: ReadAhead,
}

impl HeapScan {
    /// Advances to the next live record, `Ok(None)` at end of table.
    ///
    /// Page reads go through the pool's fallible path, so an injected
    /// storage fault (or a record that fails to decode) surfaces as an
    /// `Err` instead of silently ending the scan. Charges go to `cost`,
    /// the calling session's meter.
    pub fn next(
        &mut self,
        table: &HeapTable,
        cost: &CostMeter,
    ) -> Result<Option<(Rid, Record)>, StorageError> {
        loop {
            let Some(page) = table.pages.get(self.page as usize) else {
                return Ok(None);
            };
            if !self.page_opened {
                if table
                    .pool
                    .try_access(PageId::new(table.file, self.page), cost)?
                    == Access::Miss
                {
                    table.verify_disk_sequential(self.page, &mut self.ra)?;
                }
                self.page_opened = true;
            }
            while (self.slot as usize) < page.slot_count() as usize {
                let slot = self.slot;
                self.slot += 1;
                if let Some(bytes) = page.slot_bytes(slot) {
                    cost.charge_records(1);
                    let record = Record::decode(bytes)?;
                    return Ok(Some((Rid::new(self.page, slot), record)));
                }
            }
            self.page += 1;
            self.slot = 0;
            self.page_opened = false;
        }
    }

    /// Fraction of the table already scanned, in pages (for progress-based
    /// cost projection).
    pub fn progress(&self, table: &HeapTable) -> f64 {
        if table.pages.is_empty() {
            1.0
        } else {
            (self.page as f64).min(table.pages.len() as f64) / table.pages.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::shared_pool;
    use crate::cost::{shared_meter, CostConfig};
    use crate::schema::Column;
    use crate::value::{Value, ValueType};

    fn table(pool_pages: usize, page_bytes: usize) -> (HeapTable, crate::cost::SharedCost) {
        let cost = shared_meter(CostConfig::default());
        let pool = shared_pool(pool_pages, cost.clone());
        (
            HeapTable::with_page_bytes(
                "t",
                FileId(0),
                Schema::new(vec![Column::new("x", ValueType::Int)]),
                pool,
                page_bytes,
            ),
            cost,
        )
    }

    fn rec(x: i64) -> Record {
        Record::new(vec![Value::Int(x)])
    }

    #[test]
    fn insert_fetch_roundtrip() {
        let (mut t, cost) = table(16, 256);
        let rid = t.insert(rec(42)).unwrap();
        assert_eq!(t.fetch(rid, &cost).unwrap(), rec(42));
    }

    #[test]
    fn records_spill_to_new_pages() {
        let (mut t, _) = table(64, 64);
        for i in 0..20 {
            t.insert(rec(i)).unwrap();
        }
        assert!(t.page_count() > 1, "small pages must force multiple pages");
        assert_eq!(t.cardinality(), 20);
    }

    #[test]
    fn scan_visits_all_in_physical_order() {
        let (mut t, cost) = table(64, 64);
        let mut rids = Vec::new();
        for i in 0..50 {
            rids.push(t.insert(rec(i)).unwrap());
        }
        let mut scan = t.scan();
        let mut seen = Vec::new();
        while let Some((rid, record)) = scan.next(&t, &cost).unwrap() {
            seen.push((rid, record[0].as_i64().unwrap()));
        }
        assert_eq!(seen.len(), 50);
        assert!(seen.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(seen.iter().map(|s| s.1).collect::<Vec<_>>(), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn scan_skips_deleted() {
        let (mut t, cost) = table(64, 1024);
        let rids: Vec<Rid> = (0..10).map(|i| t.insert(rec(i)).unwrap()).collect();
        t.delete(rids[3]).unwrap();
        t.delete(rids[7]).unwrap();
        let mut scan = t.scan();
        let mut vals = Vec::new();
        while let Some((_, record)) = scan.next(&t, &cost).unwrap() {
            vals.push(record[0].as_i64().unwrap());
        }
        assert_eq!(vals, vec![0, 1, 2, 4, 5, 6, 8, 9]);
    }

    #[test]
    fn cold_scan_costs_one_io_per_page() {
        let cost = shared_meter(CostConfig::default());
        let pool = shared_pool(1000, cost.clone());
        let mut t = HeapTable::with_page_bytes(
            "t",
            FileId(0),
            Schema::new(vec![Column::new("x", ValueType::Int)]),
            pool,
            128,
        );
        for i in 0..100 {
            t.insert(rec(i)).unwrap();
        }
        let pages = t.page_count() as u64;
        let before = cost.snapshot();
        let mut scan = t.scan();
        while scan.next(&t, &cost).unwrap().is_some() {}
        let delta = cost.snapshot().since(&before);
        assert_eq!(delta.page_reads, pages);
        assert_eq!(delta.records_examined, 100);
    }

    #[test]
    fn sorted_rid_fetches_hit_cache_within_page() {
        let cost = shared_meter(CostConfig::default());
        let pool = shared_pool(4, cost.clone());
        let mut t = HeapTable::with_page_bytes(
            "t",
            FileId(0),
            Schema::new(vec![Column::new("x", ValueType::Int)]),
            pool,
            1024,
        );
        let rids: Vec<Rid> = (0..60).map(|i| t.insert(rec(i)).unwrap()).collect();
        // Fetch all records in sorted RID order: misses == distinct pages.
        let before = cost.snapshot();
        for &rid in &rids {
            t.fetch(rid, &cost).unwrap();
        }
        let delta = cost.snapshot().since(&before);
        assert_eq!(delta.page_reads as u32, t.page_count());
    }

    #[test]
    fn fetch_errors_on_bad_rid() {
        let (mut t, cost) = table(16, 256);
        let rid = t.insert(rec(1)).unwrap();
        assert!(t.fetch(Rid::new(99, 0), &cost).is_err());
        assert!(t.fetch(Rid::new(rid.page, 99), &cost).is_err());
    }

    #[test]
    fn schema_violation_rejected() {
        let (mut t, _) = table(16, 256);
        assert!(t
            .insert(Record::new(vec![Value::Str("not an int".into())]))
            .is_err());
    }

    #[test]
    fn record_larger_than_page_rejected() {
        let (mut t, _) = table(16, 32);
        let huge = Record::new(vec![Value::Int(1)]);
        // 32-byte page can hold an 11-byte record; make one that can't fit.
        assert!(t.insert(huge).is_ok());
        let (mut t2, _) = table(16, 8);
        assert!(t2.insert(rec(1)).is_err());
    }

    #[test]
    fn deleted_space_is_reused_before_growing() {
        let (mut t, cost) = table(64, 256);
        let rids: Vec<Rid> = (0..100).map(|i| t.insert(rec(i)).unwrap()).collect();
        let pages_before = t.page_count();
        // Free a whole page's worth of records from the middle.
        for &rid in rids.iter().filter(|r| r.page == 1) {
            t.delete(rid).unwrap();
        }
        // Fill the tail page, then keep inserting: the holes on page 1 must
        // absorb inserts before any new page is allocated.
        let mut landed_on_freed_page = false;
        for i in 0..20 {
            let rid = t.insert(rec(1000 + i)).unwrap();
            if rid.page == 1 {
                landed_on_freed_page = true;
            }
            if t.page_count() > pages_before {
                break;
            }
        }
        assert!(landed_on_freed_page, "free-space map must route inserts");
        // Scan still sees a consistent record set.
        let mut scan = t.scan();
        let mut count = 0;
        while scan.next(&t, &cost).unwrap().is_some() {
            count += 1;
        }
        assert_eq!(count as u64, t.cardinality());
    }

    #[test]
    fn fetch_and_scan_surface_injected_faults() {
        let (mut t, cost) = table(64, 64);
        let rids: Vec<Rid> = (0..30).map(|i| t.insert(rec(i)).unwrap()).collect();
        assert!(t.page_count() >= 3, "need multiple pages");
        // Fail the second page read the scan performs.
        t.pool()
            .set_fault_policy(Some(crate::FaultPolicy::fail_from_nth(1)));
        let mut scan = t.scan();
        let mut seen = 0usize;
        let err = loop {
            match scan.next(&t, &cost) {
                Ok(Some(_)) => seen += 1,
                Ok(None) => panic!("scan must hit the injected fault"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, StorageError::InjectedFault { .. }));
        assert!(seen > 0, "first page was delivered before the fault");
        // Random fetches fail the same way, and recover once disarmed.
        assert!(matches!(
            t.fetch(rids[29], &cost),
            Err(StorageError::InjectedFault { .. })
        ));
        t.pool().set_fault_policy(None);
        assert_eq!(t.fetch(rids[29], &cost).unwrap(), rec(29));
    }

    #[test]
    fn durable_table_survives_checkpoint_and_crash() {
        use crate::durable::{recover, DurableCtx};
        use crate::store::{MemPageStore, SharedStore};

        let store: SharedStore = Arc::new(MemPageStore::new(128));
        let cost = shared_meter(CostConfig::default());
        let pool = shared_pool(256, cost.clone());
        let ctx = DurableCtx::new(store.clone(), pool.clone(), Vec::new(), Vec::new());
        let schema = Schema::new(vec![Column::new("x", ValueType::Int)]);
        let mut t =
            HeapTable::with_page_bytes("t", FileId(0), schema.clone(), pool.clone(), 128);
        t.attach_durable(ctx.clone());

        let rids: Vec<Rid> = (0..40).map(|i| t.insert(rec(i)).unwrap()).collect();
        assert!(t.page_count() > 1);
        assert_eq!(pool.dirty_len() as u32, t.page_count());

        // Checkpoint everything, then keep mutating past it.
        ctx.checkpoint(b"CAT", |pid| t.page_clone(pid.page)).unwrap();
        t.note_checkpointed();
        t.delete(rids[5]).unwrap();
        t.insert(rec(100)).unwrap();

        // "Crash" (drop the in-memory table) and rebuild from the store.
        drop(t);
        let recovered = recover(&store).unwrap();
        let lsns = recovered.page_lsns();
        let file = recovered.files.get(&0).unwrap();
        let disk_pages = file.pages.len() as u32;
        let pages = file.pages.clone();
        let ctx2 = DurableCtx::new(
            store.clone(),
            pool.clone(),
            recovered.imaged.clone(),
            lsns,
        );
        let t2 = HeapTable::from_recovered(
            "t", FileId(0), schema, pool, 128, pages, ctx2, disk_pages,
        );
        assert_eq!(t2.cardinality(), 40);
        let mut scan = t2.scan();
        let mut vals = Vec::new();
        while let Some((_, record)) = scan.next(&t2, &cost).unwrap() {
            vals.push(record[0].as_i64().unwrap());
        }
        let mut expect: Vec<i64> = (0..40).filter(|v| *v != 5).collect();
        expect.push(100);
        vals.sort_unstable();
        expect.sort_unstable();
        assert_eq!(vals, expect);
    }

    #[test]
    fn cold_miss_on_checkpointed_page_performs_real_read() {
        use crate::durable::DurableCtx;
        use crate::store::{MemPageStore, PageStore, SharedStore};

        let mem = Arc::new(MemPageStore::new(128));
        let store: SharedStore = mem.clone();
        let cost = shared_meter(CostConfig::default());
        let pool = shared_pool(256, cost.clone());
        let ctx = DurableCtx::new(store, pool.clone(), Vec::new(), Vec::new());
        let mut t = HeapTable::with_page_bytes(
            "t",
            FileId(0),
            Schema::new(vec![Column::new("x", ValueType::Int)]),
            pool.clone(),
            128,
        );
        t.attach_durable(ctx.clone());
        for i in 0..40 {
            t.insert(rec(i)).unwrap();
        }
        ctx.checkpoint(b"CAT", |pid| t.page_clone(pid.page)).unwrap();
        t.note_checkpointed();

        // Cold cache: every simulated miss must be backed by one real
        // store read (the cost meter's I/O unit == genuine page I/O).
        pool.clear();
        let before = mem.stats();
        let cost_before = cost.snapshot();
        let mut scan = t.scan();
        while scan.next(&t, &cost).unwrap().is_some() {}
        let real = mem.stats().since(&before);
        let simulated = cost.snapshot().since(&cost_before);
        assert_eq!(real.page_reads, u64::from(t.page_count()));
        assert_eq!(simulated.page_reads, real.page_reads);

        // Warm cache: hits perform no real I/O.
        let before = mem.stats();
        let mut scan = t.scan();
        while scan.next(&t, &cost).unwrap().is_some() {}
        assert_eq!(mem.stats().since(&before).page_reads, 0);
    }

    #[test]
    fn sequential_read_ahead_batches_cold_scan_reads() {
        use crate::durable::DurableCtx;
        use crate::store::{MemPageStore, PageStore, SharedStore};

        let mem = Arc::new(MemPageStore::new(128));
        let store: SharedStore = mem.clone();
        let cost = shared_meter(CostConfig::default());
        let pool = shared_pool(256, cost.clone());
        let ctx = DurableCtx::new(store, pool.clone(), Vec::new(), Vec::new());
        let mut t = HeapTable::with_page_bytes(
            "t",
            FileId(0),
            Schema::new(vec![Column::new("x", ValueType::Int)]),
            pool.clone(),
            128,
        );
        t.attach_durable(ctx.clone());
        for i in 0..200 {
            t.insert(rec(i)).unwrap();
        }
        ctx.checkpoint(b"CAT", |pid| t.page_clone(pid.page)).unwrap();
        t.note_checkpointed();

        // Cold scan with read-ahead: the window tiles the file, so real
        // reads still equal simulated misses, but far fewer store calls
        // (windows) were issued than pages read.
        pool.clear();
        let before = mem.stats();
        let pf_before = pool.prefetch_stats();
        let cost_before = cost.snapshot();
        let mut scan = t.scan();
        while scan.next(&t, &cost).unwrap().is_some() {}
        let real = mem.stats().since(&before);
        let pf = pool.prefetch_stats().since(&pf_before);
        let simulated = cost.snapshot().since(&cost_before);
        let pages = u64::from(t.page_count());
        assert_eq!(real.page_reads, pages, "read-ahead fetches no extra frames");
        assert_eq!(simulated.page_reads, real.page_reads);
        assert_eq!(pf.prefetched_pages, pages, "windows tile the whole file");
        assert_eq!(pf.consumed_pages, pages, "sequential scan wastes nothing");
        assert_eq!(pf.unused_pages(), 0);
        assert!(
            pf.runs < pages,
            "windows must batch: {} runs for {} pages",
            pf.runs,
            pages
        );
        // The window grows while the scan proves sequential: strictly
        // better than one run per MIN_DEPTH pages.
        assert!(pf.runs <= pages.div_ceil(u64::from(crate::readahead::MIN_DEPTH)));

        // With read-ahead off, the same cold scan issues one store call
        // per page and the prefetch counters stay put.
        pool.set_read_ahead(false);
        pool.clear();
        let before = mem.stats();
        let pf_before = pool.prefetch_stats();
        let mut scan = t.scan();
        while scan.next(&t, &cost).unwrap().is_some() {}
        assert_eq!(mem.stats().since(&before).page_reads, pages);
        assert_eq!(pool.prefetch_stats().since(&pf_before), Default::default());
    }

    #[test]
    fn read_ahead_window_stops_at_dirty_and_resident_pages() {
        use crate::durable::DurableCtx;
        use crate::store::{MemPageStore, PageStore, SharedStore};

        let mem = Arc::new(MemPageStore::new(128));
        let store: SharedStore = mem.clone();
        let cost = shared_meter(CostConfig::default());
        let pool = shared_pool(256, cost.clone());
        let ctx = DurableCtx::new(store, pool.clone(), Vec::new(), Vec::new());
        let mut t = HeapTable::with_page_bytes(
            "t",
            FileId(0),
            Schema::new(vec![Column::new("x", ValueType::Int)]),
            pool.clone(),
            128,
        );
        t.attach_durable(ctx.clone());
        for i in 0..200 {
            t.insert(rec(i)).unwrap();
        }
        ctx.checkpoint(b"CAT", |pid| t.page_clone(pid.page)).unwrap();
        t.note_checkpointed();
        let pages = u64::from(t.page_count());
        assert!(pages >= 8, "need a few pages to carve up");

        // Dirty one mid-file page; fault another in so it is resident.
        pool.clear();
        let dirty_page = 3u32;
        let resident_page = 6u32;
        pool.mark_dirty(PageId::new(FileId(0), dirty_page));
        // Fault the page in through the pool alone (no disk traffic), as a
        // concurrent reader would have.
        pool.access(PageId::new(FileId(0), resident_page), &cost);
        let before = mem.stats();
        let mut scan = t.scan();
        while scan.next(&t, &cost).unwrap().is_some() {}
        // The dirty page and the resident page are both excluded from
        // verify traffic: dirty frames are stale, resident pages are hits.
        assert_eq!(
            mem.stats().since(&before).page_reads,
            pages - 2,
            "windows must step around dirty and resident pages"
        );
    }

    #[test]
    fn progress_tracks_pages() {
        let (mut t, cost) = table(64, 64);
        for i in 0..30 {
            t.insert(rec(i)).unwrap();
        }
        let mut scan = t.scan();
        assert_eq!(scan.progress(&t), 0.0);
        while scan.next(&t, &cost).unwrap().is_some() {}
        assert!((scan.progress(&t) - 1.0).abs() < 1e-9);
    }
}
