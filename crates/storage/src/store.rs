//! The storage-backend seam: [`PageStore`].
//!
//! Everything above the page level — heap tables, the buffer pool, the
//! query layer — talks to persistent storage through this trait. Two
//! implementations ship:
//!
//! * [`MemPageStore`] (here): pages, WAL, and catalog live in process
//!   memory. Nothing survives the process, but the *protocol* (LSNs,
//!   images, checkpoints, recovery) is identical, which makes the durable
//!   machinery unit-testable without touching a filesystem.
//! * [`crate::FilePageStore`]: the real thing — 4KB checksummed page
//!   frames in per-file segment files, an append-only WAL, and an
//!   atomically replaced header/catalog (see `file_store.rs`).
//!
//! The trait is deliberately image-granular (whole [`Page`]s in and out):
//! the in-memory representation stays the system of record between
//! checkpoints, the store is the crash-durable shadow of it, and the
//! buffer pool decides *when* images move (dirty tracking + write-back).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::buffer::{FileId, PageId};
use crate::error::StorageError;
use crate::page::Page;
use crate::wal::{Lsn, WalRecord, WalView};

/// Counters of *real* storage traffic — the ground truth the simulated
/// cost meter's "I/O unit" is validated against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Page images read (and checksum-verified) from the backend.
    pub page_reads: u64,
    /// Page images written to the backend.
    pub page_writes: u64,
    /// Batched multi-frame reads issued via [`PageStore::read_run`]; the
    /// per-frame outcomes still count in `page_reads`, so
    /// `page_reads / batch_reads` is the realized read-ahead batching
    /// factor.
    pub batch_reads: u64,
    /// WAL records appended.
    pub wal_appends: u64,
    /// Explicit durability barriers (fsync or equivalent).
    pub syncs: u64,
}

impl StoreStats {
    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &StoreStats) -> StoreStats {
        StoreStats {
            page_reads: self.page_reads - earlier.page_reads,
            page_writes: self.page_writes - earlier.page_writes,
            batch_reads: self.batch_reads - earlier.batch_reads,
            wal_appends: self.wal_appends - earlier.wal_appends,
            syncs: self.syncs - earlier.syncs,
        }
    }
}

/// A shared handle to a page store.
pub type SharedStore = Arc<dyn PageStore>;

/// The persistent backend behind heap tables: page images keyed by
/// [`PageId`], an LSN-stamped write-ahead log, and a catalog blob.
///
/// Implementations are internally synchronized (`&self` everywhere); the
/// engine's single-writer discipline means mutations never race, but
/// concurrent readers (verify-reads from scan threads) must be safe.
pub trait PageStore: Send + Sync + fmt::Debug {
    /// True when data survives the process (file-backed).
    fn is_durable(&self) -> bool;

    /// The page payload capacity this store was created with. Pages
    /// written through [`PageStore::write_page`] must use this capacity.
    fn page_bytes(&self) -> usize;

    /// Largest serialized page image ([`Page::image_len`]) the backend can
    /// hold — the data-frame payload budget for file stores, unbounded for
    /// memory stores.
    fn max_image_len(&self) -> usize;

    /// Reads and checksum-verifies the image of `page`. `Ok(None)` means
    /// the store holds no frame for it (never checkpointed, or a hole);
    /// a frame that fails its checksum is [`StorageError::TornPage`].
    fn read_page(&self, page: PageId) -> Result<Option<(Page, Lsn)>, StorageError>;

    /// Reads `n` consecutive frames of `file` starting at `first` — the
    /// sequential read-ahead entry point. The result holds one per-frame
    /// outcome in page order, each exactly what [`PageStore::read_page`]
    /// would have returned, so a torn frame poisons only its own slot and
    /// the caller can defer that error until the scan actually reaches the
    /// page. The default implementation loops over `read_page`; backends
    /// with a cheaper batched path (one positioned read for the whole run)
    /// override it and additionally count one `batch_reads` per call.
    fn read_run(
        &self,
        file: FileId,
        first: u32,
        n: u32,
    ) -> Vec<Result<Option<(Page, Lsn)>, StorageError>> {
        (first..first.saturating_add(n))
            .map(|p| self.read_page(PageId::new(file, p)))
            .collect()
    }

    /// Writes the image of `page` stamped with `lsn` (checkpoint
    /// write-back).
    fn write_page(&self, page: PageId, image: &Page, lsn: Lsn) -> Result<(), StorageError>;

    /// Number of page frames the store holds for `file` (the frame
    /// high-water mark; interior holes read as `None`).
    fn file_pages(&self, file: FileId) -> Result<u32, StorageError>;

    /// Every file the store holds frames for.
    fn files(&self) -> Result<Vec<FileId>, StorageError>;

    /// Appends `record` to the WAL, returning its assigned LSN.
    fn append(&self, record: &WalRecord) -> Result<Lsn, StorageError>;

    /// The decoded WAL: every complete record at or past the checkpoint
    /// base, plus whether a torn tail was discarded.
    fn wal(&self) -> Result<WalView, StorageError>;

    /// LSN of the last completed checkpoint; replay starts after it.
    fn base_lsn(&self) -> Lsn;

    /// The last catalog blob made durable by a checkpoint, if any.
    fn read_catalog(&self) -> Result<Option<Vec<u8>>, StorageError>;

    /// Seals a checkpoint: makes `catalog` durable, advances the base LSN
    /// to `end_lsn`, and releases the log before it. Called only after
    /// every dirty page reached [`PageStore::write_page`] and
    /// [`PageStore::sync`] returned.
    fn checkpoint_done(&self, catalog: &[u8], end_lsn: Lsn) -> Result<(), StorageError>;

    /// Durability barrier: forces written pages and appended WAL records
    /// to stable storage.
    fn sync(&self) -> Result<(), StorageError>;

    /// Real-traffic counters.
    fn stats(&self) -> StoreStats;
}

/// Locks a mutex, recovering the data from a poisoned lock (store state is
/// plain data; a panicking holder leaves it readable).
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[derive(Debug, Default)]
struct MemInner {
    pages: BTreeMap<u64, (Page, Lsn)>,
    wal: Vec<(Lsn, WalRecord)>,
    catalog: Option<Vec<u8>>,
    base_lsn: Lsn,
    next_lsn: Lsn,
    stats: StoreStats,
}

/// The process-memory [`PageStore`]: the default backend, byte-for-byte
/// the same protocol as [`crate::FilePageStore`] minus the files. Used by
/// `Db::builder().in_memory()` and by unit tests of the durable machinery.
#[derive(Debug, Default)]
pub struct MemPageStore {
    inner: Mutex<MemInner>,
    page_bytes: usize,
}

impl MemPageStore {
    /// Creates an empty in-memory store for pages of `page_bytes` payload
    /// capacity.
    pub fn new(page_bytes: usize) -> Self {
        MemPageStore {
            inner: Mutex::new(MemInner {
                next_lsn: 1,
                ..MemInner::default()
            }),
            page_bytes,
        }
    }
}

impl PageStore for MemPageStore {
    fn is_durable(&self) -> bool {
        false
    }

    fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    fn max_image_len(&self) -> usize {
        usize::MAX
    }

    fn read_page(&self, page: PageId) -> Result<Option<(Page, Lsn)>, StorageError> {
        let mut inner = lock(&self.inner);
        let found = inner.pages.get(&page.pack()).cloned();
        if found.is_some() {
            inner.stats.page_reads += 1;
        }
        Ok(found)
    }

    fn write_page(&self, page: PageId, image: &Page, lsn: Lsn) -> Result<(), StorageError> {
        let mut inner = lock(&self.inner);
        inner.pages.insert(page.pack(), (image.clone(), lsn));
        inner.stats.page_writes += 1;
        Ok(())
    }

    fn file_pages(&self, file: FileId) -> Result<u32, StorageError> {
        let inner = lock(&self.inner);
        let lo = PageId::new(file, 0).pack();
        let hi = PageId::new(file, u32::MAX).pack();
        Ok(inner
            .pages
            .range(lo..=hi)
            .next_back()
            .map(|(k, _)| PageId::unpack(*k).page + 1)
            .unwrap_or(0))
    }

    fn files(&self) -> Result<Vec<FileId>, StorageError> {
        let inner = lock(&self.inner);
        let mut files: Vec<FileId> = inner
            .pages
            .keys()
            .map(|k| PageId::unpack(*k).file)
            .collect();
        files.dedup();
        Ok(files)
    }

    fn append(&self, record: &WalRecord) -> Result<Lsn, StorageError> {
        let mut inner = lock(&self.inner);
        let lsn = inner.next_lsn;
        inner.next_lsn += 1;
        inner.wal.push((lsn, record.clone()));
        inner.stats.wal_appends += 1;
        Ok(lsn)
    }

    fn wal(&self) -> Result<WalView, StorageError> {
        let inner = lock(&self.inner);
        Ok(WalView {
            entries: inner
                .wal
                .iter()
                .filter(|(lsn, _)| *lsn > inner.base_lsn)
                .cloned()
                .collect(),
            clean_bytes: 0,
            truncated: false,
        })
    }

    fn base_lsn(&self) -> Lsn {
        lock(&self.inner).base_lsn
    }

    fn read_catalog(&self) -> Result<Option<Vec<u8>>, StorageError> {
        Ok(lock(&self.inner).catalog.clone())
    }

    fn checkpoint_done(&self, catalog: &[u8], end_lsn: Lsn) -> Result<(), StorageError> {
        let mut inner = lock(&self.inner);
        inner.catalog = Some(catalog.to_vec());
        inner.base_lsn = end_lsn;
        inner.wal.retain(|(lsn, _)| *lsn > end_lsn);
        Ok(())
    }

    fn sync(&self) -> Result<(), StorageError> {
        let mut inner = lock(&self.inner);
        inner.stats.syncs += 1;
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        lock(&self.inner).stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_store_roundtrips_pages_wal_and_catalog() {
        let store = MemPageStore::new(256);
        let pid = PageId::new(FileId(2), 5);
        let mut page = Page::new(256);
        page.insert(vec![1, 2, 3]).unwrap();
        store.write_page(pid, &page, 9).unwrap();
        let (back, lsn) = store.read_page(pid).unwrap().unwrap();
        assert_eq!(lsn, 9);
        assert_eq!(back.slot_bytes(0), Some(&[1u8, 2, 3][..]));
        assert_eq!(store.read_page(PageId::new(FileId(2), 6)).unwrap(), None);
        assert_eq!(store.file_pages(FileId(2)).unwrap(), 6);
        assert_eq!(store.file_pages(FileId(3)).unwrap(), 0);
        assert_eq!(store.files().unwrap(), vec![FileId(2)]);

        let l1 = store.append(&WalRecord::CheckpointBegin).unwrap();
        let l2 = store
            .append(&WalRecord::Catalog { blob: vec![7] })
            .unwrap();
        assert!(l2 > l1);
        assert_eq!(store.wal().unwrap().entries.len(), 2);

        store.checkpoint_done(&[7, 8], l2).unwrap();
        assert_eq!(store.base_lsn(), l2);
        assert_eq!(store.read_catalog().unwrap(), Some(vec![7, 8]));
        assert!(store.wal().unwrap().entries.is_empty());

        let stats = store.stats();
        assert_eq!(stats.page_reads, 1);
        assert_eq!(stats.page_writes, 1);
        assert_eq!(stats.wal_appends, 2);
    }
}
