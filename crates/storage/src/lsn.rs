//! The WAL-append / checkpoint LSN handoff, generic over the
//! [`SyncFacade`].
//!
//! [`crate::FilePageStore`] allocates log sequence numbers, frames each
//! record into the current WAL segment (rotating segments at the size
//! cap), and later checkpoints up to some LSN. The ordering contract
//! between those steps is the **publication invariant**:
//!
//! > an LSN becomes *published* only after its record is fully framed in
//! > a segment — so any observer (a checkpoint, a durability waiter)
//! > that reads the published high-water mark can rely on every record
//! > at or below it being on the log.
//!
//! [`WalTail`] makes that handoff explicit: `allocate` hands out the next
//! LSN, `publish` advances the framed high-water mark with a release
//! store *after* the frame write, and `published` acquire-loads it. The
//! mutex serializing appends makes allocation order equal write order;
//! the atomic publication is what a reader outside that mutex may trust.
//! Checker harness (d) (`crates/check/src/harness/walcut.rs`)
//! exhaustively verifies the invariant across append/rotation/checkpoint
//! interleavings, including the seeded mutant that publishes before
//! framing.

use std::sync::atomic::Ordering;

use crate::sync::{AtomicWord, RealSync, SyncFacade};
use crate::wal::Lsn;

/// Allocation and publication state of the WAL tail.
#[derive(Debug)]
pub struct WalTail<S: SyncFacade = RealSync> {
    /// Next LSN to hand out.
    next: S::Word,
    /// Highest LSN whose record is fully framed on the log.
    published: S::Word,
}

impl<S: SyncFacade> WalTail<S> {
    /// A tail that will allocate `next_lsn` first; everything below it is
    /// already on the log (or checkpointed away) and counts as published.
    pub fn new(next_lsn: Lsn) -> Self {
        WalTail {
            next: S::Word::new(next_lsn),
            published: S::Word::new(next_lsn.saturating_sub(1)),
        }
    }

    /// Hands out the next LSN. Callers serialize framing (the store's
    /// inner mutex), so allocation order equals log order.
    pub fn allocate(&self) -> Lsn {
        // Relaxed: allocation needs only atomicity — the caller's mutex
        // orders the frame writes; `publish` carries the release edge.
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Marks `lsn` (and, by the allocation discipline, everything below
    /// it) fully framed. Must be called only *after* the record's bytes
    /// are written to the segment; the release store is the publication
    /// edge harness (d) checks.
    pub fn publish(&self, lsn: Lsn) {
        self.published.fetch_max(lsn, Ordering::Release);
    }

    /// The framed high-water mark: every LSN at or below the returned
    /// value has its record on the log. The acquire load pairs with the
    /// release in [`WalTail::publish`].
    pub fn published(&self) -> Lsn {
        self.published.load(Ordering::Acquire)
    }
}
