//! Simulated cost accounting.
//!
//! Every optimizer decision in the paper compares costs: the two-stage
//! competition terminates an index scan "when the projected retrieval cost
//! approaches (e.g. becomes 95% of) the guaranteed best retrieval cost"
//! (Section 6). To make those comparisons deterministic and testable, all
//! work in this reproduction is charged to a [`CostMeter`] in *cost units*
//! where one unit is one physical page I/O. CPU-side work (record
//! evaluation, RID filtering) costs small configurable fractions, mirroring
//! the I/O-dominated cost model of 1990s disk databases.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cost-unit weights. One unit = one physical page read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostConfig {
    /// Cost of a buffer-pool miss (physical I/O).
    pub io_read: f64,
    /// Cost of a buffer-pool hit (in-memory page access).
    pub cache_hit: f64,
    /// Cost of writing one page to a temporary table (RID-list spill).
    pub io_write: f64,
    /// Cost of materializing/evaluating one record (decode + restriction).
    pub cpu_record: f64,
    /// Cost of one RID-level operation (filter probe, list append, sort key).
    pub rid_op: f64,
    /// Cost of visiting one B-tree index entry during a scan.
    pub index_entry: f64,
}

impl Default for CostConfig {
    fn default() -> Self {
        CostConfig {
            io_read: 1.0,
            cache_hit: 0.01,
            io_write: 1.0,
            cpu_record: 0.001,
            rid_op: 0.0005,
            index_entry: 0.0002,
        }
    }
}

/// Monotone counters of work done, plus the weighted total in cost units.
///
/// Each query session carries its own meter via [`SharedCost`]; strategies
/// snapshot it before/after their quanta to learn their own incremental
/// cost. Counters are relaxed atomics so one meter may be charged from a
/// background stage thread while the foreground reads it — per-counter
/// monotonicity is all the competition logic needs, and under
/// single-threaded use the totals are bit-identical to the old
/// `Cell`-based meter.
///
/// Charging is a single integer increment per call — the weighted
/// [`CostMeter::total`] is computed on demand from the counters, so the
/// hot paths (one charge per page touch or per RID batch) never do
/// floating-point work, and the total is independent of how charges were
/// batched (`n` single charges and one charge of `n` produce bit-identical
/// totals).
#[derive(Debug, Default)]
pub struct CostMeter {
    config: CostConfig,
    page_reads: AtomicU64,
    cache_hits: AtomicU64,
    page_writes: AtomicU64,
    records_examined: AtomicU64,
    rid_ops: AtomicU64,
    index_entries: AtomicU64,
}

impl CostMeter {
    /// Creates a meter with the given weights.
    pub fn new(config: CostConfig) -> Self {
        CostMeter {
            config,
            ..CostMeter::default()
        }
    }

    /// The weights in force.
    pub fn config(&self) -> CostConfig {
        self.config
    }

    /// Charges one physical page read (buffer miss).
    pub fn charge_page_read(&self) {
        self.charge_page_reads(1);
    }

    /// Charges `n` physical page reads at once (batched access runs).
    pub fn charge_page_reads(&self, n: u64) {
        // Relaxed: an independent monotonic tally; readers only sum the
        // counters, so no ordering with other memory is needed.
        self.page_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Charges one buffer hit.
    pub fn charge_cache_hit(&self) {
        self.charge_cache_hits(1);
    }

    /// Charges `n` buffer hits at once (batched access runs).
    pub fn charge_cache_hits(&self, n: u64) {
        // Relaxed: same independent-tally argument as charge_page_reads.
        self.cache_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Charges one temporary-table page write.
    pub fn charge_page_write(&self) {
        self.charge_page_writes(1);
    }

    /// Charges `n` temporary-table page writes at once.
    pub fn charge_page_writes(&self, n: u64) {
        // Relaxed: same independent-tally argument as charge_page_reads.
        self.page_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Charges examination of `n` records.
    pub fn charge_records(&self, n: u64) {
        // Relaxed: same independent-tally argument as charge_page_reads.
        self.records_examined.fetch_add(n, Ordering::Relaxed);
    }

    /// Charges `n` RID-level operations.
    pub fn charge_rid_ops(&self, n: u64) {
        // Relaxed: same independent-tally argument as charge_page_reads.
        self.rid_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Charges `n` index-entry visits.
    pub fn charge_index_entries(&self, n: u64) {
        // Relaxed: same independent-tally argument as charge_page_reads.
        self.index_entries.fetch_add(n, Ordering::Relaxed);
    }

    /// Total cost units accumulated so far (computed from the counters).
    pub fn total(&self) -> f64 {
        self.snapshot().total
    }

    /// Point-in-time copy of all counters.
    ///
    /// Relaxed loads: each counter is an independent tally; the snapshot
    /// is a statistical reading, not a synchronization point, and charging
    /// is batched so concurrent deltas were never atomic across counters
    /// anyway.
    pub fn snapshot(&self) -> CostSnapshot {
        // All Relaxed — see above.
        let page_reads = self.page_reads.load(Ordering::Relaxed);
        let cache_hits = self.cache_hits.load(Ordering::Relaxed);
        let page_writes = self.page_writes.load(Ordering::Relaxed);
        let records_examined = self.records_examined.load(Ordering::Relaxed);
        let rid_ops = self.rid_ops.load(Ordering::Relaxed);
        let index_entries = self.index_entries.load(Ordering::Relaxed);
        let c = &self.config;
        CostSnapshot {
            page_reads,
            cache_hits,
            page_writes,
            records_examined,
            rid_ops,
            index_entries,
            total: page_reads as f64 * c.io_read
                + cache_hits as f64 * c.cache_hit
                + page_writes as f64 * c.io_write
                + records_examined as f64 * c.cpu_record
                + rid_ops as f64 * c.rid_op
                + index_entries as f64 * c.index_entry,
        }
    }

    /// Merges a snapshot (typically the delta of a background stage's
    /// private meter) into this meter, so a session's meter ends up with
    /// the work done on its behalf by other threads.
    pub fn absorb(&self, delta: &CostSnapshot) {
        self.charge_page_reads(delta.page_reads);
        self.charge_cache_hits(delta.cache_hits);
        self.charge_page_writes(delta.page_writes);
        self.charge_records(delta.records_examined);
        self.charge_rid_ops(delta.rid_ops);
        self.charge_index_entries(delta.index_entries);
    }

    /// Resets all counters to zero (weights are kept).
    ///
    /// Relaxed stores: reset happens between experiment phases with no
    /// concurrent chargers; there is nothing to order against.
    pub fn reset(&self) {
        self.page_reads.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.page_writes.store(0, Ordering::Relaxed);
        self.records_examined.store(0, Ordering::Relaxed);
        self.rid_ops.store(0, Ordering::Relaxed);
        self.index_entries.store(0, Ordering::Relaxed);
    }
}

/// Shared handle to one [`CostMeter`]. Meters are shared across OS threads
/// (each `Db` session owns one, and a query's background stage charges a
/// private meter that is absorbed at join), so `Arc` over relaxed atomics
/// is the sharing primitive; the paper's "simultaneous" strategy runs are
/// still cooperative quanta *within* one session.
pub type SharedCost = Arc<CostMeter>;

/// Creates a fresh shared meter with the given weights.
pub fn shared_meter(config: CostConfig) -> SharedCost {
    Arc::new(CostMeter::new(config))
}

/// Immutable snapshot of a [`CostMeter`], with subtraction for deltas.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostSnapshot {
    /// Physical page reads (buffer misses).
    pub page_reads: u64,
    /// Buffer hits.
    pub cache_hits: u64,
    /// Temporary-table page writes.
    pub page_writes: u64,
    /// Records examined.
    pub records_examined: u64,
    /// RID-level operations.
    pub rid_ops: u64,
    /// Index entries visited.
    pub index_entries: u64,
    /// Weighted total in cost units.
    pub total: f64,
}

impl CostSnapshot {
    /// Work done between `earlier` and `self`.
    pub fn since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            page_reads: self.page_reads - earlier.page_reads,
            cache_hits: self.cache_hits - earlier.cache_hits,
            page_writes: self.page_writes - earlier.page_writes,
            records_examined: self.records_examined - earlier.records_examined,
            rid_ops: self.rid_ops - earlier.rid_ops,
            index_entries: self.index_entries - earlier.index_entries,
            total: self.total - earlier.total,
        }
    }
}

impl fmt::Display for CostSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} units (reads={}, hits={}, writes={}, recs={}, rids={}, idx={})",
            self.total,
            self.page_reads,
            self.cache_hits,
            self.page_writes,
            self.records_examined,
            self.rid_ops,
            self.index_entries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_with_weights() {
        let meter = CostMeter::new(CostConfig::default());
        meter.charge_page_read();
        meter.charge_cache_hit();
        meter.charge_records(10);
        let snap = meter.snapshot();
        assert_eq!(snap.page_reads, 1);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.records_examined, 10);
        assert!((snap.total - (1.0 + 0.01 + 0.01)).abs() < 1e-12);
    }

    #[test]
    fn snapshot_since_gives_delta() {
        let meter = CostMeter::default();
        meter.charge_page_read();
        let before = meter.snapshot();
        meter.charge_page_read();
        meter.charge_rid_ops(4);
        let delta = meter.snapshot().since(&before);
        assert_eq!(delta.page_reads, 1);
        assert_eq!(delta.rid_ops, 4);
        assert!(delta.total > 0.0);
    }

    #[test]
    fn reset_clears_counters() {
        let meter = CostMeter::default();
        meter.charge_page_write();
        meter.reset();
        assert_eq!(meter.total(), 0.0);
        assert_eq!(meter.snapshot().page_writes, 0);
    }

    #[test]
    fn custom_weights_respected() {
        let meter = CostMeter::new(CostConfig {
            io_read: 5.0,
            ..CostConfig::default()
        });
        meter.charge_page_read();
        assert!((meter.total() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn absorb_merges_deltas() {
        let session = CostMeter::default();
        session.charge_page_read();

        let bg = CostMeter::default();
        bg.charge_page_reads(3);
        bg.charge_index_entries(40);
        let mark = bg.snapshot();
        bg.charge_cache_hits(2);

        session.absorb(&bg.snapshot().since(&mark));
        let snap = session.snapshot();
        assert_eq!(snap.page_reads, 1, "pre-mark bg work not absorbed");
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.index_entries, 0);
    }

    #[test]
    fn concurrent_charges_are_conserved() {
        let meter = Arc::new(CostMeter::default());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&meter);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        m.charge_page_read();
                        m.charge_rid_ops(2);
                    }
                });
            }
        });
        let snap = meter.snapshot();
        assert_eq!(snap.page_reads, 80_000);
        assert_eq!(snap.rid_ops, 160_000);
    }
}
