//! Simulated cost accounting.
//!
//! Every optimizer decision in the paper compares costs: the two-stage
//! competition terminates an index scan "when the projected retrieval cost
//! approaches (e.g. becomes 95% of) the guaranteed best retrieval cost"
//! (Section 6). To make those comparisons deterministic and testable, all
//! work in this reproduction is charged to a [`CostMeter`] in *cost units*
//! where one unit is one physical page I/O. CPU-side work (record
//! evaluation, RID filtering) costs small configurable fractions, mirroring
//! the I/O-dominated cost model of 1990s disk databases.

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

/// Cost-unit weights. One unit = one physical page read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostConfig {
    /// Cost of a buffer-pool miss (physical I/O).
    pub io_read: f64,
    /// Cost of a buffer-pool hit (in-memory page access).
    pub cache_hit: f64,
    /// Cost of writing one page to a temporary table (RID-list spill).
    pub io_write: f64,
    /// Cost of materializing/evaluating one record (decode + restriction).
    pub cpu_record: f64,
    /// Cost of one RID-level operation (filter probe, list append, sort key).
    pub rid_op: f64,
    /// Cost of visiting one B-tree index entry during a scan.
    pub index_entry: f64,
}

impl Default for CostConfig {
    fn default() -> Self {
        CostConfig {
            io_read: 1.0,
            cache_hit: 0.01,
            io_write: 1.0,
            cpu_record: 0.001,
            rid_op: 0.0005,
            index_entry: 0.0002,
        }
    }
}

/// Monotone counters of work done, plus the weighted total in cost units.
///
/// Shared by every storage structure of one database instance via
/// [`SharedCost`]; strategies snapshot it before/after their quanta to learn
/// their own incremental cost.
///
/// Charging is a single integer increment per call — the weighted
/// [`CostMeter::total`] is computed on demand from the counters, so the
/// hot paths (one charge per page touch or per RID batch) never do
/// floating-point work, and the total is independent of how charges were
/// batched (`n` single charges and one charge of `n` produce bit-identical
/// totals).
#[derive(Debug)]
pub struct CostMeter {
    config: CostConfig,
    page_reads: Cell<u64>,
    cache_hits: Cell<u64>,
    page_writes: Cell<u64>,
    records_examined: Cell<u64>,
    rid_ops: Cell<u64>,
    index_entries: Cell<u64>,
}

impl CostMeter {
    /// Creates a meter with the given weights.
    pub fn new(config: CostConfig) -> Self {
        CostMeter {
            config,
            page_reads: Cell::new(0),
            cache_hits: Cell::new(0),
            page_writes: Cell::new(0),
            records_examined: Cell::new(0),
            rid_ops: Cell::new(0),
            index_entries: Cell::new(0),
        }
    }

    /// The weights in force.
    pub fn config(&self) -> CostConfig {
        self.config
    }

    /// Charges one physical page read (buffer miss).
    pub fn charge_page_read(&self) {
        self.charge_page_reads(1);
    }

    /// Charges `n` physical page reads at once (batched access runs).
    pub fn charge_page_reads(&self, n: u64) {
        self.page_reads.set(self.page_reads.get() + n);
    }

    /// Charges one buffer hit.
    pub fn charge_cache_hit(&self) {
        self.charge_cache_hits(1);
    }

    /// Charges `n` buffer hits at once (batched access runs).
    pub fn charge_cache_hits(&self, n: u64) {
        self.cache_hits.set(self.cache_hits.get() + n);
    }

    /// Charges one temporary-table page write.
    pub fn charge_page_write(&self) {
        self.charge_page_writes(1);
    }

    /// Charges `n` temporary-table page writes at once.
    pub fn charge_page_writes(&self, n: u64) {
        self.page_writes.set(self.page_writes.get() + n);
    }

    /// Charges examination of `n` records.
    pub fn charge_records(&self, n: u64) {
        self.records_examined.set(self.records_examined.get() + n);
    }

    /// Charges `n` RID-level operations.
    pub fn charge_rid_ops(&self, n: u64) {
        self.rid_ops.set(self.rid_ops.get() + n);
    }

    /// Charges `n` index-entry visits.
    pub fn charge_index_entries(&self, n: u64) {
        self.index_entries.set(self.index_entries.get() + n);
    }

    /// Total cost units accumulated so far (computed from the counters).
    pub fn total(&self) -> f64 {
        let c = &self.config;
        self.page_reads.get() as f64 * c.io_read
            + self.cache_hits.get() as f64 * c.cache_hit
            + self.page_writes.get() as f64 * c.io_write
            + self.records_examined.get() as f64 * c.cpu_record
            + self.rid_ops.get() as f64 * c.rid_op
            + self.index_entries.get() as f64 * c.index_entry
    }

    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            page_reads: self.page_reads.get(),
            cache_hits: self.cache_hits.get(),
            page_writes: self.page_writes.get(),
            records_examined: self.records_examined.get(),
            rid_ops: self.rid_ops.get(),
            index_entries: self.index_entries.get(),
            total: self.total(),
        }
    }

    /// Resets all counters to zero (weights are kept).
    pub fn reset(&self) {
        self.page_reads.set(0);
        self.cache_hits.set(0);
        self.page_writes.set(0);
        self.records_examined.set(0);
        self.rid_ops.set(0);
        self.index_entries.set(0);
    }
}

impl Default for CostMeter {
    fn default() -> Self {
        CostMeter::new(CostConfig::default())
    }
}

/// Shared handle to one [`CostMeter`]. The engine is single-threaded (the
/// paper's "simultaneous" strategy runs are cooperative quanta), so `Rc` is
/// the right sharing primitive.
pub type SharedCost = Rc<CostMeter>;

/// Creates a fresh shared meter with the given weights.
pub fn shared_meter(config: CostConfig) -> SharedCost {
    Rc::new(CostMeter::new(config))
}

/// Immutable snapshot of a [`CostMeter`], with subtraction for deltas.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostSnapshot {
    /// Physical page reads (buffer misses).
    pub page_reads: u64,
    /// Buffer hits.
    pub cache_hits: u64,
    /// Temporary-table page writes.
    pub page_writes: u64,
    /// Records examined.
    pub records_examined: u64,
    /// RID-level operations.
    pub rid_ops: u64,
    /// Index entries visited.
    pub index_entries: u64,
    /// Weighted total in cost units.
    pub total: f64,
}

impl CostSnapshot {
    /// Work done between `earlier` and `self`.
    pub fn since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            page_reads: self.page_reads - earlier.page_reads,
            cache_hits: self.cache_hits - earlier.cache_hits,
            page_writes: self.page_writes - earlier.page_writes,
            records_examined: self.records_examined - earlier.records_examined,
            rid_ops: self.rid_ops - earlier.rid_ops,
            index_entries: self.index_entries - earlier.index_entries,
            total: self.total - earlier.total,
        }
    }
}

impl fmt::Display for CostSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} units (reads={}, hits={}, writes={}, recs={}, rids={}, idx={})",
            self.total,
            self.page_reads,
            self.cache_hits,
            self.page_writes,
            self.records_examined,
            self.rid_ops,
            self.index_entries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_with_weights() {
        let meter = CostMeter::new(CostConfig::default());
        meter.charge_page_read();
        meter.charge_cache_hit();
        meter.charge_records(10);
        let snap = meter.snapshot();
        assert_eq!(snap.page_reads, 1);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.records_examined, 10);
        assert!((snap.total - (1.0 + 0.01 + 0.01)).abs() < 1e-12);
    }

    #[test]
    fn snapshot_since_gives_delta() {
        let meter = CostMeter::default();
        meter.charge_page_read();
        let before = meter.snapshot();
        meter.charge_page_read();
        meter.charge_rid_ops(4);
        let delta = meter.snapshot().since(&before);
        assert_eq!(delta.page_reads, 1);
        assert_eq!(delta.rid_ops, 4);
        assert!(delta.total > 0.0);
    }

    #[test]
    fn reset_clears_counters() {
        let meter = CostMeter::default();
        meter.charge_page_write();
        meter.reset();
        assert_eq!(meter.total(), 0.0);
        assert_eq!(meter.snapshot().page_writes, 0);
    }

    #[test]
    fn custom_weights_respected() {
        let meter = CostMeter::new(CostConfig {
            io_read: 5.0,
            ..CostConfig::default()
        });
        meter.charge_page_read();
        assert!((meter.total() - 5.0).abs() < 1e-12);
    }
}
