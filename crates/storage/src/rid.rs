//! Record identifiers.
//!
//! RIDs are the currency of the paper's Jscan: index scans produce RID
//! lists, filters intersect them, and the final stage fetches data records
//! by RID. The ordering (page-major) matters — Section 7's background-only
//! tactic sorts the final RID list so that all records on one page are
//! fetched with a single page read.

use std::fmt;

/// Identifier of a record within one table: `(page, slot)`.
///
/// The derived ordering is page-major, so sorting a RID list groups records
/// that share a physical page — the property the paper exploits when the
/// Jscan final stage fetches records in sorted-RID order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rid {
    /// Page number within the table's file.
    pub page: u32,
    /// Slot index within the page.
    pub slot: u16,
}

impl Rid {
    /// Creates a RID.
    pub fn new(page: u32, slot: u16) -> Self {
        Rid { page, slot }
    }

    /// Packs the RID into a single `u64` (for hashing into bitmap filters).
    pub fn to_u64(self) -> u64 {
        ((self.page as u64) << 16) | self.slot as u64
    }

    /// Inverse of [`Rid::to_u64`].
    pub fn from_u64(v: u64) -> Self {
        Rid {
            page: (v >> 16) as u32,
            slot: (v & 0xFFFF) as u16,
        }
    }
}

impl fmt::Display for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.page, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        let rid = Rid::new(123_456, 789);
        assert_eq!(Rid::from_u64(rid.to_u64()), rid);
    }

    #[test]
    fn ordering_is_page_major() {
        assert!(Rid::new(1, 500) < Rid::new(2, 0));
        assert!(Rid::new(1, 2) < Rid::new(1, 3));
    }

    #[test]
    fn u64_order_matches_rid_order() {
        let a = Rid::new(1, 500);
        let b = Rid::new(2, 0);
        assert!(a.to_u64() < b.to_u64());
    }
}
