//! Storage-layer error type.

use std::fmt;

use crate::buffer::FileId;

/// Errors raised by the storage substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A serialized page or record failed to decode; the payload names the
    /// structure that was being decoded.
    Corrupt(&'static str),
    /// A RID referenced a page that does not exist in the table.
    PageOutOfRange {
        /// Requested page number.
        page: u32,
        /// Number of pages the table actually has.
        pages: u32,
    },
    /// A RID referenced a slot that does not exist or was deleted.
    InvalidSlot {
        /// Page the slot was looked up on.
        page: u32,
        /// The invalid slot index.
        slot: u16,
    },
    /// A record did not match the table schema.
    SchemaMismatch(String),
    /// A record was too large to fit in an empty page.
    RecordTooLarge {
        /// Record size in bytes.
        size: usize,
        /// Largest size that would have fit.
        max: usize,
    },
    /// A simulated I/O failure injected by a [`crate::FaultPolicy`] (the
    /// simulation harness's stand-in for a dead disk or torn read).
    InjectedFault {
        /// File whose read failed.
        file: FileId,
        /// Page whose read failed.
        page: u32,
    },
    /// A real file-system operation failed (durable backend only). The
    /// underlying `std::io::Error` is flattened to text so the error stays
    /// `Clone + Eq` like the rest of the enum.
    Io {
        /// The operation that failed (`"open"`, `"read"`, `"append"`, …).
        op: &'static str,
        /// Path the operation was against.
        path: String,
        /// The OS error rendered as text.
        detail: String,
    },
    /// An on-disk page frame failed its checksum (a torn or bit-rotted
    /// write) and no full-page image in the redo span could repair it.
    TornPage {
        /// File holding the torn frame.
        file: FileId,
        /// Page number of the torn frame.
        page: u32,
    },
}

impl StorageError {
    /// True for errors that model a record vanishing under a scan
    /// (deleted slot, truncated page) rather than a storage failure.
    /// Cursors skip these and keep scanning; everything else propagates.
    pub fn is_benign_for_scan(&self) -> bool {
        matches!(
            self,
            StorageError::PageOutOfRange { .. } | StorageError::InvalidSlot { .. }
        )
    }

    /// Wraps a `std::io::Error` from `op` against `path` into the typed
    /// [`StorageError::Io`] variant.
    pub fn io(op: &'static str, path: &std::path::Path, err: &std::io::Error) -> StorageError {
        StorageError::Io {
            op,
            path: path.display().to_string(),
            detail: err.to_string(),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Corrupt(what) => write!(f, "corrupt {what}"),
            StorageError::PageOutOfRange { page, pages } => {
                write!(f, "page {page} out of range (table has {pages} pages)")
            }
            StorageError::InvalidSlot { page, slot } => {
                write!(f, "invalid slot {slot} on page {page}")
            }
            StorageError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            StorageError::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds page capacity {max}")
            }
            StorageError::InjectedFault { file, page } => {
                write!(f, "injected I/O fault reading page {page} of file {}", file.0)
            }
            StorageError::Io { op, path, detail } => {
                write!(f, "I/O error during {op} on {path}: {detail}")
            }
            StorageError::TornPage { file, page } => {
                write!(
                    f,
                    "torn page: frame {page} of file {} failed its checksum and no \
                     full-page image covers it",
                    file.0
                )
            }
        }
    }
}

impl std::error::Error for StorageError {}
