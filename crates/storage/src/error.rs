//! Storage-layer error type.

use std::fmt;

/// Errors raised by the storage substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A serialized page or record failed to decode; the payload names the
    /// structure that was being decoded.
    Corrupt(&'static str),
    /// A RID referenced a page that does not exist in the table.
    PageOutOfRange {
        /// Requested page number.
        page: u32,
        /// Number of pages the table actually has.
        pages: u32,
    },
    /// A RID referenced a slot that does not exist or was deleted.
    InvalidSlot {
        /// Page the slot was looked up on.
        page: u32,
        /// The invalid slot index.
        slot: u16,
    },
    /// A record did not match the table schema.
    SchemaMismatch(String),
    /// A record was too large to fit in an empty page.
    RecordTooLarge {
        /// Record size in bytes.
        size: usize,
        /// Largest size that would have fit.
        max: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Corrupt(what) => write!(f, "corrupt {what}"),
            StorageError::PageOutOfRange { page, pages } => {
                write!(f, "page {page} out of range (table has {pages} pages)")
            }
            StorageError::InvalidSlot { page, slot } => {
                write!(f, "invalid slot {slot} on page {page}")
            }
            StorageError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            StorageError::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds page capacity {max}")
            }
        }
    }
}

impl std::error::Error for StorageError {}
