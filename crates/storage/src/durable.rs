//! Durability glue: WAL logging, fuzzy checkpoints, and redo recovery.
//!
//! [`DurableCtx`] sits between the in-memory structures (heap tables, the
//! buffer pool) and a [`PageStore`](crate::store::PageStore). The
//! division of labour:
//!
//! * **Logging** — every heap insert/delete calls [`DurableCtx::log_insert`]
//!   / [`DurableCtx::log_delete`] *after* applying the change in memory.
//!   The first modification of a page since the last checkpoint logs a
//!   **full page image** (so recovery can repair a torn data frame from
//!   the log alone); later modifications log compact logical deltas. Every
//!   record gets a fresh [`Lsn`]; the page's last-LSN is tracked here and
//!   the page is marked dirty in the pool.
//! * **Checkpointing** — [`DurableCtx::checkpoint`] drains the pool's
//!   dirty set, writes each page's current image (stamped with its last
//!   LSN) through the store, syncs, then seals with
//!   [`checkpoint_done`](crate::store::PageStore::checkpoint_done),
//!   which atomically advances the base
//!   LSN and releases the log. The protocol is fuzzy-capable: begin/end
//!   records bracket the write-back, and recovery's per-page LSN guard
//!   makes a half-finished checkpoint harmless.
//! * **Recovery** — [`recover`] loads every frame, then replays the log
//!   after the base LSN: images apply when newer than the frame (and
//!   always repair torn frames); deltas apply only when `lsn > page_lsn`
//!   (ARIES-lite redo). A torn frame that no surviving image covers is a
//!   typed [`StorageError::TornPage`] — never silent data loss.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use crate::buffer::{PageId, SharedPool};
use crate::error::StorageError;
use crate::page::Page;
use crate::store::{lock, SharedStore};
use crate::wal::{Lsn, WalRecord};

#[derive(Debug, Default)]
struct CtxState {
    /// Pages whose full image is already in the current WAL span.
    imaged: BTreeSet<u64>,
    /// Last LSN applied to each page (packed key) — the stamp a checkpoint
    /// writes into the page's frame.
    page_lsns: BTreeMap<u64, Lsn>,
}

/// The durable half of a database instance: one page store plus the
/// logging/checkpoint state shared by all of its tables.
#[derive(Debug)]
pub struct DurableCtx {
    store: SharedStore,
    pool: SharedPool,
    state: Mutex<CtxState>,
}

/// What a checkpoint did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Dirty pages written back to the store.
    pub pages_written: u64,
    /// LSN of the `CheckpointEnd` record — the new base LSN.
    pub end_lsn: Lsn,
}

impl DurableCtx {
    /// Creates the durable context for `store`, marking dirty pages in
    /// `pool`. `imaged` and `page_lsns` seed the logging state from a
    /// recovery ([`Recovered::imaged`] / per-page LSNs); both are empty
    /// for a fresh database.
    pub fn new(
        store: SharedStore,
        pool: SharedPool,
        imaged: Vec<u64>,
        page_lsns: Vec<(u64, Lsn)>,
    ) -> Arc<DurableCtx> {
        Arc::new(DurableCtx {
            store,
            pool,
            state: Mutex::new(CtxState {
                imaged: imaged.into_iter().collect(),
                page_lsns: page_lsns.into_iter().collect(),
            }),
        })
    }

    /// The underlying page store.
    pub fn store(&self) -> &SharedStore {
        &self.store
    }

    /// True when the backend is file-backed (survives the process).
    pub fn is_durable(&self) -> bool {
        self.store.is_durable()
    }

    /// Largest serialized page image the backend accepts (insert placement
    /// checks this so churned pages retire before overflowing a frame).
    pub fn max_image_len(&self) -> usize {
        self.store.max_image_len()
    }

    fn log(&self, page_id: PageId, record: WalRecord) -> Result<(), StorageError> {
        let lsn = self.store.append(&record)?;
        lock(&self.state).page_lsns.insert(page_id.pack(), lsn);
        self.pool.mark_dirty(page_id);
        Ok(())
    }

    /// True when the next modification of `page_id` must log a full image
    /// (first touch since the last checkpoint). Marks it imaged.
    fn claim_first_touch(&self, page_id: PageId) -> bool {
        lock(&self.state).imaged.insert(page_id.pack())
    }

    /// Logs an insert of `bytes` that landed on (`page_id`, `slot`);
    /// `page_after` is the page as it stands after the insert.
    pub fn log_insert(
        &self,
        page_id: PageId,
        slot: u16,
        bytes: &[u8],
        page_after: &Page,
    ) -> Result<(), StorageError> {
        if self.claim_first_touch(page_id) {
            let mut image = Vec::with_capacity(page_after.image_len());
            page_after.encode_image(&mut image)?;
            self.log(page_id, WalRecord::PageImage { page: page_id, image })
        } else {
            self.log(
                page_id,
                WalRecord::Insert {
                    page: page_id,
                    slot,
                    bytes: bytes.to_vec(),
                },
            )
        }
    }

    /// Logs a delete at (`page_id`, `slot`); `page_after` is the page as
    /// it stands after the delete.
    pub fn log_delete(
        &self,
        page_id: PageId,
        slot: u16,
        page_after: &Page,
    ) -> Result<(), StorageError> {
        if self.claim_first_touch(page_id) {
            let mut image = Vec::with_capacity(page_after.image_len());
            page_after.encode_image(&mut image)?;
            self.log(page_id, WalRecord::PageImage { page: page_id, image })
        } else {
            self.log(page_id, WalRecord::Delete { page: page_id, slot })
        }
    }

    /// Logs a full catalog snapshot (every DDL statement does this;
    /// recovery honours the last one in the log).
    pub fn log_catalog(&self, blob: Vec<u8>) -> Result<(), StorageError> {
        self.store.append(&WalRecord::Catalog { blob })?;
        Ok(())
    }

    /// Re-reads and checksum-verifies `page_id`'s frame — the *real* I/O
    /// behind a buffer-pool miss on a clean, checkpointed page. `Ok` for
    /// holes (pages that never reached a checkpoint have no frame yet).
    pub fn verify_read(&self, page_id: PageId) -> Result<(), StorageError> {
        self.store.read_page(page_id).map(|_| ())
    }

    /// Batched [`DurableCtx::verify_read`] over `n` consecutive frames of
    /// `file` starting at `first` — the sequential read-ahead path. One
    /// per-frame outcome in page order; a torn frame poisons only its own
    /// slot, so the caller can defer that error until the scan reaches the
    /// page (see [`crate::readahead::ReadAhead`]).
    pub fn verify_read_run(
        &self,
        file: crate::buffer::FileId,
        first: u32,
        n: u32,
    ) -> Vec<Result<(), StorageError>> {
        self.store
            .read_run(file, first, n)
            .into_iter()
            .map(|r| r.map(|_| ()))
            .collect()
    }

    /// Runs a checkpoint: drains the pool's dirty set, writes each page's
    /// image (fetched from the owning table via `page_image`) stamped with
    /// its last LSN, syncs, and seals with the new `catalog`. Write-backs
    /// charge page-write cost to the pool's default meter. On error the
    /// undrained pages are re-marked dirty so no modification is ever
    /// silently dropped from the write-back worklist.
    pub fn checkpoint(
        &self,
        catalog: &[u8],
        mut page_image: impl FnMut(PageId) -> Option<Page>,
    ) -> Result<CheckpointStats, StorageError> {
        let dirty = self.pool.take_dirty();
        let result = (|| {
            let begin = self.store.append(&WalRecord::CheckpointBegin)?;
            let mut written = 0u64;
            for &pid in &dirty {
                // A page with no image (its table was dropped or its file
                // is not heap-backed) has nothing to write back.
                let Some(image) = page_image(pid) else { continue };
                let lsn = lock(&self.state)
                    .page_lsns
                    .get(&pid.pack())
                    .copied()
                    .unwrap_or(begin);
                self.store.write_page(pid, &image, lsn)?;
                self.pool.write(pid, self.pool.cost());
                written += 1;
            }
            let end = self.store.append(&WalRecord::CheckpointEnd { begin })?;
            self.store.sync()?;
            self.store.checkpoint_done(catalog, end)?;
            Ok(CheckpointStats {
                pages_written: written,
                end_lsn: end,
            })
        })();
        match result {
            Ok(stats) => {
                lock(&self.state).imaged.clear();
                Ok(stats)
            }
            Err(e) => {
                for pid in dirty {
                    self.pool.mark_dirty(pid);
                }
                Err(e)
            }
        }
    }
}

/// One file's recovered state: its pages in page-number order, their
/// frame/redo LSNs, and which pages the redo pass modified (these are
/// dirty — their frames are stale until the next checkpoint).
#[derive(Debug, Clone, Default)]
pub struct RecoveredFile {
    /// Pages in page-number order (holes are empty pages).
    pub pages: Vec<Page>,
    /// Last LSN applied to each page, parallel to `pages`.
    pub lsns: Vec<Lsn>,
    /// Page numbers the redo pass changed or repaired.
    pub dirty: Vec<u32>,
}

/// How recovery went (numbers for reports and campaign assertions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// WAL records scanned after the base LSN.
    pub records_scanned: u64,
    /// Records applied (image or delta).
    pub records_applied: u64,
    /// Records skipped by the per-page LSN guard.
    pub records_skipped: u64,
    /// Torn frames repaired from full-page images.
    pub pages_repaired: u64,
    /// True when a torn WAL tail was discarded (crash mid-append).
    pub wal_torn_tail: bool,
}

/// Everything [`recover`] reconstructs from a store.
#[derive(Debug, Default)]
pub struct Recovered {
    /// The last durable catalog blob, overridden by any `Catalog` record
    /// in the redo span.
    pub catalog: Option<Vec<u8>>,
    /// Per-file recovered pages, keyed by `FileId.0`.
    pub files: BTreeMap<u32, RecoveredFile>,
    /// Packed keys of pages whose full image is in the surviving WAL span
    /// (seed for [`DurableCtx::new`]'s `imaged`).
    pub imaged: Vec<u64>,
    /// The redo pass's numbers.
    pub report: RecoveryReport,
}

impl Recovered {
    /// The per-page LSN seed for [`DurableCtx::new`].
    pub fn page_lsns(&self) -> Vec<(u64, Lsn)> {
        let mut out = Vec::new();
        for (file, rec) in &self.files {
            for (page_no, lsn) in rec.lsns.iter().enumerate() {
                if *lsn > 0 {
                    out.push((
                        PageId::new(crate::buffer::FileId(*file), page_no as u32).pack(),
                        *lsn,
                    ));
                }
            }
        }
        out
    }
}

/// Ensures `files` has a slot for (`pid.file`, `pid.page`), growing with
/// empty pages, and returns the file entry.
fn entry_for(
    files: &mut BTreeMap<u32, RecoveredFile>,
    pid: PageId,
    page_bytes: usize,
) -> &mut RecoveredFile {
    let rec = files.entry(pid.file.0).or_default();
    while rec.pages.len() <= pid.page as usize {
        rec.pages.push(Page::new(page_bytes));
        rec.lsns.push(0);
    }
    rec
}

/// ARIES-lite redo recovery: loads every frame the store holds, replays
/// the WAL after the base LSN under the per-page LSN guard, and reports
/// what happened. Fails with a typed error if a torn frame survives with
/// no covering full-page image.
pub fn recover(store: &SharedStore) -> Result<Recovered, StorageError> {
    let page_bytes = store.page_bytes();
    let mut out = Recovered {
        catalog: store.read_catalog()?,
        ..Recovered::default()
    };
    let mut torn: BTreeSet<u64> = BTreeSet::new();

    for file in store.files()? {
        let n = store.file_pages(file)?;
        let rec = out.files.entry(file.0).or_default();
        for page_no in 0..n {
            let pid = PageId::new(file, page_no);
            match store.read_page(pid) {
                Ok(Some((page, lsn))) => {
                    rec.pages.push(page);
                    rec.lsns.push(lsn);
                }
                Ok(None) => {
                    rec.pages.push(Page::new(page_bytes));
                    rec.lsns.push(0);
                }
                Err(StorageError::TornPage { .. }) => {
                    // Hold a placeholder; only a full-page image in the
                    // redo span can make this file openable.
                    torn.insert(pid.pack());
                    rec.pages.push(Page::new(page_bytes));
                    rec.lsns.push(0);
                }
                Err(e) => return Err(e),
            }
        }
    }

    let view = store.wal()?;
    out.report.wal_torn_tail = view.truncated;
    for (lsn, record) in view.entries {
        out.report.records_scanned += 1;
        match record {
            WalRecord::PageImage { page: pid, image } => {
                out.imaged.push(pid.pack());
                let rec = entry_for(&mut out.files, pid, page_bytes);
                let at = pid.page as usize;
                let cur = rec.lsns.get(at).copied().unwrap_or(0);
                let repaired = torn.remove(&pid.pack());
                if repaired {
                    out.report.pages_repaired += 1;
                }
                if lsn > cur || repaired {
                    let decoded = Page::decode_image(page_bytes, &image)?;
                    if let (Some(slot), Some(l)) = (rec.pages.get_mut(at), rec.lsns.get_mut(at)) {
                        *slot = decoded;
                        *l = lsn;
                    }
                    rec.dirty.push(pid.page);
                    out.report.records_applied += 1;
                } else {
                    out.report.records_skipped += 1;
                }
            }
            WalRecord::Insert {
                page: pid,
                slot,
                bytes,
            } => {
                if torn.contains(&pid.pack()) {
                    return Err(StorageError::TornPage {
                        file: pid.file,
                        page: pid.page,
                    });
                }
                let rec = entry_for(&mut out.files, pid, page_bytes);
                let at = pid.page as usize;
                let cur = rec.lsns.get(at).copied().unwrap_or(0);
                if lsn > cur {
                    if let (Some(p), Some(l)) = (rec.pages.get_mut(at), rec.lsns.get_mut(at)) {
                        p.apply_insert_at(slot, bytes);
                        *l = lsn;
                    }
                    rec.dirty.push(pid.page);
                    out.report.records_applied += 1;
                } else {
                    out.report.records_skipped += 1;
                }
            }
            WalRecord::Delete { page: pid, slot } => {
                if torn.contains(&pid.pack()) {
                    return Err(StorageError::TornPage {
                        file: pid.file,
                        page: pid.page,
                    });
                }
                let rec = entry_for(&mut out.files, pid, page_bytes);
                let at = pid.page as usize;
                let cur = rec.lsns.get(at).copied().unwrap_or(0);
                if lsn > cur {
                    if let (Some(p), Some(l)) = (rec.pages.get_mut(at), rec.lsns.get_mut(at)) {
                        p.apply_delete_at(slot);
                        *l = lsn;
                    }
                    rec.dirty.push(pid.page);
                    out.report.records_applied += 1;
                } else {
                    out.report.records_skipped += 1;
                }
            }
            WalRecord::Catalog { blob } => {
                out.catalog = Some(blob);
            }
            WalRecord::CheckpointBegin | WalRecord::CheckpointEnd { .. } => {}
        }
    }

    if let Some(key) = torn.first() {
        let pid = PageId::unpack(*key);
        return Err(StorageError::TornPage {
            file: pid.file,
            page: pid.page,
        });
    }
    for rec in out.files.values_mut() {
        rec.dirty.sort_unstable();
        rec.dirty.dedup();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{shared_pool, FileId};
    use crate::cost::{shared_meter, CostConfig};
    use crate::store::{MemPageStore, PageStore};

    fn setup() -> (SharedStore, SharedPool, Arc<DurableCtx>) {
        let store: SharedStore = Arc::new(MemPageStore::new(256));
        let pool = shared_pool(64, shared_meter(CostConfig::default()));
        let ctx = DurableCtx::new(store.clone(), pool.clone(), Vec::new(), Vec::new());
        (store, pool, ctx)
    }

    fn rec_bytes(x: u8) -> Vec<u8> {
        vec![x; 8]
    }

    #[test]
    fn first_touch_logs_image_then_deltas() {
        let (store, pool, ctx) = setup();
        let pid = PageId::new(FileId(0), 0);
        let mut page = Page::new(256);
        let s0 = page.insert(rec_bytes(1)).unwrap();
        ctx.log_insert(pid, s0, &rec_bytes(1), &page).unwrap();
        let s1 = page.insert(rec_bytes(2)).unwrap();
        ctx.log_insert(pid, s1, &rec_bytes(2), &page).unwrap();
        let view = store.wal().unwrap();
        assert!(matches!(
            view.entries.first(),
            Some((_, WalRecord::PageImage { .. }))
        ));
        assert!(matches!(
            view.entries.get(1),
            Some((_, WalRecord::Insert { slot: 1, .. }))
        ));
        assert!(pool.is_dirty(pid));
        assert_eq!(pool.dirty_len(), 1);
    }

    #[test]
    fn checkpoint_writes_dirty_pages_and_recovery_replays_the_rest() {
        let (store, pool, ctx) = setup();
        let pid = PageId::new(FileId(0), 0);
        let mut page = Page::new(256);
        let s0 = page.insert(rec_bytes(1)).unwrap();
        ctx.log_insert(pid, s0, &rec_bytes(1), &page).unwrap();

        let stats = ctx
            .checkpoint(b"CAT1", |p| (p == pid).then(|| page.clone()))
            .unwrap();
        assert_eq!(stats.pages_written, 1);
        assert_eq!(pool.dirty_len(), 0);
        assert_eq!(store.base_lsn(), stats.end_lsn);

        // Post-checkpoint delta: first touch again logs a fresh image.
        let s1 = page.insert(rec_bytes(2)).unwrap();
        ctx.log_insert(pid, s1, &rec_bytes(2), &page).unwrap();
        let s2 = page.insert(rec_bytes(3)).unwrap();
        ctx.log_insert(pid, s2, &rec_bytes(3), &page).unwrap();

        // "Crash": recover from the store alone.
        let recovered = recover(&store).unwrap();
        assert_eq!(recovered.catalog, Some(b"CAT1".to_vec()));
        let file = recovered.files.get(&0).unwrap();
        let got = file.pages.first().unwrap();
        assert_eq!(got.live_records(), 3);
        assert_eq!(got.slot_bytes(s2), Some(rec_bytes(3).as_slice()));
        assert_eq!(file.dirty, vec![0], "redo-touched pages are dirty");
        assert!(recovered.report.records_applied >= 2);
        assert!(!recovered.imaged.is_empty());
    }

    #[test]
    fn lsn_guard_skips_records_already_in_the_frame() {
        let (store, _pool, ctx) = setup();
        let pid = PageId::new(FileId(0), 0);
        let mut page = Page::new(256);
        let s0 = page.insert(rec_bytes(1)).unwrap();
        ctx.log_insert(pid, s0, &rec_bytes(1), &page).unwrap();
        // Simulate a checkpoint that wrote the frame but crashed before
        // sealing: the frame carries the record's LSN, the WAL keeps it.
        store.write_page(pid, &page, 1).unwrap();
        let recovered = recover(&store).unwrap();
        assert_eq!(recovered.report.records_skipped, 1);
        let file = recovered.files.get(&0).unwrap();
        assert_eq!(file.pages.first().unwrap().live_records(), 1);
        assert!(file.dirty.is_empty(), "nothing replayed, nothing dirty");
    }

    #[test]
    fn failed_checkpoint_remarks_dirty_pages() {
        #[derive(Debug)]
        struct FailingStore(MemPageStore);
        impl PageStore for FailingStore {
            fn is_durable(&self) -> bool {
                false
            }
            fn page_bytes(&self) -> usize {
                self.0.page_bytes()
            }
            fn max_image_len(&self) -> usize {
                usize::MAX
            }
            fn read_page(&self, p: PageId) -> Result<Option<(Page, Lsn)>, StorageError> {
                self.0.read_page(p)
            }
            fn write_page(&self, _: PageId, _: &Page, _: Lsn) -> Result<(), StorageError> {
                Err(StorageError::Io {
                    op: "write",
                    path: "mem".into(),
                    detail: "disk full".into(),
                })
            }
            fn file_pages(&self, f: FileId) -> Result<u32, StorageError> {
                self.0.file_pages(f)
            }
            fn files(&self) -> Result<Vec<FileId>, StorageError> {
                self.0.files()
            }
            fn append(&self, r: &WalRecord) -> Result<Lsn, StorageError> {
                self.0.append(r)
            }
            fn wal(&self) -> Result<crate::wal::WalView, StorageError> {
                self.0.wal()
            }
            fn base_lsn(&self) -> Lsn {
                self.0.base_lsn()
            }
            fn read_catalog(&self) -> Result<Option<Vec<u8>>, StorageError> {
                self.0.read_catalog()
            }
            fn checkpoint_done(&self, c: &[u8], e: Lsn) -> Result<(), StorageError> {
                self.0.checkpoint_done(c, e)
            }
            fn sync(&self) -> Result<(), StorageError> {
                self.0.sync()
            }
            fn stats(&self) -> crate::store::StoreStats {
                self.0.stats()
            }
        }

        let store: SharedStore = Arc::new(FailingStore(MemPageStore::new(256)));
        let pool = shared_pool(64, shared_meter(CostConfig::default()));
        let ctx = DurableCtx::new(store, pool.clone(), Vec::new(), Vec::new());
        let pid = PageId::new(FileId(0), 0);
        let mut page = Page::new(256);
        let s0 = page.insert(rec_bytes(1)).unwrap();
        ctx.log_insert(pid, s0, &rec_bytes(1), &page).unwrap();
        assert!(ctx.checkpoint(b"C", |_| Some(page.clone())).is_err());
        assert!(pool.is_dirty(pid), "failed checkpoint re-marks its worklist");
    }
}
