//! Per-session deferred touch-and-charge buffers backing the lock-free
//! buffer-pool hit path.
//!
//! A validated optimistic hit in [`crate::BufferPool::access`] must not
//! take the shard lock, so the two side effects a hit used to perform
//! under that lock — bumping the pool-wide hit tally and splicing the page
//! to the MRU end of the shard's LRU list — are *deferred* here instead:
//! each OS thread keeps one small buffer per pool recording the hit count
//! and the touched keys in access order. The buffer is absorbed at batch
//! boundaries (`TOUCH_CAP` touches, any locked pool entry point, or a
//! counter read) by [`crate::BufferPool::flush_session`], which re-locks
//! the shards and replays the promotions.
//!
//! # The drop guard
//!
//! Deferred *counters* must be absorbed on **every** exit path — a pool's
//! `hits + misses == accesses` conservation property is asserted across
//! thread joins — so each buffer's pending count lives in a
//! [`PendingTally`], whose `Drop` impl absorbs it. Thread teardown drops
//! the thread-local registry, which drops each `PoolLocal`, which drops
//! its tally, which lands the count in the pool-shared
//! [`DeferredCounters`] kept alive by an `Arc`. Deferred *promotions* are
//! dropped at teardown: losing a recency splice is the documented
//! "equivalent under deferred promotion" relaxation (see the invariant
//! note in `buffer.rs`), while losing a count would be a real bug.

use std::cell::RefCell;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::sync::{AtomicWord, RealSync, SyncFacade};

/// Touches buffered per pool before the recording call asks its caller to
/// flush. Sized so a flush amortizes one lock acquisition over a block of
/// hits without letting promotions lag far behind true LRU order.
pub(crate) const TOUCH_CAP: usize = 128;

/// Pool-shared absorption target for deferred per-thread hit tallies.
///
/// Kept behind an `Arc` (the pool holds one, every thread-local buffer
/// holds a clone) so a thread exiting *after* the pool was dropped still
/// has somewhere safe to absorb its pending count.
///
/// Generic over the [`SyncFacade`] so the absorption protocol runs under
/// the `rdb-check` interleaving checker unchanged; production code uses
/// the default [`RealSync`] world.
#[derive(Debug)]
pub struct DeferredCounters<S: SyncFacade = RealSync> {
    /// Hits classified on the optimistic lock-free path.
    hits: S::Word,
}

impl<S: SyncFacade> Default for DeferredCounters<S> {
    fn default() -> Self {
        DeferredCounters {
            hits: S::Word::new(0),
        }
    }
}

impl<S: SyncFacade> DeferredCounters<S> {
    /// Absorbs `n` deferred hits into the shared tally.
    pub fn add(&self, n: u64) {
        // Relaxed: an independent monotonic tally, same argument as the
        // CostMeter counters — readers only sum it.
        self.hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Total hits absorbed so far.
    pub fn total(&self) -> u64 {
        // Relaxed: monotonic tally; readers only sum it.
        self.hits.load(Ordering::Relaxed)
    }
}

/// One thread's pending hit count for one pool, with the drop guard that
/// makes the conservation property (`hits + misses == accesses`) hold on
/// **every** exit path: if the tally is alive, its count either sits in
/// `pending` or has already landed in the shared [`DeferredCounters`];
/// dropping it absorbs the remainder.
///
/// This is the protocol piece checker harness (c) exhausts: threads
/// recording hits and exiting at arbitrary points must never lose a
/// count.
#[derive(Debug)]
pub struct PendingTally<S: SyncFacade = RealSync> {
    /// Absorption target, shared with the owning pool.
    target: Arc<DeferredCounters<S>>,
    /// Hits recorded since the last absorption.
    pending: u64,
}

impl<S: SyncFacade> PendingTally<S> {
    /// A fresh tally absorbing into `target`.
    pub fn new(target: Arc<DeferredCounters<S>>) -> Self {
        PendingTally { target, pending: 0 }
    }

    /// Records one deferred hit.
    pub fn record(&mut self) {
        self.pending += 1;
    }

    /// Flushes the pending count into the shared target now.
    pub fn absorb(&mut self) {
        if self.pending > 0 {
            self.target.add(self.pending);
            self.pending = 0;
        }
    }
}

/// The drop guard: guarantees the deferred counters are absorbed on every
/// exit path, including thread teardown and pool drop. Do not remove — the
/// lint policy requires a `Drop` impl wherever per-session deferred
/// counters live.
impl<S: SyncFacade> Drop for PendingTally<S> {
    fn drop(&mut self) {
        self.absorb();
    }
}

/// Outcome of recording an optimistic hit in the calling thread's buffer.
pub(crate) enum Recorded {
    /// Buffered; nothing else to do.
    Ok,
    /// Buffered, and the buffer reached [`TOUCH_CAP`] — the caller must
    /// flush before the next deferred hit.
    NeedsFlush,
    /// Thread-local storage is already torn down (we are inside thread
    /// exit); the caller must fall back to the locked path.
    Unavailable,
}

/// One thread's deferred state for one pool. Counter absorption on every
/// exit path is delegated to the [`PendingTally`] drop guard.
struct PoolLocal {
    /// [`crate::BufferPool`] instance id this buffer belongs to.
    pool: u64,
    /// Pending hit count plus its drop guard.
    tally: PendingTally,
    /// Touched `(key, slot)` pairs in access order, replayed as LRU
    /// promotions on flush. `slot` is where the mirror probe saw the key
    /// at hit time; replay verifies it before splicing so a stale slot
    /// (evicted and re-faulted elsewhere) degrades to a fresh probe, never
    /// to a wrong promotion.
    touches: Vec<(u64, u32)>,
}

thread_local! {
    /// This thread's deferred buffers, one per pool it has hit optimistically.
    /// Entries are removed (and their guards run) when the pool is dropped
    /// on this thread; remaining entries drain at thread exit.
    static SESSIONS: RefCell<Vec<PoolLocal>> = const { RefCell::new(Vec::new()) };
}

/// Records one validated optimistic hit on `pool` in the calling thread's
/// buffer. `counters` is the pool's shared absorption target, cloned into
/// the buffer on first use. `slot` is the mirror slot the probe validated,
/// kept alongside the key so the flush can splice without re-probing.
pub(crate) fn record_hit(
    pool: u64,
    counters: &Arc<DeferredCounters>,
    key: u64,
    slot: u32,
) -> Recorded {
    SESSIONS
        .try_with(|cell| {
            let mut sessions = cell.borrow_mut();
            let idx = match sessions.iter().position(|s| s.pool == pool) {
                Some(i) => i,
                None => {
                    sessions.push(PoolLocal {
                        pool,
                        tally: PendingTally::new(Arc::clone(counters)),
                        touches: Vec::with_capacity(TOUCH_CAP),
                    });
                    sessions.len() - 1
                }
            };
            // Keep the hot pool in front so the position scan above is one
            // compare in steady state.
            if idx != 0 {
                sessions.swap(0, idx);
            }
            let s = &mut sessions[0];
            s.tally.record();
            s.touches.push((key, slot));
            if s.touches.len() >= TOUCH_CAP {
                Recorded::NeedsFlush
            } else {
                Recorded::Ok
            }
        })
        .unwrap_or(Recorded::Unavailable)
}

/// Drains the calling thread's buffer for `pool`: absorbs the pending hit
/// tally and hands the recorded `(key, slot)` touches — in access order —
/// to `apply`, which re-locks shards and replays the LRU promotions. The
/// thread-local borrow is released before `apply` runs, so `apply` may
/// take pool locks freely. No-op if the thread has no buffer for `pool`.
///
/// The touch Vec is *stolen* (swapped for a fresh one) rather than copied
/// out through a stack buffer: every locked pool entry point calls this,
/// so the nothing-pending case — every miss in a miss-heavy workload —
/// must cost one TLS lookup and a length check, not a [`TOUCH_CAP`]-sized
/// buffer initialization. The replacement Vec is only allocated when
/// there was something to steal.
pub(crate) fn drain(pool: u64, mut apply: impl FnMut(&[(u64, u32)])) {
    let mut pending = Vec::new();
    let _ = SESSIONS.try_with(|cell| {
        let mut sessions = cell.borrow_mut();
        if let Some(s) = sessions.iter_mut().find(|s| s.pool == pool) {
            s.tally.absorb();
            if !s.touches.is_empty() {
                pending = std::mem::replace(&mut s.touches, Vec::with_capacity(TOUCH_CAP));
            }
        }
    });
    if !pending.is_empty() {
        apply(&pending);
    }
}

/// Removes the calling thread's buffer for `pool` (the pool is being
/// dropped). The entry's drop guard absorbs any pending counters; pending
/// promotions are meaningless for a dead pool and are discarded. Buffers
/// held by *other* threads stay until those threads exit — their counter
/// absorption is still safe via the `Arc`'d [`DeferredCounters`].
pub(crate) fn forget(pool: u64) {
    let _ = SESSIONS.try_with(|cell| {
        cell.borrow_mut().retain(|s| s.pool != pool);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_drain_preserve_order_and_counts() {
        let counters = Arc::new(DeferredCounters::default());
        for k in 0..5u64 {
            assert!(matches!(
                record_hit(9001, &counters, k, k as u32 + 10),
                Recorded::Ok
            ));
        }
        let mut seen = Vec::new();
        drain(9001, |keys| seen.extend_from_slice(keys));
        assert_eq!(seen, vec![(0, 10), (1, 11), (2, 12), (3, 13), (4, 14)]);
        assert_eq!(counters.total(), 5);
        // Second drain is a no-op.
        drain(9001, |_| panic!("buffer should be empty"));
        forget(9001);
    }

    #[test]
    fn buffer_full_requests_flush() {
        let counters = Arc::new(DeferredCounters::default());
        for k in 0..TOUCH_CAP as u64 - 1 {
            assert!(matches!(record_hit(9002, &counters, k, 0), Recorded::Ok));
        }
        assert!(matches!(
            record_hit(9002, &counters, TOUCH_CAP as u64 - 1, 0),
            Recorded::NeedsFlush
        ));
        forget(9002);
        assert_eq!(
            counters.total(),
            TOUCH_CAP as u64,
            "forget's drop guard absorbs the pending tally"
        );
    }

    #[test]
    fn thread_exit_absorbs_pending_counters() {
        let counters = Arc::new(DeferredCounters::default());
        let c = Arc::clone(&counters);
        std::thread::spawn(move || {
            for k in 0..7u64 {
                record_hit(9003, &c, k, 0);
            }
            // No flush: the thread-local drop guard must absorb.
        })
        .join()
        .expect("worker thread");
        assert_eq!(counters.total(), 7);
    }
}
