//! The `Sync` facade: the few atomic operations the lock-free protocols
//! are written against.
//!
//! The storage crate has three concurrency protocols whose correctness is
//! argued rather than typechecked: the seqlock [`crate::mirror::ProbeMirror`],
//! the deferred touch-counter absorption in [`crate::touch`], and the
//! WAL-append/checkpoint LSN handoff in [`crate::lsn::WalTail`]. Each is
//! generic over a [`SyncFacade`] so the *same* protocol code runs in two
//! worlds:
//!
//! * [`RealSync`] — thin `#[inline]` wrappers over `std::sync::atomic`,
//!   the production instantiation. Every method is a direct delegation,
//!   so release codegen is identical to writing the std calls by hand
//!   (the hotpath bench gate holds this to "zero cost").
//! * `ModelSync` (in the `rdb-check` crate) — modeled atomics recorded by
//!   an exhaustive interleaving checker, which explores every schedule of
//!   bounded two/three-thread programs over the protocol and every
//!   admissible stale value a relaxed load may return.
//!
//! Protocol modules must route **all** loads/stores of protocol fields
//! through this facade; lint rule `S003` rejects direct atomic access to
//! mirror/meter fields anywhere else.

use std::fmt::Debug;
use std::sync::atomic::{AtomicU64, Ordering};

/// One 64-bit atomic word as seen by a protocol: the subset of the
/// `std::sync::atomic::AtomicU64` API the storage protocols actually use.
///
/// Orderings are the std [`Ordering`] enum in both worlds; the model
/// implementation interprets them with an explicit per-word modification
/// order instead of deferring to the hardware.
pub trait AtomicWord: Debug + Send + Sync + 'static {
    /// Creates a word holding `value`.
    fn new(value: u64) -> Self;
    /// Atomic load.
    fn load(&self, order: Ordering) -> u64;
    /// Atomic store.
    fn store(&self, value: u64, order: Ordering);
    /// Atomic add; returns the previous value.
    fn fetch_add(&self, delta: u64, order: Ordering) -> u64;
    /// Atomic max; returns the previous value.
    fn fetch_max(&self, value: u64, order: Ordering) -> u64;
    /// Atomic compare-exchange; `Ok(previous)` on success, `Err(actual)`
    /// on failure.
    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64>;
}

/// The world a protocol runs in: real atomics or the model checker.
///
/// Selected by generic parameter (defaulting to [`RealSync`]) so the
/// production build monomorphizes straight to std atomics.
pub trait SyncFacade: Debug + Send + Sync + 'static {
    /// The 64-bit atomic word type of this world.
    type Word: AtomicWord;
    /// Standalone memory fence.
    fn fence(order: Ordering);
}

/// The production world: std atomics, inlined.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealSync;

impl AtomicWord for AtomicU64 {
    #[inline(always)]
    fn new(value: u64) -> Self {
        AtomicU64::new(value)
    }

    #[inline(always)]
    fn load(&self, order: Ordering) -> u64 {
        AtomicU64::load(self, order)
    }

    #[inline(always)]
    fn store(&self, value: u64, order: Ordering) {
        AtomicU64::store(self, value, order)
    }

    #[inline(always)]
    fn fetch_add(&self, delta: u64, order: Ordering) -> u64 {
        AtomicU64::fetch_add(self, delta, order)
    }

    #[inline(always)]
    fn fetch_max(&self, value: u64, order: Ordering) -> u64 {
        AtomicU64::fetch_max(self, value, order)
    }

    #[inline(always)]
    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        AtomicU64::compare_exchange(self, current, new, success, failure)
    }
}

impl SyncFacade for RealSync {
    type Word = AtomicU64;

    #[inline(always)]
    fn fence(order: Ordering) {
        std::sync::atomic::fence(order)
    }
}
