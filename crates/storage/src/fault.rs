//! Deterministic storage-fault injection.
//!
//! The simulation harness (`rdb-simtest`) needs to prove that every scan
//! strategy surfaces storage errors cleanly instead of panicking or
//! silently corrupting partial results. A [`FaultPolicy`] attached to a
//! [`crate::BufferPool`] makes the pool's *data read path* fallible: each
//! read observed by the policy may fail with
//! [`crate::StorageError::InjectedFault`], either with a seeded
//! probability or deterministically from the Nth observed read onward.
//!
//! The policy deliberately lives below every data structure (heap fetches
//! and scans, index range scans, temp-table scan-backs all route through
//! the pool), so one knob covers the whole engine. Planning/metadata reads
//! (range estimation, catalog descents) use the pool's infallible
//! [`crate::BufferPool::access`] and are never failed — a real system pins
//! those pages, and failing them would only test the harness, not the
//! retrieval strategies.
//!
//! Determinism: the per-read coin flips come from an inline splitmix64
//! generator owned by the policy, so a `(seed, probability)` pair replays
//! the exact same fault sequence for the exact same access sequence — the
//! property the harness's `--replay <seed>` workflow depends on.

use crate::buffer::{FileId, PageId};

/// Splitmix64 step — small, seedable, and good enough for fault coin flips
/// (this crate intentionally has no RNG dependency).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// When a read observed by the policy should fail.
#[derive(Debug, Clone, Copy, PartialEq)]
enum FaultMode {
    /// Fail each observed read independently with this probability.
    Random {
        /// Probability in `[0, 1]`.
        probability: f64,
    },
    /// Fail every observed read from the `nth` one onward (0-based), for
    /// deterministic "the disk died mid-scan" scenarios.
    FromNth {
        /// First observed read (0-based) that fails.
        nth: u64,
    },
}

/// Deterministic read-fault injector for a [`crate::BufferPool`].
///
/// The policy only sees reads issued through the pool's fallible
/// [`crate::BufferPool::try_access`]/[`crate::BufferPool::try_access_run`]
/// path; an optional [`FileId`] scope narrows it further (e.g. "only this
/// index's file dies"). Counters record how many reads were observed and
/// how many faults fired, so tests can assert the injector actually
/// exercised the path under test.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPolicy {
    mode: FaultMode,
    rng: u64,
    scope: Option<FileId>,
    reads_observed: u64,
    faults_injected: u64,
}

impl FaultPolicy {
    /// Fails each observed read with `probability`, deterministically from
    /// `seed`.
    pub fn random(seed: u64, probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "fault probability must be in [0, 1]"
        );
        FaultPolicy {
            mode: FaultMode::Random { probability },
            rng: seed,
            scope: None,
            reads_observed: 0,
            faults_injected: 0,
        }
    }

    /// Fails every observed read from the `nth` one (0-based) onward.
    pub fn fail_from_nth(nth: u64) -> Self {
        FaultPolicy {
            mode: FaultMode::FromNth { nth },
            rng: 0,
            scope: None,
            reads_observed: 0,
            faults_injected: 0,
        }
    }

    /// Restricts the policy to reads of `file`; reads of other files are
    /// neither failed nor counted.
    pub fn scoped_to(mut self, file: FileId) -> Self {
        self.scope = Some(file);
        self
    }

    /// Reads the policy has observed (within scope).
    pub fn reads_observed(&self) -> u64 {
        self.reads_observed
    }

    /// Faults the policy has injected.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// Decides the fate of one read. Called by the pool's fallible read
    /// path for every page touch.
    pub(crate) fn should_fail(&mut self, page: PageId) -> bool {
        if let Some(scope) = self.scope {
            if page.file != scope {
                return false;
            }
        }
        let n = self.reads_observed;
        self.reads_observed += 1;
        let fail = match self.mode {
            FaultMode::Random { probability } => {
                if probability <= 0.0 {
                    false
                } else if probability >= 1.0 {
                    true
                } else {
                    // 53-bit uniform in [0, 1), the usual f64 construction.
                    let u = (splitmix64(&mut self.rng) >> 11) as f64 / (1u64 << 53) as f64;
                    u < probability
                }
            }
            FaultMode::FromNth { nth } => n >= nth,
        };
        if fail {
            self.faults_injected += 1;
        }
        fail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(file: u32, page: u32) -> PageId {
        PageId::new(FileId(file), page)
    }

    #[test]
    fn probability_zero_never_fails_one_always_fails() {
        let mut never = FaultPolicy::random(1, 0.0);
        let mut always = FaultPolicy::random(1, 1.0);
        for i in 0..100 {
            assert!(!never.should_fail(pid(0, i)));
            assert!(always.should_fail(pid(0, i)));
        }
        assert_eq!(never.faults_injected(), 0);
        assert_eq!(always.faults_injected(), 100);
        assert_eq!(always.reads_observed(), 100);
    }

    #[test]
    fn same_seed_replays_same_fault_sequence() {
        let run = |seed| {
            let mut p = FaultPolicy::random(seed, 0.1);
            (0..1000).map(|i| p.should_fail(pid(0, i))).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds must differ");
    }

    #[test]
    fn random_rate_is_roughly_honoured() {
        let mut p = FaultPolicy::random(7, 0.1);
        let mut faults = 0;
        for i in 0..10_000 {
            if p.should_fail(pid(0, i)) {
                faults += 1;
            }
        }
        assert!((800..1200).contains(&faults), "{faults} faults at p=0.1");
    }

    #[test]
    fn fail_from_nth_is_exact() {
        let mut p = FaultPolicy::fail_from_nth(3);
        let fates: Vec<bool> = (0..6).map(|i| p.should_fail(pid(0, i))).collect();
        assert_eq!(fates, vec![false, false, false, true, true, true]);
    }

    #[test]
    fn scope_ignores_other_files() {
        let mut p = FaultPolicy::fail_from_nth(0).scoped_to(FileId(5));
        assert!(!p.should_fail(pid(4, 0)), "out of scope");
        assert_eq!(p.reads_observed(), 0, "out-of-scope reads are not counted");
        assert!(p.should_fail(pid(5, 0)));
        assert_eq!(p.reads_observed(), 1);
    }
}
