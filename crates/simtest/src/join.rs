//! Multi-table simulation: seeded two-table worlds whose join queries run
//! through the SQL layer's join competition and are differenced against a
//! naive nested-loop shadow oracle.
//!
//! One seed determines both tables' shapes, the key distribution linking
//! them (PK/FK-correlated, power-law skewed, disjoint, or NULL-heavy), the
//! index set, and the query batch. Every query runs four ways:
//!
//! 1. **Clean differential** — the SQL result's rows must bit-match the
//!    oracle's (multiset equality unlimited, containment + length under a
//!    LIMIT, sorted-prefix semantics under ORDER BY, exact count for
//!    `count(*)`).
//! 2. **Competition contract** — re-raced at the core layer: the dynamic
//!    join's cost must stay within the configured multiple of the best
//!    *static* join plan (every feasible method run alone, plan-committed),
//!    and every killed/losing candidate's partial pairs must be a subset
//!    of the true join result (partial work is never wrong, only
//!    incomplete).
//! 3. **Prepared replay** — the same statement through the plan cache must
//!    deliver the same rows as ad-hoc execution.
//! 4. **Fault campaign** — with random storage faults armed, a run either
//!    fails cleanly with the injected fault or returns exactly the right
//!    rows; a clean re-run afterwards proves no shared state was damaged.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdb_core::{run_join, run_join_method, JoinConfig, JoinMethod, JoinOp, JoinRequest, JoinSide, SideId, Tracer};
use rdb_query::prelude::*;
use rdb_storage::{FaultPolicy, StorageError};

use crate::failure::SimFailure;
use crate::harness::SimConfig;

/// How the right table's FK column relates to the left table's ID column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyMode {
    /// Every FK hits an existing ID (uniform) — the classic PK/FK pair.
    Correlated,
    /// FKs follow a power law: a few parents own most children.
    Skewed,
    /// FK domain is disjoint from the ID domain — equi-joins come up empty.
    Disjoint,
    /// Roughly half the FKs are NULL (and NULL never matches).
    NullHeavy,
}

/// One generated two-table retrieval, carried in both forms: the SQL text
/// the engine executes and the structured shape the oracle evaluates.
#[derive(Debug, Clone)]
pub struct JoinQuery {
    /// The SQL statement.
    pub sql: String,
    /// The driving comparison between L.ID and R.FK.
    pub op: JoinOp,
    /// Residual on L.K: inclusive bounds.
    pub l_res: Option<(i64, i64)>,
    /// Residual on R.W: inclusive bounds.
    pub r_res: Option<(i64, i64)>,
    /// Projection column names (empty means `count(*)`).
    pub projection: Vec<String>,
    /// ORDER BY target (always R.W when present).
    pub order_by: bool,
    /// LIMIT.
    pub limit: Option<usize>,
    /// The query is a `count(*)`.
    pub count_star: bool,
}

fn op_symbol(op: JoinOp) -> &'static str {
    match op {
        JoinOp::Eq => "=",
        JoinOp::Ne => "<>",
        JoinOp::Lt => "<",
        JoinOp::Le => "<=",
        JoinOp::Gt => ">",
        JoinOp::Ge => ">=",
    }
}

fn in_range(v: &Value, bounds: Option<(i64, i64)>) -> bool {
    match bounds {
        None => true,
        Some((lo, hi)) => match v {
            Value::Int(i) => *i >= lo && *i <= hi,
            _ => false,
        },
    }
}

/// A fully materialized two-table world: the database under test, shadow
/// copies of both tables, and the query batch — all derived from `seed`.
pub struct JoinScenario {
    /// The generating seed.
    pub seed: u64,
    /// The engine under test.
    pub db: Db,
    /// The key-distribution mode this seed drew.
    pub mode: KeyMode,
    /// Shadow copy of L (ID, K, V) in insertion order.
    pub left_shadow: Vec<Vec<Value>>,
    /// Shadow copy of R (FK, W) in insertion order.
    pub right_shadow: Vec<Vec<Value>>,
    /// The generated join queries.
    pub queries: Vec<JoinQuery>,
}

impl JoinScenario {
    /// Generates the scenario for `seed`. Same seed, same world.
    pub fn generate(seed: u64) -> JoinScenario {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed);
        let n_l = rng.gen_range(60usize..=220);
        let n_r = rng.gen_range(80usize..=400);
        let k_dom = rng.gen_range(4i64..=12);
        let w_dom = rng.gen_range(10i64..=60);
        let mode = match rng.gen_range(0u32..10) {
            0..=4 => KeyMode::Correlated,
            5..=6 => KeyMode::Skewed,
            7 => KeyMode::Disjoint,
            _ => KeyMode::NullHeavy,
        };

        let mut db = Db::builder().page_bytes(1024).open().unwrap();
        db.create_table(
            "L",
            Schema::new(vec![
                Column::new("ID", ValueType::Int),
                Column::new("K", ValueType::Int),
                Column::new("V", ValueType::Int),
            ]),
        )
        .expect("fresh catalog");
        db.create_table(
            "R",
            Schema::new(vec![
                Column::nullable("FK", ValueType::Int),
                Column::new("W", ValueType::Int),
            ]),
        )
        .expect("fresh catalog");

        let mut left_shadow = Vec::with_capacity(n_l);
        for i in 0..n_l {
            let row = vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..k_dom)),
                Value::Int(rng.gen_range(0..1000)),
            ];
            db.insert("L", row.clone()).expect("valid row");
            left_shadow.push(row);
        }
        let mut right_shadow = Vec::with_capacity(n_r);
        for _ in 0..n_r {
            let fk = match mode {
                KeyMode::Correlated => Value::Int(rng.gen_range(0..n_l as i64)),
                KeyMode::Skewed => {
                    // Power law: squaring a uniform [0,1) draw piles the
                    // mass onto the low IDs.
                    let u: f64 = rng.gen_range(0.0..1.0);
                    Value::Int((u * u * n_l as f64) as i64)
                }
                KeyMode::Disjoint => Value::Int(rng.gen_range(2 * n_l as i64..3 * n_l as i64)),
                KeyMode::NullHeavy => {
                    if rng.gen_bool(0.5) {
                        Value::Null
                    } else {
                        Value::Int(rng.gen_range(0..n_l as i64))
                    }
                }
            };
            let row = vec![fk, Value::Int(rng.gen_range(0..w_dom))];
            db.insert("R", row.clone()).expect("valid row");
            right_shadow.push(row);
        }

        // Index set: L.ID always (the PK side); R.FK and R.W by coin toss,
        // so the feasible method set varies per seed (no FK index kills
        // the merge join and one INLJ orientation).
        db.create_index("IDX_L_ID", "L", &["ID"]).expect("valid");
        if rng.gen_bool(0.7) {
            db.create_index("IDX_R_FK", "R", &["FK"]).expect("valid");
        }
        if rng.gen_bool(0.4) {
            db.create_index("IDX_R_W", "R", &["W"]).expect("valid");
        }

        let queries = gen_queries(&mut rng, k_dom, w_dom);
        JoinScenario {
            seed,
            db,
            mode,
            left_shadow,
            right_shadow,
            queries,
        }
    }

    /// The oracle: a naive nested loop over the shadow rows — no indexes,
    /// no cost model, no buffer pool. Returns the projected result rows in
    /// loop order.
    pub fn oracle_rows(&self, q: &JoinQuery) -> Vec<Vec<Value>> {
        let mut rows = Vec::new();
        for l in &self.left_shadow {
            if !in_range(&l[1], q.l_res) {
                continue;
            }
            for r in &self.right_shadow {
                if !in_range(&r[1], q.r_res) {
                    continue;
                }
                if !q.op.eval(&l[0], &r[0]) {
                    continue;
                }
                rows.push(project(l, r, &q.projection));
            }
        }
        rows
    }
}

fn project(l: &[Value], r: &[Value], projection: &[String]) -> Vec<Value> {
    projection
        .iter()
        .map(|c| match c.as_str() {
            "ID" => l[0].clone(),
            "K" => l[1].clone(),
            "V" => l[2].clone(),
            "FK" => r[0].clone(),
            "W" => r[1].clone(),
            other => unreachable!("projection {other} not in either schema"),
        })
        .collect()
}

fn gen_queries(rng: &mut StdRng, k_dom: i64, w_dom: i64) -> Vec<JoinQuery> {
    let n = 5;
    let mut queries = Vec::with_capacity(n);
    for _ in 0..n {
        // Mostly equi-joins; inequality joins get tight residuals so the
        // pair count stays civil.
        let op = match rng.gen_range(0u32..10) {
            0..=6 => JoinOp::Eq,
            7 => JoinOp::Ne,
            8 => JoinOp::Lt,
            _ => JoinOp::Gt,
        };
        let tight = op != JoinOp::Eq;
        let l_res = if tight || rng.gen_bool(0.5) {
            let v = rng.gen_range(0..k_dom);
            Some(if tight { (v, v) } else { (v, v + k_dom / 2) })
        } else {
            None
        };
        let r_res = if tight || rng.gen_bool(0.5) {
            let v = rng.gen_range(0..w_dom);
            let width = if tight { 2 } else { w_dom / 3 };
            Some((v, v + width))
        } else {
            None
        };
        let count_star = rng.gen_bool(0.15);
        let order_by = !count_star && rng.gen_bool(0.35);
        let limit = if !count_star && rng.gen_bool(0.3) {
            Some(rng.gen_range(1usize..=7))
        } else {
            None
        };
        let projection: Vec<String> = if count_star {
            Vec::new()
        } else if rng.gen_bool(0.5) {
            vec!["ID".into(), "K".into(), "W".into()]
        } else {
            vec!["ID".into(), "FK".into(), "W".into()]
        };

        let mut sql = if count_star {
            "select count(*) from L, R where ".to_string()
        } else {
            format!("select {} from L, R where ", projection.join(", "))
        };
        sql.push_str(&format!("ID {} FK", op_symbol(op)));
        if let Some((lo, hi)) = l_res {
            sql.push_str(&format!(" and K between {lo} and {hi}"));
        }
        if let Some((lo, hi)) = r_res {
            sql.push_str(&format!(" and W between {lo} and {hi}"));
        }
        if order_by {
            sql.push_str(" order by W");
        }
        if let Some(limit) = limit {
            sql.push_str(&format!(" limit {limit}"));
        }
        sql.push(';');
        queries.push(JoinQuery {
            sql,
            op,
            l_res,
            r_res,
            projection,
            order_by,
            limit,
            count_star,
        });
    }
    queries
}

/// What one seed's join campaign did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JoinReport {
    /// The seed.
    pub seed: u64,
    /// Rows in L.
    pub left_rows: usize,
    /// Rows in R.
    pub right_rows: usize,
    /// Join queries executed.
    pub queries: usize,
    /// Oracle comparisons performed (clean + prepared + post-fault).
    pub checks: u64,
    /// Core-level cost-bound checks (dynamic vs best static join plan).
    pub cost_checks: u64,
    /// Killed/losing candidates whose partial pairs passed the
    /// containment contract.
    pub containment_checks: u64,
    /// SQL runs executed with a fault policy armed.
    pub fault_runs: u64,
    /// Faulted runs that surfaced a clean injected-fault error.
    pub fault_errors: u64,
    /// Faulted runs that completed with a provably exact result.
    pub fault_ok: u64,
}

/// Differences one SQL result against the oracle, honouring count(*),
/// LIMIT, and ORDER BY semantics.
fn check_rows(
    q: &JoinQuery,
    got: &[Vec<Value>],
    oracle: &[Vec<Value>],
    what: &str,
) -> Result<(), SimFailure> {
    if q.count_star {
        let want = vec![vec![Value::Int(oracle.len() as i64)]];
        if got != want {
            return Err(SimFailure::row_set(format!(
                "{what}: count(*) returned {got:?}, oracle says {}",
                oracle.len()
            )));
        }
        return Ok(());
    }
    let expected_len = match q.limit {
        Some(limit) => oracle.len().min(limit),
        None => oracle.len(),
    };
    if got.len() != expected_len {
        return Err(SimFailure::row_set(format!(
            "{what}: {} rows delivered, oracle expects {expected_len} (of {} total)",
            got.len(),
            oracle.len()
        )));
    }
    if q.order_by {
        // W is the last projected column in every generated projection.
        let w = q.projection.len() - 1;
        let keys: Vec<i64> = got.iter().map(|row| row[w].as_i64().unwrap_or(i64::MIN)).collect();
        if !keys.windows(2).all(|p| p[0] <= p[1]) {
            return Err(SimFailure::order(format!(
                "{what}: ORDER BY W delivered unsorted keys {keys:?}"
            )));
        }
        // The delivered key multiset must be the sorted oracle prefix
        // (ties make the row choice free, the key choice not).
        let mut want: Vec<i64> = oracle
            .iter()
            .map(|row| row[w].as_i64().unwrap_or(i64::MIN))
            .collect();
        want.sort_unstable();
        want.truncate(expected_len);
        if keys != want {
            return Err(SimFailure::row_set(format!(
                "{what}: ORDER BY prefix keys {keys:?} != oracle prefix {want:?}"
            )));
        }
    }
    // Containment with multiplicity: every delivered row must consume one
    // oracle row. Without a limit the lengths match, so this is full
    // multiset equality — the bit-match.
    let mut pool: Vec<Option<String>> = oracle.iter().map(|r| Some(format!("{r:?}"))).collect();
    for row in got {
        let key = format!("{row:?}");
        match pool.iter_mut().find(|s| s.as_deref() == Some(key.as_str())) {
            Some(slot) => *slot = None,
            None => {
                return Err(SimFailure::row_set(format!(
                    "{what}: delivered row {row:?} not in (remaining) oracle multiset"
                )));
            }
        }
    }
    Ok(())
}

/// Builds the core-layer request mirroring `q` and hands it to `f` — the
/// request borrows the tables, so it cannot outlive this call.
fn with_core_request<T>(
    scenario: &JoinScenario,
    q: &JoinQuery,
    f: impl FnOnce(&JoinRequest<'_>) -> T,
) -> T {
    let db = &scenario.db;
    let left = db.heap("L").expect("table L exists");
    let right = db.heap("R").expect("table R exists");
    let l_res = q.l_res;
    let r_res = q.r_res;
    let l_kept = scenario
        .left_shadow
        .iter()
        .filter(|row| in_range(&row[1], l_res))
        .count();
    let r_kept = scenario
        .right_shadow
        .iter()
        .filter(|row| in_range(&row[1], r_res))
        .count();
    let mut lside = JoinSide::new(left).on_column(0).with_residual(
        Arc::new(move |r: &rdb_storage::Record| in_range(&r[1], l_res)),
        l_kept as f64,
    );
    let mut rside = JoinSide::new(right).on_column(0).with_residual(
        Arc::new(move |r: &rdb_storage::Record| in_range(&r[1], r_res)),
        r_kept as f64,
    );
    for tree in db.indexes("L").expect("table L exists") {
        if tree.key_columns().first() == Some(&0) {
            lside = lside.with_index(tree);
        }
    }
    for tree in db.indexes("R").expect("table R exists") {
        if tree.key_columns().first() == Some(&0) {
            rside = rside.with_index(tree);
        }
    }
    let req = JoinRequest::new(lside, rside, q.op, db.cost().clone());
    f(&req)
}

/// Core-layer competition contract: dynamic cost vs best static join plan,
/// plus the killed-candidate containment check.
fn competition_contract(
    scenario: &JoinScenario,
    q: &JoinQuery,
    cfg: &SimConfig,
    report: &mut JoinReport,
) -> Result<(), SimFailure> {
    let db = &scenario.db;
    // True pair set at the RID level is unavailable here (the oracle is
    // value-level), so the containment contract verifies each partial
    // pair against the predicates directly — membership in the true
    // result is exactly "satisfies every predicate".
    let verify_pair = |l: &rdb_storage::Record, r: &rdb_storage::Record| {
        q.op.eval(&l[0], &r[0]) && in_range(&l[1], q.l_res) && in_range(&r[1], q.r_res)
    };

    db.clear_cache();
    let dynamic = with_core_request(scenario, q, |req| {
        run_join(req, &JoinConfig::default(), &Tracer::disabled())
    })
    .map_err(|e| SimFailure::execution(format!("dynamic join died: {e}")))?;

    let oracle_len = scenario.oracle_rows(&JoinQuery {
        projection: vec!["ID".into()],
        count_star: false,
        order_by: false,
        limit: None,
        ..q.clone()
    })
    .len();
    if dynamic.pairs.len() != oracle_len {
        return Err(SimFailure::row_set(format!(
            "core dynamic join ({}) delivered {} pairs, oracle says {oracle_len}",
            dynamic.strategy,
            dynamic.pairs.len()
        )));
    }

    let cost_meter = db.cost().clone();
    for cand in &dynamic.candidates {
        for &(lr, rr) in &cand.partial {
            let l = db
                .heap("L")
                .expect("table L exists")
                .fetch(lr, &cost_meter)
                .map_err(|e| SimFailure::execution(format!("containment fetch died: {e}")))?;
            let r = db
                .heap("R")
                .expect("table R exists")
                .fetch(rr, &cost_meter)
                .map_err(|e| SimFailure::execution(format!("containment fetch died: {e}")))?;
            if !verify_pair(&l, &r) {
                return Err(SimFailure::row_set(format!(
                    "candidate {} ({:?}) emitted pair ({lr}, {rr}) that fails the predicates — \
                     partial work must be a subset of the true result",
                    cand.method.label(),
                    cand.outcome
                )));
            }
        }
        report.containment_checks += 1;
    }

    // Best static plan: every feasible method, run alone to completion.
    let mut best_static = f64::INFINITY;
    for method in [
        JoinMethod::NestedLoop { outer: SideId::Left },
        JoinMethod::NestedLoop { outer: SideId::Right },
        JoinMethod::IndexNested { outer: SideId::Left },
        JoinMethod::IndexNested { outer: SideId::Right },
        JoinMethod::Hash { build: SideId::Left },
        JoinMethod::Hash { build: SideId::Right },
        JoinMethod::Merge,
    ] {
        let feasible = with_core_request(scenario, q, |req| {
            rdb_core::join::estimate::feasible(req, method)
        });
        if !feasible {
            continue;
        }
        db.clear_cache();
        let single = with_core_request(scenario, q, |req| {
            run_join_method(req, method, &JoinConfig::default())
        })
        .map_err(|e| SimFailure::execution(format!("static {} died: {e}", method.label())))?;
        if single.pairs.len() != oracle_len {
            return Err(SimFailure::row_set(format!(
                "static {} delivered {} pairs, oracle says {oracle_len}",
                method.label(),
                single.pairs.len()
            )));
        }
        best_static = best_static.min(single.cost);
        report.checks += 1;
    }
    if best_static.is_finite() && dynamic.cost > cfg.cost_mult * best_static + cfg.cost_slack {
        return Err(SimFailure::cost_bound(format!(
            "dynamic join cost {:.1} vs best static {best_static:.1} \
             (bound {:.1}; strategy {})",
            dynamic.cost,
            cfg.cost_mult * best_static + cfg.cost_slack,
            dynamic.strategy
        )));
    }
    report.cost_checks += 1;
    Ok(())
}

/// Runs the full join campaign for one seed.
pub fn run_join_seed(seed: u64, cfg: &SimConfig) -> Result<JoinReport, SimFailure> {
    let scenario = JoinScenario::generate(seed);
    let mut report = JoinReport {
        seed,
        left_rows: scenario.left_shadow.len(),
        right_rows: scenario.right_shadow.len(),
        queries: scenario.queries.len(),
        ..JoinReport::default()
    };
    let opts = QueryOptions::new();
    for (qi, q) in scenario.queries.iter().enumerate() {
        let ctx = |what: &str| {
            format!(
                "seed {seed} join query {qi} [{}] mode {:?} {what}",
                q.sql, scenario.mode
            )
        };
        let oracle = scenario.oracle_rows(q);

        // 1. Clean differential through the SQL layer.
        scenario.db.clear_cache();
        let result = scenario
            .db
            .query(&q.sql, &opts)
            .map_err(|e| SimFailure::execution(format!("SQL join died: {e}")).ctx(ctx("clean")))?;
        check_rows(q, &result.rows, &oracle, "sql-join").map_err(|e| e.ctx(ctx("clean")))?;
        report.checks += 1;

        // 2. Core-layer competition contract (cost bound + containment).
        competition_contract(&scenario, q, cfg, &mut report)
            .map_err(|e| e.ctx(ctx("competition")))?;

        // 3. Prepared replay: same statement through the plan cache, twice
        // (cold skeleton, then warm) — both must match the oracle.
        let stmt = scenario
            .db
            .prepare(&q.sql)
            .map_err(|e| SimFailure::execution(format!("prepare died: {e}")).ctx(ctx("prepared")))?;
        for round in 0..2 {
            scenario.db.clear_cache();
            let prepared = stmt.execute(&opts).map_err(|e| {
                SimFailure::execution(format!("prepared round {round} died: {e}"))
                    .ctx(ctx("prepared"))
            })?;
            check_rows(q, &prepared.rows, &oracle, "prepared-join")
                .map_err(|e| e.ctx(ctx("prepared")))?;
            report.checks += 1;
        }

        // 4. Fault campaign: every outcome is legal except a wrong answer.
        for &rate in &cfg.fault_rates {
            let fault_seed = seed
                .wrapping_mul(0x2545_F491_4F6C_DD1D)
                .wrapping_add(qi as u64)
                ^ rate.to_bits();
            scenario
                .db
                .pool()
                .set_fault_policy(Some(FaultPolicy::random(fault_seed, rate)));
            scenario.db.clear_cache();
            let outcome = scenario.db.query(&q.sql, &opts);
            scenario.db.pool().set_fault_policy(None);
            report.fault_runs += 1;
            match outcome {
                Ok(result) => {
                    check_rows(q, &result.rows, &oracle, "faulted-join")
                        .map_err(|e| e.ctx(ctx("faulted: Ok run returned damaged rows")))?;
                    report.fault_ok += 1;
                    report.checks += 1;
                }
                Err(QueryError::Storage(StorageError::InjectedFault { .. })) => {
                    report.fault_errors += 1;
                }
                Err(e) => {
                    return Err(SimFailure::fault_contract(format!(
                        "fault rate {rate}: surfaced a non-injected error: {e}"
                    ))
                    .ctx(ctx("faulted")));
                }
            }
            // Aftermath: the same query must run clean.
            scenario.db.clear_cache();
            let result = scenario.db.query(&q.sql, &opts).map_err(|e| {
                SimFailure::fault_contract(format!("clean re-run after fault died: {e}"))
                    .ctx(ctx("faulted"))
            })?;
            check_rows(q, &result.rows, &oracle, "post-fault-join")
                .map_err(|e| e.ctx(ctx("faulted: state damaged")))?;
            report.checks += 1;
        }
    }
    Ok(report)
}

/// The join harness's self-test: deliberately drop one row from a result
/// and verify the differential comparison fails.
pub fn join_mutation_check(start_seed: u64) -> Result<(), SimFailure> {
    for seed in start_seed..start_seed.saturating_add(32) {
        let scenario = JoinScenario::generate(seed);
        for q in &scenario.queries {
            if q.count_star || q.limit.is_some() {
                continue;
            }
            let oracle = scenario.oracle_rows(q);
            if oracle.is_empty() {
                continue;
            }
            let mut result = scenario
                .db
                .query(&q.sql, &QueryOptions::new())
                .map_err(|e| SimFailure::mutation(format!("mutation check: join died: {e}")))?;
            result.rows.pop(); // the deliberately injected row-set bug
            return match check_rows(q, &result.rows, &oracle, "mutation") {
                Err(_) => Ok(()),
                Ok(()) => Err(SimFailure::mutation(format!(
                    "join mutation check FAILED: oracle did not notice a dropped row (seed {seed})"
                ))),
            };
        }
    }
    Err(SimFailure::mutation(
        "join mutation check could not find a non-empty unlimited join in 32 seeds",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = JoinScenario::generate(42);
        let b = JoinScenario::generate(42);
        assert_eq!(a.left_shadow, b.left_shadow);
        assert_eq!(a.right_shadow, b.right_shadow);
        assert_eq!(
            a.queries.iter().map(|q| &q.sql).collect::<Vec<_>>(),
            b.queries.iter().map(|q| &q.sql).collect::<Vec<_>>()
        );
    }

    #[test]
    fn a_few_seeds_pass_clean() {
        let cfg = SimConfig {
            fault_rates: vec![0.01],
            ..SimConfig::default()
        };
        for seed in 1..=6 {
            run_join_seed(seed, &cfg).unwrap();
        }
    }

    #[test]
    fn mutation_check_has_teeth() {
        join_mutation_check(1).unwrap();
    }

    #[test]
    fn all_key_modes_reachable_within_seed_window() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 1..200 {
            seen.insert(format!("{:?}", JoinScenario::generate(seed).mode));
            if seen.len() == 4 {
                return;
            }
        }
        panic!("not all key modes reachable: {seen:?}");
    }
}
