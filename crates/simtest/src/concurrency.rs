//! Multi-thread differential check (`simtest --threads N`).
//!
//! The same seeded query batch runs concurrently over one shared
//! [`Scenario`]: every OS thread executes the full batch against the
//! shared table/pool with a **private session meter**, and every
//! delivered row set must match the sequential oracle exactly — whatever
//! the cache interference between threads does to costs. Odd threads run
//! the optimizer with the worker-thread background stage enabled
//! ([`rdb_core::DynamicConfig::parallel`]), so the check covers
//! inter-query *and* intra-query parallelism at once.
//!
//! A fault round then arms the shared pool's injection policy while all
//! threads re-run the batch: a fault observed on any thread must surface
//! as a clean [`StorageError::InjectedFault`] — never a panic, a wrong
//! row, or a foreign error — and a sequential re-run after disarming
//! must still match the oracle (no cross-thread state damage).

use rdb_core::{DynamicConfig, DynamicOptimizer};
use rdb_storage::{shared_meter, FaultPolicy, StorageError};

use crate::failure::SimFailure;
use crate::harness::SimConfig;
use crate::oracle;
use crate::scenario::Scenario;

/// Tally of one seed's concurrency campaign.
#[derive(Debug, Default)]
pub struct ConcurrencyReport {
    /// Worker threads used.
    pub threads: usize,
    /// Query executions across all threads (clean round).
    pub queries_run: u64,
    /// Oracle comparisons performed.
    pub checks: u64,
    /// Query executions with a fault policy armed.
    pub fault_runs: u64,
    /// Faulted runs that surfaced a clean `InjectedFault`.
    pub fault_errors: u64,
    /// Faulted runs that completed with exact results anyway.
    pub fault_ok: u64,
}

fn check_result(
    scenario: &Scenario,
    query: &crate::scenario::Query,
    expected: &[rdb_storage::Rid],
    result: &rdb_core::RetrievalResult,
    what: &str,
) -> Result<(), SimFailure> {
    let sscan_col = result.sscan_index.map(|pos| scenario.index_cols[pos]);
    oracle::check_limited(
        scenario,
        expected,
        &result.deliveries,
        query.limit,
        sscan_col,
        what,
    )
}

/// Runs the concurrency campaign for one seed. Returns the tally, or the
/// first failure (with its check family and enough context to replay).
pub fn concurrency_check(
    seed: u64,
    threads: usize,
    cfg: &SimConfig,
) -> Result<ConcurrencyReport, SimFailure> {
    assert!(threads >= 2, "concurrency check needs at least 2 threads");
    let scenario = Scenario::generate(seed);
    let queries = scenario.queries.clone();
    let expected: Vec<Vec<rdb_storage::Rid>> = queries
        .iter()
        .map(|q| oracle::expected_rids(&scenario, q))
        .collect();

    // One optimizer per mode: even threads cooperative, odd threads with
    // the OS-thread background stage.
    let cooperative = DynamicOptimizer::default();
    let parallel = DynamicOptimizer::new(DynamicConfig {
        parallel: true,
        ..DynamicConfig::default()
    });

    let run_batch = |tid: usize, faulted: bool| -> Result<ConcurrencyReport, SimFailure> {
        let optimizer = if tid % 2 == 1 { &parallel } else { &cooperative };
        let session = shared_meter(scenario.pool.cost_config());
        let mut tally = ConcurrencyReport::default();
        for (qi, query) in queries.iter().enumerate() {
            let ctx = |what: &str| {
                format!(
                    "seed {seed} thread {tid} query {qi} [{}] {what}",
                    query.describe()
                )
            };
            let request = scenario.request(query).with_cost(session.clone());
            let outcome = optimizer.run(&request);
            if faulted {
                tally.fault_runs += 1;
                match outcome {
                    Ok(result) => {
                        check_result(&scenario, query, &expected[qi], &result, "faulted-threaded")
                            .map_err(|e| e.ctx(ctx("Ok faulted run returned damage")))?;
                        tally.fault_ok += 1;
                        tally.checks += 1;
                    }
                    Err(StorageError::InjectedFault { .. }) => tally.fault_errors += 1,
                    Err(e) => {
                        return Err(SimFailure::fault_contract(ctx(&format!(
                            "surfaced a non-injected error: {e}"
                        ))));
                    }
                }
            } else {
                tally.queries_run += 1;
                let result = outcome
                    .map_err(|e| SimFailure::execution(ctx(&format!("clean threaded run died: {e}"))))?;
                check_result(&scenario, query, &expected[qi], &result, "threaded-dynamic")
                    .map_err(|e| e.ctx(ctx("oracle mismatch")))?;
                tally.checks += 1;
            }
            if session.total() <= 0.0 {
                return Err(SimFailure::concurrency(ctx(
                    "session meter never charged: per-thread metering broken",
                )));
            }
        }
        Ok(tally)
    };

    let run_round = |faulted: bool| -> Result<ConcurrencyReport, SimFailure> {
        let run_batch = &run_batch;
        let results: Vec<Result<ConcurrencyReport, SimFailure>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|tid| s.spawn(move || run_batch(tid, faulted)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| {
                        Err(SimFailure::concurrency(format!("seed {seed}: worker thread panicked")))
                    })
                })
                .collect()
        });
        let mut total = ConcurrencyReport {
            threads,
            ..ConcurrencyReport::default()
        };
        for r in results {
            let t = r?;
            total.queries_run += t.queries_run;
            total.checks += t.checks;
            total.fault_runs += t.fault_runs;
            total.fault_errors += t.fault_errors;
            total.fault_ok += t.fault_ok;
        }
        Ok(total)
    };

    // Clean round: all threads, shared cold-ish pool, exact results.
    scenario.cold();
    let mut total = run_round(false)?;

    // Fault rounds: arm the shared pool, hammer it from every thread.
    for (ri, &rate) in cfg.fault_rates.iter().enumerate() {
        let fault_seed = seed
            .wrapping_mul(0xD6E8_FEB8_6659_FD93)
            .wrapping_add(ri as u64)
            ^ rate.to_bits();
        scenario
            .pool
            .set_fault_policy(Some(FaultPolicy::random(fault_seed, rate)));
        scenario.cold();
        let faulted = run_round(true);
        scenario.pool.set_fault_policy(None);
        let faulted = faulted?;
        total.fault_runs += faulted.fault_runs;
        total.fault_errors += faulted.fault_errors;
        total.fault_ok += faulted.fault_ok;
        total.checks += faulted.checks;

        // Aftermath: the world must be undamaged once the policy is gone.
        scenario.cold();
        for (qi, query) in queries.iter().enumerate() {
            let request = scenario.request(query);
            let result = DynamicOptimizer::default().run(&request).map_err(|e| {
                SimFailure::fault_contract(format!(
                    "seed {seed} query {qi}: clean re-run after threaded faults died: {e}"
                ))
            })?;
            check_result(&scenario, query, &expected[qi], &result, "post-fault-sequential")
                .map_err(|e| e.ctx(format!("seed {seed} query {qi}: state damaged by threaded faults")))?;
            total.checks += 1;
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrency_check_passes_on_a_seed_spread() {
        let cfg = SimConfig {
            fault_rates: vec![0.05],
            ..SimConfig::default()
        };
        for seed in [1, 7, 42] {
            let report = concurrency_check(seed, 4, &cfg).unwrap();
            assert!(report.queries_run > 0);
            assert!(report.checks > 0);
            assert!(report.fault_runs > 0);
        }
    }
}
