//! Seeded scenario generation: one `u64` seed determines the table shape,
//! the data distributions, the index set, and the query batch.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdb_btree::{BTree, KeyRange};
use rdb_core::request::{IndexChoice, OptimizeGoal, RecordPred, RetrievalRequest};
use rdb_storage::{
    shared_meter, shared_pool, Column, CostConfig, FileId, HeapTable, Record, Rid, Schema,
    SharedPool, Value, ValueType,
};
use rdb_workload::{ColumnSpec, TableGen};

/// Number of columns in every generated table.
pub const NUM_COLS: usize = 5;

/// One `lo <= col <= hi` conjunct (either bound optional). Comparisons
/// against NULL are false, matching SQL semantics and the B-tree's
/// NULL-sorts-first key order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conjunct {
    /// Column position in the schema.
    pub col: usize,
    /// Inclusive lower bound, if any.
    pub lo: Option<i64>,
    /// Inclusive upper bound, if any.
    pub hi: Option<i64>,
}

impl Conjunct {
    /// Straight-line evaluation on one value.
    pub fn matches(&self, v: &Value) -> bool {
        match v {
            Value::Int(i) => {
                self.lo.is_none_or(|l| *i >= l) && self.hi.is_none_or(|h| *i <= h)
            }
            _ => false,
        }
    }

    /// The key range this conjunct binds to an index on its column.
    pub fn key_range(&self) -> KeyRange {
        match (self.lo, self.hi) {
            (Some(l), Some(h)) => KeyRange::closed(l, h),
            (Some(l), None) => KeyRange::at_least(l),
            (None, Some(h)) => KeyRange::at_most(h),
            (None, None) => KeyRange::all(),
        }
    }
}

/// One generated retrieval: a conjunction of range predicates plus the
/// request knobs the optimizer reacts to.
#[derive(Debug, Clone)]
pub struct Query {
    /// The conjuncts (ANDed).
    pub conjuncts: Vec<Conjunct>,
    /// Optimization goal.
    pub goal: OptimizeGoal,
    /// Row limit (models `LIMIT` / `EXISTS`).
    pub limit: Option<usize>,
}

impl Query {
    /// Straight-line evaluation of the full predicate on one row.
    pub fn matches_row(&self, row: &[Value]) -> bool {
        self.conjuncts.iter().all(|c| c.matches(&row[c.col]))
    }

    /// The predicate as a [`RecordPred`] for the executor.
    pub fn record_pred(&self) -> RecordPred {
        let conjuncts = self.conjuncts.clone();
        Arc::new(move |r: &Record| conjuncts.iter().all(|c| c.matches(&r[c.col])))
    }

    /// The conjunct restricting `col`, if any.
    pub fn conjunct_on(&self, col: usize) -> Option<&Conjunct> {
        self.conjuncts.iter().find(|c| c.col == col)
    }

    /// Short human description for failure messages.
    pub fn describe(&self) -> String {
        let parts: Vec<String> = self
            .conjuncts
            .iter()
            .map(|c| format!("c{} in [{:?}, {:?}]", c.col, c.lo, c.hi))
            .collect();
        format!(
            "{} goal={:?} limit={:?}",
            parts.join(" AND "),
            self.goal,
            self.limit
        )
    }
}

/// A fully materialized simulation world: table, indexes, shadow rows,
/// and the query batch — all derived from `seed`.
pub struct Scenario {
    /// The generating seed.
    pub seed: u64,
    /// The shared buffer pool (fault policies attach here).
    pub pool: SharedPool,
    /// The heap table under test.
    pub table: HeapTable,
    /// Secondary indexes.
    pub indexes: Vec<BTree>,
    /// Column indexed by each tree (parallel to `indexes`).
    pub index_cols: Vec<usize>,
    /// Shadow copy of every row, in insertion (= RID) order. This is the
    /// oracle's entire worldview.
    pub shadow: Vec<(Rid, Vec<Value>)>,
    /// The generated retrievals.
    pub queries: Vec<Query>,
}

impl Scenario {
    /// Generates the scenario for `seed`. Same seed, same world.
    pub fn generate(seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed);
        let rows = rng.gen_range(150usize..=800);
        let a_dom = rng.gen_range(8i64..=200);
        let b_dom = rng.gen_range(10usize..=120);
        let theta = rng.gen_range(0.4f64..1.2);
        let run_len = rng.gen_range(20i64..=200);
        let d_dom = rng.gen_range(5i64..=80);
        let null_rate = rng.gen_range(0.2f64..0.7);
        let d_correlated = rng.gen_bool(0.4);

        let d_spec = if d_correlated {
            ColumnSpec::CorrelatedWith {
                of: 1,
                agreement: rng.gen_range(0.5f64..0.95),
                n: a_dom,
            }
        } else {
            ColumnSpec::Nullable {
                null_rate,
                inner: Box::new(ColumnSpec::Uniform { n: d_dom }),
            }
        };
        // Effective domain of column D for predicate generation.
        let d_eff_dom = if d_correlated { a_dom } else { d_dom };
        let domains: [i64; NUM_COLS] = [
            rows as i64,
            a_dom,
            b_dom as i64,
            rows as i64 / run_len + 1,
            d_eff_dom,
        ];

        let cost = shared_meter(CostConfig::default());
        let pool = shared_pool(100_000, cost);
        let mut table = HeapTable::with_page_bytes(
            "SIM",
            FileId(0),
            Schema::new(vec![
                Column::new("ID", ValueType::Int),
                Column::new("A", ValueType::Int),
                Column::new("B", ValueType::Int),
                Column::new("C", ValueType::Int),
                Column::nullable("D", ValueType::Int),
            ]),
            pool.clone(),
            1024,
        );

        // Index set: A always; B and D by coin toss (D may be NULL-heavy —
        // NULL keys sort first and fall outside every integer range).
        let mut index_cols = vec![1usize];
        if rng.gen_bool(0.7) {
            index_cols.push(2);
        }
        if rng.gen_bool(0.6) {
            index_cols.push(4);
        }
        let fanout = rng.gen_range(8usize..=48);
        let mut indexes: Vec<BTree> = index_cols
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                BTree::new(
                    format!("IDX_c{c}"),
                    FileId(1 + i as u32),
                    pool.clone(),
                    vec![c],
                    fanout,
                )
            })
            .collect();

        let mut generator = TableGen::new(
            vec![
                ColumnSpec::Serial,
                ColumnSpec::Uniform { n: a_dom },
                ColumnSpec::Zipf { n: b_dom, theta },
                ColumnSpec::Clustered {
                    run_length: run_len,
                },
                d_spec,
            ],
            seed,
        );
        let mut shadow: Vec<(Rid, Vec<Value>)> = Vec::with_capacity(rows);
        for _ in 0..rows {
            let row = generator.next_row();
            let rid = table
                .insert(Record::new(row.clone()))
                .expect("generated row fits schema");
            for (i, &c) in index_cols.iter().enumerate() {
                indexes[i].insert(vec![row[c].clone()], rid);
            }
            shadow.push((rid, row));
        }

        let queries = gen_queries(&mut rng, &index_cols, &domains);
        Scenario {
            seed,
            pool,
            table,
            indexes,
            index_cols,
            shadow,
            queries,
        }
    }

    /// Evicts every cached page so the next run starts cold.
    pub fn cold(&self) {
        self.pool.clear();
    }

    /// Position (in `indexes`) of the tree on `col`, if one exists.
    pub fn index_on(&self, col: usize) -> Option<usize> {
        self.index_cols.iter().position(|&c| c == col)
    }

    /// Builds the optimizer-facing request for `query`. Every index is
    /// offered; indexes without a conjunct get an unbounded range (the
    /// initial stage discards them as unselective). An index is marked
    /// self-sufficient when the whole predicate lives on its key column.
    pub fn request(&self, query: &Query) -> RetrievalRequest<'_> {
        let single_col = (query.conjuncts.len() == 1).then(|| query.conjuncts[0].col);
        let choices: Vec<IndexChoice<'_>> = self
            .indexes
            .iter()
            .zip(&self.index_cols)
            .map(|(tree, &col)| {
                let range = query
                    .conjunct_on(col)
                    .map(|c| c.key_range())
                    .unwrap_or_else(KeyRange::all);
                let mut choice = IndexChoice::fetch_needed(tree, range);
                if single_col == Some(col) {
                    let conj = query.conjuncts[0];
                    choice = choice
                        .with_self_sufficient(Arc::new(move |key: &[Value]| conj.matches(&key[0])));
                }
                choice
            })
            .collect();
        RetrievalRequest {
            table: &self.table,
            indexes: choices,
            residual: query.record_pred(),
            goal: query.goal,
            order_required: false,
            limit: query.limit,
            cost: self.pool.cost().clone(),
        }
    }
}

fn gen_queries(rng: &mut StdRng, index_cols: &[usize], domains: &[i64; NUM_COLS]) -> Vec<Query> {
    let n = 6;
    let mut queries = Vec::with_capacity(n);
    for _ in 0..n {
        let two = rng.gen_bool(0.4);
        // Mostly hit indexed columns; sometimes the serial ID column,
        // which no index covers — forcing the pure-Tscan path.
        let first_col = if rng.gen_bool(0.8) {
            index_cols[rng.gen_range(0..index_cols.len())]
        } else {
            0
        };
        let mut conjuncts = vec![gen_conjunct(rng, first_col, domains[first_col])];
        if two {
            let others: Vec<usize> = (0..NUM_COLS).filter(|&c| c != first_col && c != 0).collect();
            let col = others[rng.gen_range(0..others.len())];
            conjuncts.push(gen_conjunct(rng, col, domains[col]));
        }
        let goal = if rng.gen_bool(0.35) {
            OptimizeGoal::FastFirst
        } else {
            OptimizeGoal::TotalTime
        };
        let limit = match rng.gen_range(0u32..10) {
            0..=5 => None,
            6..=7 => Some(1),
            _ => Some(5),
        };
        queries.push(Query {
            conjuncts,
            goal,
            limit,
        });
    }
    queries
}

fn gen_conjunct(rng: &mut StdRng, col: usize, dom: i64) -> Conjunct {
    let dom = dom.max(1);
    let v = rng.gen_range(0..dom);
    let (lo, hi) = match rng.gen_range(0u32..100) {
        // Point restriction.
        0..=14 => (Some(v), Some(v)),
        // Narrow range.
        15..=44 => (Some(v), Some(v + (dom / 10).clamp(1, 20))),
        // Wide range.
        45..=69 => (Some(v), Some(v + dom / 2)),
        // Half-open.
        70..=79 => (Some(v), None),
        80..=87 => (None, Some(v)),
        // Inverted (trivially empty: lo > hi).
        88..=93 => (Some(v + 10), Some(v)),
        // Beyond the domain (empty, but the estimator must discover it).
        _ => (Some(dom * 2), Some(dom * 2 + 5)),
    };
    Conjunct { col, lo, hi }
}
