//! The differential harness: every generated retrieval runs through every
//! strategy, the baselines, and the dynamic optimizer; each result is
//! differenced against the shadow-`Vec` oracle; then the whole dynamic
//! path is re-run under injected storage faults.

use std::cell::Cell;

use rdb_core::baseline::{estimate_all, PredShape, StaticIndexInfo, StaticJscan, StaticJscanConfig, StaticOptimizer};
use rdb_core::request::{Delivery, DeliveryObserver, OptimizeGoal, RetrievalResult};
use rdb_core::tscan::StrategyStep;
use rdb_core::{
    DynamicOptimizer, Fscan, Jscan, JscanConfig, JscanIndex, JscanOutcome, Sscan, TraceBuffer,
    TraceEvent, Tracer, Tscan,
};
use rdb_storage::{FaultPolicy, StorageError, Value};

use crate::failure::SimFailure;
use crate::oracle;
use crate::scenario::{Query, Scenario};

/// Harness knobs. Everything has a sane default; the CLI overrides them.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The dynamic run may cost at most this multiple of the cheapest
    /// fully-executed static strategy (guaranteed-best invariant) …
    pub cost_mult: f64,
    /// … plus this flat slack, absorbing estimation overhead on
    /// near-zero-cost retrievals (OLTP shortcuts).
    pub cost_slack: f64,
    /// Fault probabilities for the random-fault campaigns (rate 0 — the
    /// clean differential — always runs first and is implied).
    pub fault_rates: Vec<f64>,
    /// Buffer-pool capacity for durable crash worlds; `None` keeps the
    /// database default. Small values force the beyond-RAM regime, where
    /// recovery and verification evict and re-read pages constantly.
    pub pool_pages: Option<usize>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cost_mult: 3.0,
            cost_slack: 60.0,
            fault_rates: vec![0.01, 0.1],
            pool_pages: None,
        }
    }
}

/// What one seed's campaign did — returned for aggregation and for the
/// determinism check (same seed must yield the identical report).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SeedReport {
    /// The seed.
    pub seed: u64,
    /// Rows in the generated table.
    pub rows: usize,
    /// Indexes in the generated schema.
    pub indexes: usize,
    /// Queries executed.
    pub queries: usize,
    /// Oracle comparisons performed (clean + faulted).
    pub checks: u64,
    /// Dynamic runs executed with a fault policy armed.
    pub fault_runs: u64,
    /// Faulted runs that surfaced a clean `InjectedFault` error.
    pub fault_errors: u64,
    /// Faulted runs that completed with a provably exact result.
    pub fault_ok: u64,
    /// Runs where a mid-competition index death was absorbed (the Jscan
    /// discarded the dead index and the result was still exact).
    pub degraded_ok: u64,
    /// Traced runs whose event stream passed the consistency invariants
    /// (single winner naming the executed strategy, phase costs tiling the
    /// total, switch targets resolving to real stages).
    pub trace_checks: u64,
    /// Prepared-mode rounds: hinted re-executions checked against the
    /// oracle and against their own fresh run.
    pub prepared_checks: u64,
}

/// Runs the full campaign for one seed. `Err` carries the check family
/// that tripped plus enough human-readable context to replay.
pub fn run_seed(seed: u64, cfg: &SimConfig) -> Result<SeedReport, SimFailure> {
    let scenario = Scenario::generate(seed);
    let mut report = SeedReport {
        seed,
        rows: scenario.shadow.len(),
        indexes: scenario.indexes.len(),
        queries: scenario.queries.len(),
        ..SeedReport::default()
    };
    let queries = scenario.queries.clone();
    for (qi, query) in queries.iter().enumerate() {
        let ctx = |what: &str| format!("seed {seed} query {qi} [{}] {what}", query.describe());
        clean_differential(&scenario, query, cfg, &mut report).map_err(|e| e.ctx(ctx("clean")))?;
        trace_consistency(&scenario, query, &mut report).map_err(|e| e.ctx(ctx("traced")))?;
        prepared_replay(&scenario, query, &mut report).map_err(|e| e.ctx(ctx("prepared")))?;
        for &rate in &cfg.fault_rates {
            fault_campaign(&scenario, query, qi, rate, &mut report)
                .map_err(|e| e.ctx(ctx("faulted")))?;
        }
        index_death(&scenario, query, &mut report).map_err(|e| e.ctx(ctx("index-death")))?;
    }
    Ok(report)
}

/// Collects a strategy's full (unlimited) delivery stream, plus its cost.
fn drain<E, F>(scenario: &Scenario, mut step: F) -> Result<(Vec<Delivery>, f64), E>
where
    F: FnMut() -> Result<StrategyStep, E>,
{
    scenario.cold();
    let meter = scenario.pool.cost().clone();
    let before = meter.total();
    let mut deliveries = Vec::new();
    loop {
        match step()? {
            StrategyStep::Deliver(rid, record) => deliveries.push(Delivery {
                rid,
                record,
                from_index: false,
            }),
            StrategyStep::Progress => {}
            StrategyStep::Done => break,
        }
    }
    Ok((deliveries, meter.total() - before))
}

fn clean_differential(
    scenario: &Scenario,
    query: &Query,
    cfg: &SimConfig,
    report: &mut SeedReport,
) -> Result<(), SimFailure> {
    let expected = oracle::expected_rids(scenario, query);

    // Tscan: always applicable, delivers in physical order.
    let residual = query.record_pred();
    let mut tscan = Tscan::new(&scenario.table, residual.clone(), scenario.pool.cost().clone());
    let (deliveries, tscan_cost) =
        drain(scenario, || tscan.step()).map_err(|e| SimFailure::execution(format!("Tscan died: {e}")))?;
    oracle::check_full(scenario, &expected, &deliveries, None, "Tscan")?;
    oracle::check_rid_order(&deliveries, "Tscan")?;
    report.checks += 1;
    let mut best_full = tscan_cost;

    // Fscan through every index whose column the predicate restricts:
    // same row set, key-ordered deliveries.
    for conj in &query.conjuncts {
        let Some(pos) = scenario.index_on(conj.col) else {
            continue;
        };
        let tree = &scenario.indexes[pos];
        let mut fscan = Fscan::new(
            &scenario.table,
            tree,
            conj.key_range(),
            residual.clone(),
            scenario.pool.cost().clone(),
        );
        let (deliveries, cost) =
            drain(scenario, || fscan.step()).map_err(|e| SimFailure::execution(format!("Fscan died: {e}")))?;
        oracle::check_full(scenario, &expected, &deliveries, None, "Fscan")?;
        oracle::check_key_order(scenario, &deliveries, conj.col, "Fscan")?;
        report.checks += 1;
        best_full = best_full.min(cost);
    }

    // Sscan when the whole predicate lives on one indexed column: the
    // index is self-sufficient, deliveries carry key tuples.
    if query.conjuncts.len() == 1 {
        let conj = query.conjuncts[0];
        if let Some(pos) = scenario.index_on(conj.col) {
            let tree = &scenario.indexes[pos];
            let mut sscan = Sscan::new(
                tree,
                conj.key_range(),
                std::sync::Arc::new(move |key: &[Value]| conj.matches(&key[0])),
                scenario.pool.cost().clone(),
            );
            scenario.cold();
            let meter = scenario.pool.cost().clone();
            let before = meter.total();
            let mut deliveries = Vec::new();
            loop {
                match sscan.step().map_err(|e| SimFailure::execution(format!("Sscan died: {e}")))? {
                    StrategyStep::Deliver(rid, record) => deliveries.push(Delivery {
                        rid,
                        record,
                        from_index: true,
                    }),
                    StrategyStep::Progress => {}
                    StrategyStep::Done => break,
                }
            }
            oracle::check_full(scenario, &expected, &deliveries, Some(conj.col), "Sscan")?;
            oracle::check_key_order(scenario, &deliveries, conj.col, "Sscan")?;
            report.checks += 1;
            best_full = best_full.min(meter.total() - before);
        }
    }

    // Jscan over the indexed conjuncts: its final list answers exactly the
    // indexed subset of the predicate (the residual is final-stage work).
    let indexed: Vec<_> = query
        .conjuncts
        .iter()
        .filter(|c| scenario.index_on(c.col).is_some())
        .copied()
        .collect();
    if !indexed.is_empty() {
        let jidx: Vec<JscanIndex<'_>> = indexed
            .iter()
            .map(|c| {
                let tree = &scenario.indexes[scenario.index_on(c.col).expect("indexed")];
                let range = c.key_range();
                let estimate = tree.estimate_range(&range, scenario.pool.cost()).estimate;
                JscanIndex {
                    tree,
                    range,
                    estimate,
                }
            })
            .collect();
        scenario.cold();
        let mut jscan = Jscan::new(
            &scenario.table,
            jidx,
            JscanConfig::default(),
            scenario.pool.cost().clone(),
        );
        let expected_indexed = oracle::expected_for_conjuncts(scenario, &indexed);
        let outcome = jscan.run();
        // Conjuncts whose scans ran to completion: only those are folded
        // into the final list — a discarded index's restriction legally
        // stays behind for the final-stage residual.
        let completed: Vec<_> = jscan
            .events()
            .iter()
            .filter_map(|e| match e {
                rdb_core::JscanEvent::ScanCompleted { name, .. } => indexed
                    .iter()
                    .find(|c| *name == format!("IDX_c{}", c.col))
                    .copied(),
                _ => None,
            })
            .collect();
        match outcome {
            JscanOutcome::FinalList(list) => {
                let mut rids = list.to_vec().map_err(|e| SimFailure::execution(format!("RID list died: {e}")))?;
                rids.sort_unstable();
                // Soundness: every row of the full indexed intersection
                // must survive into the list (Jscan never drops rows).
                for rid in &expected_indexed {
                    if rids.binary_search(rid).is_err() {
                        return Err(SimFailure::row_set(format!(
                            "Jscan final list lost qualifying row {rid} \
                             ({} RIDs vs {} expected)",
                            rids.len(),
                            expected_indexed.len()
                        )));
                    }
                }
                // Tightness: the list applies at least the completed
                // scans' conjuncts.
                let mut allowed = oracle::expected_for_conjuncts(scenario, &completed);
                allowed.sort_unstable();
                for rid in &rids {
                    if allowed.binary_search(rid).is_err() {
                        return Err(SimFailure::row_set(format!(
                            "Jscan final list contains {rid}, which fails a \
                             completed scan's restriction"
                        )));
                    }
                }
            }
            JscanOutcome::Empty => {
                if !expected_indexed.is_empty() {
                    return Err(SimFailure::row_set(format!(
                        "Jscan claims empty intersection, oracle says {} rows",
                        expected_indexed.len()
                    )));
                }
            }
            JscanOutcome::UseTscan => {} // a cost verdict, not a row claim
        }
        report.checks += 1;
    }

    // Static baselines, with the query's limit: plan-committed execution.
    let request = scenario.request(query);
    let infos: Vec<StaticIndexInfo> = scenario
        .index_cols
        .iter()
        .zip(&scenario.indexes)
        .map(|(&col, tree)| {
            let shape = match query.conjunct_on(col) {
                Some(c) if c.lo.is_some() && c.lo == c.hi => PredShape::Eq,
                Some(c) if c.lo.is_some() || c.hi.is_some() => PredShape::Range,
                _ => PredShape::None,
            };
            let mut distinct: Vec<&Value> =
                scenario.shadow.iter().map(|(_, row)| &row[col]).collect();
            distinct.sort();
            distinct.dedup();
            StaticIndexInfo {
                entries: tree.len(),
                distinct_keys: distinct.len() as u64,
                avg_fanout: tree.avg_fanout(),
                shape,
                self_sufficient: query.conjuncts.len() == 1 && query.conjuncts[0].col == col,
            }
        })
        .collect();
    let static_opt = StaticOptimizer::default();
    let plan = static_opt.plan(&scenario.table, &infos);
    scenario.cold();
    let result = static_opt
        .execute(plan, &request)
        .map_err(|e| SimFailure::execution(format!("static execute died: {e}")))?;
    check_result(scenario, query, &expected, &result, "static")?;
    report.checks += 1;

    scenario.cold();
    let est = estimate_all(&request);
    let result = StaticJscan::new(StaticJscanConfig::default())
        .run(&request, &est)
        .map_err(|e| SimFailure::execution(format!("static Jscan died: {e}")))?;
    check_result(scenario, query, &expected, &result, "static-jscan")?;
    report.checks += 1;

    // The dynamic optimizer, with a first-row cost probe.
    scenario.cold();
    let meter = scenario.pool.cost().clone();
    let start = meter.total();
    let first_at = Cell::new(f64::NAN);
    let observer: DeliveryObserver<'_> = Box::new(|_d| {
        if first_at.get().is_nan() {
            first_at.set(meter.total() - start);
        }
    });
    let result = DynamicOptimizer::default()
        .run_with_observer(&request, Some(observer))
        .map_err(|e| SimFailure::execution(format!("dynamic run died: {e}")))?;
    check_result(scenario, query, &expected, &result, "dynamic")?;
    report.checks += 1;

    // Cost invariants. The guaranteed-best bound only binds unlimited
    // runs (a limited run may legally stop anywhere); the first-row bound
    // binds any fast-first run that delivered at least one row.
    if query.limit.is_none() && result.cost > cfg.cost_mult * best_full + cfg.cost_slack {
        return Err(SimFailure::cost_bound(format!(
            "guaranteed-best violated: dynamic cost {:.1} vs best static {best_full:.1} \
             (bound {:.1}; strategy {})",
            result.cost,
            cfg.cost_mult * best_full + cfg.cost_slack,
            result.strategy
        )));
    }
    if query.goal == OptimizeGoal::FastFirst
        && !result.deliveries.is_empty()
        && first_at.get().is_finite()
        && first_at.get() > cfg.cost_mult * best_full + cfg.cost_slack
    {
        return Err(SimFailure::cost_bound(format!(
            "fast-first first-row bound violated: first row at {:.1} vs best static {best_full:.1} \
             (strategy {})",
            first_at.get(),
            result.strategy
        )));
    }
    Ok(())
}

/// Prepared-mode round: the paper's repeated parameterized execution.
/// The query runs once from scratch through the hinted entry point, then
/// again seeded with the [`rdb_core::TacticHint`] the first run returned —
/// exactly what a plan cache replays. Both executions must satisfy the
/// oracle, and (for unlimited queries) the hinted replay must deliver the
/// same row set as the fresh run even when favoring the cached winner
/// changed which tactic ran.
fn prepared_replay(
    scenario: &Scenario,
    query: &Query,
    report: &mut SeedReport,
) -> Result<(), SimFailure> {
    let expected = oracle::expected_rids(scenario, query);
    let request = scenario.request(query);
    let opt = DynamicOptimizer::default();
    scenario.cold();
    let fresh = opt
        .run_hinted(&request, None, &Tracer::disabled(), None)
        .map_err(|e| SimFailure::execution(format!("prepared fresh run died: {e}")))?;
    check_result(scenario, query, &expected, &fresh.result, "prepared-fresh")?;
    report.prepared_checks += 1;
    scenario.cold();
    let replay = opt
        .run_hinted(&request, None, &Tracer::disabled(), Some(&fresh.hint))
        .map_err(|e| SimFailure::execution(format!("prepared replay died: {e}")))?;
    check_result(scenario, query, &expected, &replay.result, "prepared-replay")?;
    if query.limit.is_none() {
        let mut a: Vec<_> = fresh.result.deliveries.iter().map(|d| d.rid).collect();
        let mut b: Vec<_> = replay.result.deliveries.iter().map(|d| d.rid).collect();
        a.sort_unstable();
        b.sort_unstable();
        if a != b {
            return Err(SimFailure::row_set(format!(
                "hinted replay delivered {} rows vs fresh {} (hint {:?}, disposition {:?})",
                b.len(),
                a.len(),
                fresh.hint.tactic,
                replay.disposition,
            )));
        }
    }
    report.prepared_checks += 1;
    Ok(())
}

/// Lowercased alphanumeric skeleton of a strategy string, so
/// `"BackgroundOnly"`, `"background-only"` and `"background-only (Jscan ->
/// Tscan)"` can be compared for containment.
fn norm(s: &str) -> String {
    s.chars()
        .filter(char::is_ascii_alphanumeric)
        .collect::<String>()
        .to_ascii_lowercase()
}

/// Re-runs the dynamic optimizer with a trace sink attached and asserts
/// the telemetry contract over the emitted event stream:
///
/// 1. exactly one `Winner`, whose strategy names the tactic that actually
///    produced the rows (`RetrievalResult::strategy`) and whose row count
///    matches the deliveries;
/// 2. the `TacticChosen` event names the same tactic;
/// 3. `PhaseCost` events tile the run — their sum equals the result's
///    total cost to float precision;
/// 4. every mid-run `Switch` abandons a real stage for a real stage (a
///    known execution phase or a stage named by the final winner string),
///    and never "switches" to itself.
fn trace_consistency(
    scenario: &Scenario,
    query: &Query,
    report: &mut SeedReport,
) -> Result<(), SimFailure> {
    const STAGES: [&str; 6] = [
        "tscan",
        "fscan",
        "sscan",
        "jscan",
        "foreground",
        "background-only",
    ];
    let request = scenario.request(query);
    let buffer = TraceBuffer::shared(16_384);
    let tracer = Tracer::new(buffer.clone());
    scenario.cold();
    let result = DynamicOptimizer::default()
        .run_traced(&request, None, &tracer)
        .map_err(|e| SimFailure::execution(format!("traced run died: {e}")))?;
    let events = buffer.take();

    let winners: Vec<(&String, f64, usize)> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Winner {
                strategy,
                cost,
                rows,
            } => Some((strategy, *cost, *rows)),
            _ => None,
        })
        .collect();
    let [(winner, winner_cost, winner_rows)] = winners[..] else {
        return Err(SimFailure::trace(format!(
            "expected exactly one Winner event, got {}",
            winners.len()
        )));
    };
    if winner_rows != result.deliveries.len() {
        return Err(SimFailure::trace(format!(
            "Winner claims {winner_rows} rows, run delivered {}",
            result.deliveries.len()
        )));
    }
    if !norm(winner).contains(&norm(&result.strategy)) {
        return Err(SimFailure::trace(format!(
            "Winner strategy {winner:?} does not name the executed strategy {:?}",
            result.strategy
        )));
    }
    let eps = 1e-6 * result.cost.max(1.0);
    if (winner_cost - result.cost).abs() > eps {
        return Err(SimFailure::trace(format!(
            "Winner cost {winner_cost} != result cost {}",
            result.cost
        )));
    }

    let chosen = events.iter().find_map(|e| match e {
        TraceEvent::TacticChosen { tactic, .. } => Some(tactic),
        _ => None,
    });
    match chosen {
        Some(tactic) if *tactic == result.strategy => {}
        Some(tactic) => {
            return Err(SimFailure::trace(format!(
                "TacticChosen names {tactic:?}, result ran {:?}",
                result.strategy
            )));
        }
        None => return Err(SimFailure::trace("no TacticChosen event")),
    }

    let phase_sum: f64 = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::PhaseCost { cost, .. } => Some(*cost),
            _ => None,
        })
        .sum();
    if (phase_sum - result.cost).abs() > eps {
        return Err(SimFailure::trace(format!(
            "phase costs sum to {phase_sum}, run cost {} (phases must tile the run)",
            result.cost
        )));
    }

    for event in &events {
        let TraceEvent::Switch { from, to, .. } = event else {
            continue;
        };
        if from == to {
            return Err(SimFailure::trace(format!("Switch from {from:?} to itself")));
        }
        let legal = |s: &str| STAGES.contains(&s) || norm(winner).contains(&norm(s));
        if !legal(from) || !legal(to) {
            return Err(SimFailure::trace(format!(
                "Switch {from:?} -> {to:?} names an unknown stage (winner {winner:?})"
            )));
        }
    }

    report.trace_checks += 1;
    report.checks += 1;
    Ok(())
}

/// Differential check of a full `RetrievalResult`, honouring the limit.
fn check_result(
    scenario: &Scenario,
    query: &Query,
    expected: &[rdb_storage::Rid],
    result: &RetrievalResult,
    what: &str,
) -> Result<(), SimFailure> {
    let sscan_col = result.sscan_index.map(|pos| scenario.index_cols[pos]);
    oracle::check_limited(
        scenario,
        expected,
        &result.deliveries,
        query.limit,
        sscan_col,
        what,
    )
}

fn arm(scenario: &Scenario, policy: FaultPolicy) {
    scenario.pool.set_fault_policy(Some(policy));
}

fn disarm(scenario: &Scenario) {
    scenario.pool.set_fault_policy(None);
}

/// Runs the dynamic optimizer with random faults armed. Every outcome is
/// legal except a wrong answer: `Ok` must be *exactly* right, `Err` must
/// be the injected fault. Afterwards the same query re-runs clean — the
/// failed run must not have corrupted any shared state.
fn fault_campaign(
    scenario: &Scenario,
    query: &Query,
    qi: usize,
    rate: f64,
    report: &mut SeedReport,
) -> Result<(), SimFailure> {
    let expected = oracle::expected_rids(scenario, query);
    let request = scenario.request(query);
    let fault_seed = scenario
        .seed
        .wrapping_mul(0x2545_F491_4F6C_DD1D)
        .wrapping_add(qi as u64)
        ^ rate.to_bits();
    arm(scenario, FaultPolicy::random(fault_seed, rate));
    scenario.cold();
    let outcome = DynamicOptimizer::default().run(&request);
    disarm(scenario);
    report.fault_runs += 1;
    match outcome {
        Ok(result) => {
            check_result(scenario, query, &expected, &result, "faulted-dynamic")
                .map_err(|e| e.ctx(format!("fault rate {rate}: Ok run returned damaged rows")))?;
            report.fault_ok += 1;
            report.checks += 1;
            if result
                .events
                .iter()
                .any(|e| e.contains("StorageFault"))
            {
                report.degraded_ok += 1;
            }
        }
        Err(e @ StorageError::InjectedFault { .. }) => {
            drop(e);
            report.fault_errors += 1;
        }
        Err(e) => {
            return Err(SimFailure::fault_contract(format!(
                "fault rate {rate}: surfaced a non-injected error: {e}"
            )));
        }
    }
    // Aftermath: with the policy gone, the exact same retrieval must
    // succeed — temp state released, pool and trees undamaged.
    scenario.cold();
    let result = DynamicOptimizer::default()
        .run(&request)
        .map_err(|e| SimFailure::fault_contract(format!("fault rate {rate}: clean re-run after fault died: {e}")))?;
    check_result(scenario, query, &expected, &result, "post-fault-dynamic")
        .map_err(|e| e.ctx(format!("fault rate {rate}: state damaged by faulted run")))?;
    report.checks += 1;
    Ok(())
}

/// Kills one index's storage a few reads in and re-runs the dynamic
/// optimizer. The heap never faults, so the only legal outcomes are a
/// graceful degradation (exact rows, the dead index discarded) or a clean
/// `InjectedFault` scoped to the dead file (when the tactic had committed
/// to that index outside the competition).
fn index_death(
    scenario: &Scenario,
    query: &Query,
    report: &mut SeedReport,
) -> Result<(), SimFailure> {
    let Some(&conj) = query
        .conjuncts
        .iter()
        .find(|c| scenario.index_on(c.col).is_some())
    else {
        return Ok(());
    };
    let pos = scenario.index_on(conj.col).expect("just checked");
    let dead_file = scenario.indexes[pos].file();
    let expected = oracle::expected_rids(scenario, query);
    let request = scenario.request(query);
    arm(
        scenario,
        FaultPolicy::fail_from_nth(3).scoped_to(dead_file),
    );
    scenario.cold();
    let outcome = DynamicOptimizer::default().run(&request);
    disarm(scenario);
    report.fault_runs += 1;
    match outcome {
        Ok(result) => {
            check_result(scenario, query, &expected, &result, "index-death-dynamic")
                .map_err(|e| e.ctx("index death: Ok run returned damaged rows"))?;
            report.fault_ok += 1;
            report.checks += 1;
            if result.events.iter().any(|e| e.contains("StorageFault")) {
                report.degraded_ok += 1;
            }
        }
        Err(StorageError::InjectedFault { file, .. }) => {
            if file != dead_file {
                return Err(SimFailure::fault_contract(format!(
                    "index death: fault reported for file {} but only {} was poisoned",
                    file.0, dead_file.0
                )));
            }
            report.fault_errors += 1;
        }
        Err(e) => {
            return Err(SimFailure::fault_contract(format!(
                "index death: surfaced a non-injected error: {e}"
            )))
        }
    }
    scenario.cold();
    let result = DynamicOptimizer::default()
        .run(&request)
        .map_err(|e| SimFailure::fault_contract(format!("index death: clean re-run died: {e}")))?;
    check_result(scenario, query, &expected, &result, "post-index-death-dynamic")
        .map_err(|e| e.ctx("index death: state damaged"))?;
    report.checks += 1;
    Ok(())
}

/// The harness's self-test: deliberately drop one row from a dynamic
/// result and verify the oracle comparison *fails*. A differential
/// harness that cannot catch a missing row is worthless; this proves the
/// teeth are real. Returns `Ok` when the injected bug is caught.
pub fn mutation_check(start_seed: u64) -> Result<(), SimFailure> {
    for seed in start_seed..start_seed.saturating_add(32) {
        let scenario = Scenario::generate(seed);
        let queries = scenario.queries.clone();
        for q in &queries {
            let expected = oracle::expected_rids(&scenario, q);
            if expected.is_empty() {
                continue;
            }
            let mut q = q.clone();
            q.limit = None; // full-set comparison has the sharpest teeth
            scenario.cold();
            let result = DynamicOptimizer::default()
                .run(&scenario.request(&q))
                .map_err(|e| SimFailure::execution(format!("mutation check: dynamic run died: {e}")))?;
            let sscan_col = result.sscan_index.map(|pos| scenario.index_cols[pos]);
            let mut deliveries = result.deliveries;
            deliveries.pop(); // the deliberately injected row-set bug
            return match oracle::check_full(&scenario, &expected, &deliveries, sscan_col, "mutation") {
                Err(_) => Ok(()),
                Ok(()) => Err(SimFailure::mutation(format!(
                    "mutation check FAILED: oracle did not notice a dropped row (seed {seed})"
                ))),
            };
        }
    }
    Err(SimFailure::mutation(
        "mutation check could not find a non-empty retrieval in 32 seeds",
    ))
}
