//! The independent ground-truth evaluator.
//!
//! The oracle never touches the storage engine: it filters the shadow
//! `Vec` of rows with straight-line predicate evaluation — no indexes, no
//! cost model, no buffer pool. Anything the real executor returns is
//! differenced against this. The two implementations share nothing but
//! the [`Conjunct`] comparison rule, so a bug in either side shows up as
//! a mismatch instead of cancelling out.

use std::collections::HashMap;

use rdb_core::request::Delivery;
use rdb_storage::{Rid, Value};

use crate::failure::SimFailure;
use crate::scenario::{Conjunct, Query, Scenario, NUM_COLS};

/// RIDs of the rows matching the full predicate, in physical (RID) order.
pub fn expected_rids(scenario: &Scenario, query: &Query) -> Vec<Rid> {
    scenario
        .shadow
        .iter()
        .filter(|(_, row)| query.matches_row(row))
        .map(|(rid, _)| *rid)
        .collect()
}

/// RIDs matching only the given conjuncts (e.g. the indexed subset a
/// Jscan intersection is responsible for), in physical order.
pub fn expected_for_conjuncts(scenario: &Scenario, conjuncts: &[Conjunct]) -> Vec<Rid> {
    scenario
        .shadow
        .iter()
        .filter(|(_, row)| conjuncts.iter().all(|c| c.matches(&row[c.col])))
        .map(|(rid, _)| *rid)
        .collect()
}

fn sorted(mut rids: Vec<Rid>) -> Vec<Rid> {
    rids.sort_unstable();
    rids
}

/// Checks an *unlimited* run: the delivered RID set must equal the
/// expected set exactly (order ignored — physical vs key order both
/// legal), and every materialized record must match the shadow row
/// byte-for-byte. `sscan_col` is the key column when deliveries carry
/// index key tuples instead of full records.
pub fn check_full(
    scenario: &Scenario,
    expected: &[Rid],
    deliveries: &[Delivery],
    sscan_col: Option<usize>,
    what: &str,
) -> Result<(), SimFailure> {
    let got: Vec<Rid> = deliveries.iter().map(|d| d.rid).collect();
    if sorted(got) != sorted(expected.to_vec()) {
        return Err(SimFailure::row_set(format!(
            "{what}: row-set mismatch: got {} rows, expected {}",
            deliveries.len(),
            expected.len()
        )));
    }
    check_contents(scenario, deliveries, sscan_col, what)
}

/// Checks a *limited* run: deliveries must be a subset of the expected
/// set, without duplicates, of size `min(limit, expected)`.
pub fn check_limited(
    scenario: &Scenario,
    expected: &[Rid],
    deliveries: &[Delivery],
    limit: Option<usize>,
    sscan_col: Option<usize>,
    what: &str,
) -> Result<(), SimFailure> {
    match limit {
        None => return check_full(scenario, expected, deliveries, sscan_col, what),
        Some(limit) => {
            let want = expected.len().min(limit);
            if deliveries.len() != want {
                return Err(SimFailure::row_set(format!(
                    "{what}: limited run delivered {} rows, expected {want} (limit {limit}, {} qualifying)",
                    deliveries.len(),
                    expected.len()
                )));
            }
            let mut seen = std::collections::HashSet::new();
            for d in deliveries {
                if !expected.contains(&d.rid) {
                    return Err(SimFailure::row_set(format!("{what}: delivered non-qualifying row {}", d.rid)));
                }
                if !seen.insert(d.rid) {
                    return Err(SimFailure::row_set(format!("{what}: duplicate delivery of {}", d.rid)));
                }
            }
        }
    }
    check_contents(scenario, deliveries, sscan_col, what)
}

/// Verifies that every delivered record equals the shadow row it claims
/// to be — the partial-result-corruption check the fault injector leans
/// on: a run that returns `Ok` must not have smuggled damaged rows out.
fn check_contents(
    scenario: &Scenario,
    deliveries: &[Delivery],
    sscan_col: Option<usize>,
    what: &str,
) -> Result<(), SimFailure> {
    let by_rid: HashMap<Rid, &Vec<Value>> =
        scenario.shadow.iter().map(|(rid, row)| (*rid, row)).collect();
    for d in deliveries {
        let row = by_rid
            .get(&d.rid)
            .ok_or_else(|| SimFailure::row_set(format!("{what}: delivered unknown RID {}", d.rid)))?;
        match (&d.record, d.from_index, sscan_col) {
            (Some(rec), true, Some(col)) => {
                if rec[0] != row[col] {
                    return Err(SimFailure::contents(format!(
                        "{what}: index key tuple for {} is {:?}, shadow says {:?}",
                        d.rid, rec[0], row[col]
                    )));
                }
            }
            (Some(rec), false, _) => {
                for i in 0..NUM_COLS {
                    if rec[i] != row[i] {
                        return Err(SimFailure::contents(format!(
                            "{what}: record {} column {i} is {:?}, shadow says {:?}",
                            d.rid, rec[i], row[i]
                        )));
                    }
                }
            }
            // RID-only delivery (no record materialized): set membership
            // above is the whole check.
            (None, _, _) => {}
            (Some(_), true, None) => {
                return Err(SimFailure::contents(format!(
                    "{what}: from_index delivery but no self-sufficient index was offered"
                )));
            }
        }
    }
    Ok(())
}

/// Checks that delivered key-column values are non-decreasing — the order
/// contract of a forward index scan (Fscan/Sscan).
pub fn check_key_order(
    scenario: &Scenario,
    deliveries: &[Delivery],
    col: usize,
    what: &str,
) -> Result<(), SimFailure> {
    let by_rid: HashMap<Rid, &Vec<Value>> =
        scenario.shadow.iter().map(|(rid, row)| (*rid, row)).collect();
    let mut prev: Option<&Value> = None;
    for d in deliveries {
        let row = by_rid
            .get(&d.rid)
            .ok_or_else(|| SimFailure::row_set(format!("{what}: delivered unknown RID {}", d.rid)))?;
        let v = &row[col];
        if let Some(p) = prev {
            if p > v {
                return Err(SimFailure::order(format!(
                    "{what}: key order violated: {p:?} delivered before {v:?}"
                )));
            }
        }
        prev = Some(v);
    }
    Ok(())
}

/// Checks strictly increasing RID order — the order contract of a
/// sequential heap scan.
pub fn check_rid_order(deliveries: &[Delivery], what: &str) -> Result<(), SimFailure> {
    for pair in deliveries.windows(2) {
        if pair[0].rid >= pair[1].rid {
            return Err(SimFailure::order(format!(
                "{what}: physical order violated: {} before {}",
                pair[0].rid, pair[1].rid
            )));
        }
    }
    Ok(())
}
