//! Durable crash simulation: seeded on-disk worlds killed at arbitrary
//! points and recovered against a shadow oracle.
//!
//! One seed determines a mutation script (inserts, predicate deletes,
//! fuzzy checkpoints) over a file-backed database. The script runs under
//! a shadow oracle that records, **after every operation**, the exact
//! live row set and the WAL tip — the live segment's sequence number and
//! byte length — so any prefix of the history has a known ground truth
//! and a known on-disk boundary. Durable worlds open with a deliberately
//! tiny WAL segment cap (`WORLD_SEGMENT_BYTES`) so every script rotates
//! through many `wal-<seq>.rdb` segments and the cut styles land at and
//! across real segment boundaries. The campaign then replays the same
//! world under eight crash styles, each in its own directory:
//!
//! 1. **Clean close** — `close()` checkpoints; reopen must replay zero
//!    records and serve the full oracle.
//! 2. **Crash** — plain drop, no checkpoint; reopen rebuilds everything
//!    from the WAL (and the fault campaign then hammers the reopened
//!    database: every armed run either fails with the injected fault or
//!    returns exactly the oracle rows).
//! 3. **WAL boundary cut** — the live segment is truncated at the
//!    recorded boundary of operation *j* and every later segment is
//!    deleted; recovery must land on *exactly* the oracle state after
//!    operation *j*.
//! 4. **Ragged cut** — the segment is cut *mid-record*; the torn tail
//!    must be discarded silently (the open physically truncates the
//!    segment back to the clean boundary) and recovery lands on the
//!    preceding operation again.
//! 5. **Covered torn frame** — a checkpointed data frame whose full-page
//!    image survives in the WAL is corrupted; recovery must repair it
//!    from the image and serve the full oracle.
//! 6. **Uncovered torn frame** — a frame corrupted after a clean
//!    shutdown (empty WAL, nothing to repair from) must surface as a
//!    typed [`StorageError::TornPage`], never as wrong rows.
//! 7. **Non-final segment cut** — the cut lands inside segment *N* of a
//!    chain that rotated past it: segments after *N* are deleted and *N*
//!    is truncated at an operation boundary; recovery must replay the
//!    surviving chain across its segment boundaries and stop exactly at
//!    that operation's oracle state.
//! 8. **Stray rotated segment** — the crash window inside rotation: a
//!    fresh header-only segment exists after the final one, with no
//!    record written yet. Reopen must treat it as an empty log tail and
//!    serve the full oracle.
//!
//! Every check failure is a [`FailureKind::Durability`] with full replay
//! context. Like the other campaigns, a mutation smoke check proves the
//! oracle has teeth before any seeds run.

use std::fs;
use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdb_query::prelude::*;
use rdb_query::{CmpOp, Expr};
use rdb_storage::wal::decode_stream;
use rdb_storage::{FaultPolicy, FilePageStore, StorageError, WAL_SEGMENT_HEADER};

use crate::failure::SimFailure;
use crate::harness::SimConfig;

#[allow(unused_imports)] // rustdoc link target
use crate::failure::FailureKind;

/// One scripted mutation against the durable world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurableOp {
    /// Insert `(id, k)` into T.
    Insert {
        /// The (unique) ID column value.
        id: i64,
        /// The (skewed, indexed) K column value.
        k: i64,
    },
    /// Delete every row whose K equals `k` (exercises multi-victim
    /// deletes and index maintenance on the WAL path).
    DeleteK {
        /// The K value to delete.
        k: i64,
    },
    /// A fuzzy checkpoint: dirty pages flushed, WAL truncated.
    Checkpoint,
}

/// The seeded mutation script. Same seed, same script.
#[derive(Debug, Clone)]
pub struct DurableScenario {
    /// The generating seed.
    pub seed: u64,
    /// The mutation script, in execution order.
    pub ops: Vec<DurableOp>,
    /// K values are drawn from `0..k_dom`.
    pub k_dom: i64,
}

impl DurableScenario {
    /// Generates the script for `seed`: a bulk load, a guaranteed
    /// mid-script checkpoint (so later styles always have checkpointed
    /// frames to tear), then a mixed tail of inserts, deletes, and
    /// occasional extra checkpoints.
    pub fn generate(seed: u64) -> DurableScenario {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xA076_1D64_78BD_642F) ^ seed);
        let k_dom = rng.gen_range(3i64..=12);
        let n_init = rng.gen_range(60usize..=160);
        let n_tail = rng.gen_range(30usize..=80);
        let mut ops = Vec::with_capacity(n_init + n_tail + 1);
        let mut next_id = 0i64;
        let mut insert = |rng: &mut StdRng, ops: &mut Vec<DurableOp>| {
            ops.push(DurableOp::Insert {
                id: next_id,
                k: rng.gen_range(0..k_dom),
            });
            next_id += 1;
        };
        for _ in 0..n_init {
            insert(&mut rng, &mut ops);
        }
        // The guaranteed checkpoint: every page of the bulk load gets a
        // disk frame, and every later first-touch logs a full-page image.
        ops.push(DurableOp::Checkpoint);
        for _ in 0..n_tail {
            match rng.gen_range(0u32..10) {
                0..=6 => insert(&mut rng, &mut ops),
                7..=8 => ops.push(DurableOp::DeleteK {
                    k: rng.gen_range(0..k_dom),
                }),
                _ => ops.push(DurableOp::Checkpoint),
            }
        }
        DurableScenario { seed, ops, k_dom }
    }
}

/// What one seed's durable campaign did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurableReport {
    /// The seed.
    pub seed: u64,
    /// Operations in the script.
    pub ops: usize,
    /// Crash-and-recover scenarios executed (styles that ran).
    pub crashes: u64,
    /// Oracle comparisons performed against recovered databases.
    pub checks: u64,
    /// WAL records replayed across all recoveries.
    pub replayed: u64,
    /// Torn frames repaired from full-page images.
    pub torn_repaired: u64,
    /// Torn frames correctly surfaced as typed errors.
    pub torn_errors: u64,
    /// Queries run against a recovered database with faults armed.
    pub fault_runs: u64,
    /// Faulted runs that surfaced a clean injected-fault error.
    pub fault_errors: u64,
    /// Faulted runs that completed with a provably exact result.
    pub fault_ok: u64,
}

/// WAL segment cap for durable worlds: small enough that every script
/// rotates through many segments, so the cut styles exercise real
/// segment boundaries instead of one long file. Below a full-page-image
/// record (the worlds use 512-byte pages), so every first touch after a
/// checkpoint rotates; small delta records still pack several per
/// segment, keeping mid-segment boundaries in play too.
const WORLD_SEGMENT_BYTES: u64 = 512;

/// The oracle's trajectory through one execution of the script.
struct WorldRun {
    /// Live `(id, k)` rows after each operation.
    shadows: Vec<Vec<(i64, i64)>>,
    /// WAL tip after each operation: the live segment's sequence number
    /// and its byte length (a clean record boundary — appends are
    /// write-through).
    wal_marks: Vec<(u64, u64)>,
    /// Index of the last `Checkpoint` op, if any.
    last_checkpoint: Option<usize>,
}

fn exec_err(what: &str) -> impl FnOnce(QueryError) -> SimFailure + '_ {
    move |e| SimFailure::durability(format!("{what}: {e}"))
}

fn table_schema() -> Schema {
    Schema::new(vec![
        Column::new("ID", ValueType::Int),
        Column::new("K", ValueType::Int),
    ])
}

/// Builds the world at `dir` by running the full script, recording the
/// oracle trajectory. The caller decides how to kill the returned handle.
fn execute(
    dir: &Path,
    sc: &DurableScenario,
    pool_pages: Option<usize>,
) -> Result<(Db, WorldRun), SimFailure> {
    let _ = fs::remove_dir_all(dir);
    let mut builder = Db::builder()
        .path(dir)
        .page_bytes(512)
        .wal_segment_bytes(WORLD_SEGMENT_BYTES);
    if let Some(pages) = pool_pages {
        builder = builder.pool_pages(pages);
    }
    let mut db = builder.open().map_err(exec_err("open fresh world"))?;
    db.create_table("T", table_schema())
        .map_err(exec_err("create table"))?;
    db.create_index("IDX_K", "T", &["K"])
        .map_err(exec_err("create index"))?;

    let opts = QueryOptions::new();
    let mut shadow: Vec<(i64, i64)> = Vec::new();
    let mut run = WorldRun {
        shadows: Vec::with_capacity(sc.ops.len()),
        wal_marks: Vec::with_capacity(sc.ops.len()),
        last_checkpoint: None,
    };
    for (i, op) in sc.ops.iter().enumerate() {
        match *op {
            DurableOp::Insert { id, k } => {
                db.insert("T", vec![Value::Int(id), Value::Int(k)])
                    .map_err(exec_err("insert"))?;
                shadow.push((id, k));
            }
            DurableOp::DeleteK { k } => {
                let deleted = db
                    .delete_where("T", &Expr::cmp("K", CmpOp::Eq, k), &opts)
                    .map_err(exec_err("delete_where"))?;
                let before = shadow.len();
                shadow.retain(|&(_, sk)| sk != k);
                if deleted != before - shadow.len() {
                    return Err(SimFailure::durability(format!(
                        "op {i}: delete K={k} removed {deleted} rows, oracle says {}",
                        before - shadow.len()
                    )));
                }
            }
            DurableOp::Checkpoint => {
                db.checkpoint().map_err(exec_err("checkpoint"))?;
                run.last_checkpoint = Some(i);
            }
        }
        run.wal_marks.push(wal_mark(dir));
        run.shadows.push(shadow.clone());
    }
    Ok((db, run))
}

/// The WAL tip right now: the highest segment's sequence number and its
/// byte length. `(0, 0)` when no segment exists yet.
fn wal_mark(dir: &Path) -> (u64, u64) {
    FilePageStore::wal_segments(dir)
        .ok()
        .and_then(|segments| segments.into_iter().next_back())
        .and_then(|(seq, path)| fs::metadata(path).ok().map(|m| (seq, m.len())))
        .unwrap_or((0, 0))
}

/// Kills every WAL byte after the mark `(seq, len)`: later segments are
/// deleted outright and segment `seq` is truncated to `len` bytes —
/// exactly the on-disk state the oracle recorded at that boundary.
fn cut_wal_at(dir: &Path, seq: u64, len: u64, what: &str) -> Result<(), SimFailure> {
    let segments = FilePageStore::wal_segments(dir)
        .map_err(|e| SimFailure::durability(format!("{what}: list segments: {e}")))?;
    for (s, path) in segments {
        if s > seq {
            fs::remove_file(&path).map_err(|e| {
                SimFailure::durability(format!("{what}: remove segment {s}: {e}"))
            })?;
        } else if s == seq {
            let f = fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| SimFailure::durability(format!("{what}: open segment {s}: {e}")))?;
            f.set_len(len)
                .map_err(|e| SimFailure::durability(format!("{what}: truncate: {e}")))?;
        }
    }
    Ok(())
}

/// Sorted IDs delivered by `sql`.
fn ids(db: &Db, sql: &str, what: &str) -> Result<Vec<i64>, SimFailure> {
    let result = db
        .query(sql, &QueryOptions::new())
        .map_err(|e| SimFailure::durability(format!("{what}: query died: {e}")))?;
    let mut out: Vec<i64> = result
        .rows
        .iter()
        .map(|r| r.first().and_then(Value::as_i64).unwrap_or(i64::MIN))
        .collect();
    out.sort_unstable();
    Ok(out)
}

/// Differences a recovered database against an oracle snapshot: row
/// count, full scan, and an indexed predicate. Returns checks performed.
fn verify(db: &Db, shadow: &[(i64, i64)], k_dom: i64, what: &str) -> Result<u64, SimFailure> {
    let mut checks = 0u64;
    if db.row_count("T") != Some(shadow.len() as u64) {
        return Err(SimFailure::durability(format!(
            "{what}: row_count {:?}, oracle says {}",
            db.row_count("T"),
            shadow.len()
        )));
    }
    checks += 1;

    let got = ids(db, "select ID from T", what)?;
    let mut want: Vec<i64> = shadow.iter().map(|&(id, _)| id).collect();
    want.sort_unstable();
    if got != want {
        return Err(SimFailure::durability(format!(
            "{what}: full scan delivered {} rows ({:?}...), oracle has {} ({:?}...)",
            got.len(),
            got.iter().take(8).collect::<Vec<_>>(),
            want.len(),
            want.iter().take(8).collect::<Vec<_>>()
        )));
    }
    checks += 1;

    let mid = k_dom / 2;
    let got = ids(db, &format!("select ID from T where K >= {mid}"), what)?;
    let mut want: Vec<i64> = shadow
        .iter()
        .filter(|&&(_, k)| k >= mid)
        .map(|&(id, _)| id)
        .collect();
    want.sort_unstable();
    if got != want {
        return Err(SimFailure::durability(format!(
            "{what}: K >= {mid} delivered {} rows, oracle has {}",
            got.len(),
            want.len()
        )));
    }
    checks += 1;
    Ok(checks)
}

fn reopen(dir: &Path, what: &str) -> Result<Db, SimFailure> {
    Db::builder()
        .path(dir)
        .open()
        .map_err(|e| SimFailure::durability(format!("{what}: reopen died: {e}")))
}

fn world_dir(seed: u64, style: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "rdb-simtest-durable-{}-{seed}-{style}",
        std::process::id()
    ))
}

/// Picks the cut point for the WAL-cut styles: an operation after the
/// last checkpoint (earlier boundaries no longer exist — the checkpoint
/// truncated the log). Returns `None` when no such tail exists.
fn cut_index(sc: &DurableScenario, run: &WorldRun) -> Option<usize> {
    let first = run.last_checkpoint.map(|c| c + 1).unwrap_or(0);
    if first >= sc.ops.len() {
        return None;
    }
    // The midpoint of the surviving tail: deterministic, and far enough
    // from both ends that real records land on each side.
    Some(first + (sc.ops.len() - first) / 2)
}

/// Runs the full durable crash campaign for one seed.
pub fn run_durable_seed(seed: u64, cfg: &SimConfig) -> Result<DurableReport, SimFailure> {
    let sc = DurableScenario::generate(seed);
    let mut report = DurableReport {
        seed,
        ops: sc.ops.len(),
        ..DurableReport::default()
    };
    let ctx = |style: &str, what: &str| format!("seed {seed} durable [{style}] {what}");
    let final_shadow = |run: &WorldRun| run.shadows.last().cloned().unwrap_or_default();

    // 1. Clean close: checkpoint-at-shutdown, recovery replays nothing.
    {
        let dir = world_dir(seed, "clean");
        let (db, run) = execute(&dir, &sc, cfg.pool_pages)?;
        db.close()
            .map_err(|e| SimFailure::durability(ctx("clean", &format!("close died: {e}"))))?;
        let db = reopen(&dir, &ctx("clean", "after close"))?;
        let recovered = db.recovery_report().unwrap_or_default();
        if recovered.records_applied != 0 {
            return Err(SimFailure::durability(ctx(
                "clean",
                &format!(
                    "close checkpointed, yet recovery replayed {} records",
                    recovered.records_applied
                ),
            )));
        }
        report.checks += verify(&db, &final_shadow(&run), sc.k_dom, &ctx("clean", "verify"))?;
        report.crashes += 1;
        drop(db);
        let _ = fs::remove_dir_all(&dir);
    }

    // 2. Crash without checkpoint: the WAL is the only truth — and the
    // recovered database must survive the fault campaign.
    {
        let dir = world_dir(seed, "crash");
        let (db, run) = execute(&dir, &sc, cfg.pool_pages)?;
        drop(db); // the crash: no checkpoint, no close
        let db = reopen(&dir, &ctx("crash", "after drop"))?;
        let recovered = db.recovery_report().unwrap_or_default();
        report.replayed += recovered.records_applied;
        let shadow = final_shadow(&run);
        report.checks += verify(&db, &shadow, sc.k_dom, &ctx("crash", "verify"))?;
        report.crashes += 1;

        let sql = format!("select ID from T where K >= {}", sc.k_dom / 2);
        let mut want: Vec<i64> = shadow
            .iter()
            .filter(|&&(_, k)| k >= sc.k_dom / 2)
            .map(|&(id, _)| id)
            .collect();
        want.sort_unstable();
        for &rate in &cfg.fault_rates {
            let fault_seed = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ rate.to_bits();
            db.pool()
                .set_fault_policy(Some(FaultPolicy::random(fault_seed, rate)));
            db.clear_cache();
            let outcome = db.query(&sql, &QueryOptions::new());
            db.pool().set_fault_policy(None);
            report.fault_runs += 1;
            match outcome {
                Ok(result) => {
                    let mut got: Vec<i64> = result
                        .rows
                        .iter()
                        .map(|r| r.first().and_then(Value::as_i64).unwrap_or(i64::MIN))
                        .collect();
                    got.sort_unstable();
                    if got != want {
                        return Err(SimFailure::durability(ctx(
                            "crash",
                            &format!(
                                "fault rate {rate}: Ok run returned {} rows, oracle has {}",
                                got.len(),
                                want.len()
                            ),
                        )));
                    }
                    report.fault_ok += 1;
                    report.checks += 1;
                }
                Err(QueryError::Storage(StorageError::InjectedFault { .. })) => {
                    report.fault_errors += 1;
                }
                Err(e) => {
                    return Err(SimFailure::durability(ctx(
                        "crash",
                        &format!("fault rate {rate}: surfaced a non-injected error: {e}"),
                    )));
                }
            }
            // Aftermath: disarmed, the same query must be exact.
            db.clear_cache();
            let got = ids(&db, &sql, &ctx("crash", "post-fault"))?;
            if got != want {
                return Err(SimFailure::durability(ctx(
                    "crash",
                    "state damaged after disarming faults",
                )));
            }
            report.checks += 1;
        }
        drop(db);
        let _ = fs::remove_dir_all(&dir);
    }

    // 3 & 4. WAL cuts: truncate the log at (and then *inside*) a recorded
    // operation boundary; recovery must land exactly on that operation's
    // oracle snapshot.
    if let Some(j) = {
        let dir = world_dir(seed, "walcut");
        let (db, run) = execute(&dir, &sc, cfg.pool_pages)?;
        drop(db);
        let j = cut_index(&sc, &run);
        if let Some(j) = j {
            let (seq, len) = run.wal_marks[j];
            cut_wal_at(&dir, seq, len, &ctx("walcut", "cut"))?;
            let db = reopen(&dir, &ctx("walcut", &format!("cut at op {j}")))?;
            report.replayed += db.recovery_report().unwrap_or_default().records_applied;
            report.checks += verify(
                &db,
                &run.shadows[j],
                sc.k_dom,
                &ctx("walcut", &format!("verify at op {j}")),
            )?;
            report.crashes += 1;
        }
        let _ = fs::remove_dir_all(&dir);
        j
    } {
        // Ragged cut: re-grow the world, slice into the middle of the
        // record that follows boundary j — the torn tail must vanish.
        let dir = world_dir(seed, "ragged");
        let (db, run) = execute(&dir, &sc, cfg.pool_pages)?;
        drop(db);
        // Find a boundary at or after j whose successor op appended bytes
        // *into the same segment* (a no-op delete leaves nothing to tear
        // into, and a rotation puts the new record's bytes elsewhere).
        let grown = (j..run.wal_marks.len() - 1).find(|&i| {
            let ((s0, l0), (s1, l1)) = (run.wal_marks[i], run.wal_marks[i + 1]);
            s1 == s0 && l1 > l0
        });
        if let Some(i) = grown {
            let (seq, len) = run.wal_marks[i];
            let cut = len + (run.wal_marks[i + 1].1 - len).div_ceil(2);
            cut_wal_at(&dir, seq, cut, &ctx("ragged", "cut"))?;
            let db = reopen(&dir, &ctx("ragged", &format!("mid-record cut after op {i}")))?;
            // The open silently discards the torn tail *before* replay:
            // the segment must be physically back at the clean boundary.
            let seg_path = FilePageStore::segment_path(&dir, seq);
            let now = fs::metadata(&seg_path)
                .map(|m| m.len())
                .map_err(|e| SimFailure::durability(ctx("ragged", &format!("stat segment: {e}"))))?;
            if now != len {
                return Err(SimFailure::durability(ctx(
                    "ragged",
                    &format!(
                        "open left segment {seq} at {now} bytes; torn tail should \
                         be truncated back to the op-{i} boundary ({len})"
                    ),
                )));
            }
            report.replayed += db.recovery_report().unwrap_or_default().records_applied;
            report.checks += verify(
                &db,
                &run.shadows[i],
                sc.k_dom,
                &ctx("ragged", &format!("verify at op {i}")),
            )?;
            report.crashes += 1;
        }
        let _ = fs::remove_dir_all(&dir);
    }

    // 5. Covered torn frame: corrupt a checkpointed frame whose full-page
    // image survives in the WAL — recovery repairs it silently.
    {
        let dir = world_dir(seed, "covered");
        let (db, run) = execute(&dir, &sc, cfg.pool_pages)?;
        drop(db);
        if let Some((pid_file, pid_page)) = covered_frame(&dir)? {
            tear_frame(&dir, pid_file, pid_page, &ctx("covered", "tear"))?;
            let db = reopen(&dir, &ctx("covered", "after tear"))?;
            let recovered = db.recovery_report().unwrap_or_default();
            if recovered.pages_repaired == 0 {
                return Err(SimFailure::durability(ctx(
                    "covered",
                    "recovery reported no repaired pages for a torn covered frame",
                )));
            }
            report.torn_repaired += recovered.pages_repaired;
            report.replayed += recovered.records_applied;
            report.checks += verify(&db, &final_shadow(&run), sc.k_dom, &ctx("covered", "verify"))?;
            report.crashes += 1;
        }
        let _ = fs::remove_dir_all(&dir);
    }

    // 6. Uncovered torn frame: after a clean shutdown the WAL is empty,
    // so a corrupted frame has no repair source — the open must fail with
    // the typed error, never serve damaged rows.
    {
        let dir = world_dir(seed, "uncovered");
        let (db, _run) = execute(&dir, &sc, cfg.pool_pages)?;
        db.close()
            .map_err(|e| SimFailure::durability(ctx("uncovered", &format!("close died: {e}"))))?;
        tear_frame(&dir, 0, 0, &ctx("uncovered", "tear"))?;
        match Db::builder().path(&dir).open() {
            Ok(_) => {
                return Err(SimFailure::durability(ctx(
                    "uncovered",
                    "open succeeded on an unrepairable torn frame",
                )));
            }
            Err(QueryError::Storage(StorageError::TornPage { .. })) => {
                report.torn_errors += 1;
                report.crashes += 1;
            }
            Err(e) => {
                return Err(SimFailure::durability(ctx(
                    "uncovered",
                    &format!("open failed with the wrong error: {e}"),
                )));
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    // 7. Non-final segment cut: land the boundary cut inside a segment
    // the log rotated past, so recovery must cross the surviving segment
    // boundaries and then stop where the chain ends.
    {
        let dir = world_dir(seed, "segcut");
        let (db, run) = execute(&dir, &sc, cfg.pool_pages)?;
        drop(db);
        let final_seq = run.wal_marks.last().map(|&(s, _)| s).unwrap_or(0);
        let first = run.last_checkpoint.map(|c| c + 1).unwrap_or(0);
        // The last post-checkpoint op the log rotated past: its segment
        // still exists (checkpoints recycle only *released* segments, and
        // none ran after it), and at least one later segment gets cut.
        let m = (first..sc.ops.len())
            .rev()
            .find(|&m| run.wal_marks[m].0 < final_seq);
        if let Some(m) = m {
            let (seq, len) = run.wal_marks[m];
            cut_wal_at(&dir, seq, len, &ctx("segcut", "cut"))?;
            let db = reopen(
                &dir,
                &ctx("segcut", &format!("cut in segment {seq} at op {m}")),
            )?;
            report.replayed += db.recovery_report().unwrap_or_default().records_applied;
            report.checks += verify(
                &db,
                &run.shadows[m],
                sc.k_dom,
                &ctx("segcut", &format!("verify at op {m}")),
            )?;
            report.crashes += 1;
        }
        let _ = fs::remove_dir_all(&dir);
    }

    // 8. Stray rotated segment: the crash window inside rotation — the
    // fresh segment's header hit disk but no record followed. Reopen
    // must treat it as an empty log tail and serve the full oracle.
    {
        let dir = world_dir(seed, "stray");
        let (db, run) = execute(&dir, &sc, cfg.pool_pages)?;
        drop(db);
        let final_seq = run.wal_marks.last().map(|&(s, _)| s).unwrap_or(0);
        let stray = FilePageStore::segment_path(&dir, final_seq + 1);
        fs::write(&stray, FilePageStore::encode_segment_header(final_seq + 1))
            .map_err(|e| SimFailure::durability(ctx("stray", &format!("fabricate segment: {e}"))))?;
        let db = reopen(&dir, &ctx("stray", "after rotation crash"))?;
        report.replayed += db.recovery_report().unwrap_or_default().records_applied;
        report.checks += verify(&db, &final_shadow(&run), sc.k_dom, &ctx("stray", "verify"))?;
        report.crashes += 1;
        drop(db);
        let _ = fs::remove_dir_all(&dir);
    }

    Ok(report)
}

/// Finds a page whose full image survives in the WAL *and* whose disk
/// frame exists — the repairable-tear candidate.
fn covered_frame(dir: &Path) -> Result<Option<(u32, u32)>, SimFailure> {
    let segments = FilePageStore::wal_segments(dir)
        .map_err(|e| SimFailure::durability(format!("list wal segments for tear scan: {e}")))?;
    for (_, path) in segments {
        let bytes = fs::read(&path)
            .map_err(|e| SimFailure::durability(format!("read wal segment for tear scan: {e}")))?;
        let body = bytes.get(WAL_SEGMENT_HEADER..).unwrap_or(&[]);
        for (_, record) in decode_stream(body).entries {
            if let rdb_storage::WalRecord::PageImage { page, .. } = record {
                if frame_exists(dir, page.file.0, page.page) {
                    return Ok(Some((page.file.0, page.page)));
                }
            }
        }
    }
    Ok(None)
}

/// True when `page_no` of data file `file` has a written (non-hole) frame.
fn frame_exists(dir: &Path, file: u32, page_no: u32) -> bool {
    use rdb_storage::file_store::{FRAME_BYTES, FRAME_HEADER};
    let path = FilePageStore::data_path(dir, rdb_storage::FileId(file));
    let Ok(bytes) = fs::read(&path) else {
        return false;
    };
    let at = page_no as usize * FRAME_BYTES;
    // A written frame starts with the "RDBP" magic; holes are all-zero.
    bytes.get(at..at + FRAME_HEADER).is_some_and(|h| h[0] != 0)
}

/// Flips one payload byte of the given frame — the torn write.
fn tear_frame(dir: &Path, file: u32, page_no: u32, what: &str) -> Result<(), SimFailure> {
    use rdb_storage::file_store::{FRAME_BYTES, FRAME_HEADER};
    let path = FilePageStore::data_path(dir, rdb_storage::FileId(file));
    let mut bytes =
        fs::read(&path).map_err(|e| SimFailure::durability(format!("{what}: read: {e}")))?;
    let at = page_no as usize * FRAME_BYTES + FRAME_HEADER + 1;
    let Some(b) = bytes.get_mut(at) else {
        return Err(SimFailure::durability(format!(
            "{what}: frame ({file}, {page_no}) not in data file"
        )));
    };
    *b ^= 0xFF;
    fs::write(&path, &bytes).map_err(|e| SimFailure::durability(format!("{what}: write: {e}")))
}

/// The durable harness's self-test: recover a crashed world, tamper with
/// the oracle snapshot, and verify the differential comparison fails.
pub fn durable_mutation_check(start_seed: u64) -> Result<(), SimFailure> {
    let seed = start_seed;
    let sc = DurableScenario::generate(seed);
    let dir = world_dir(seed, "mutation");
    let (db, run) = execute(&dir, &sc, None)?;
    drop(db);
    let db = reopen(&dir, "mutation check")?;
    let mut shadow = run.shadows.last().cloned().unwrap_or_default();
    verify(&db, &shadow, sc.k_dom, "mutation check baseline")?;
    shadow.pop(); // the deliberately injected oracle divergence
    let caught = verify(&db, &shadow, sc.k_dom, "mutation").is_err();
    drop(db);
    let _ = fs::remove_dir_all(&dir);
    if caught {
        Ok(())
    } else {
        Err(SimFailure::mutation(format!(
            "durable mutation check FAILED: recovery verifier did not notice \
             a dropped oracle row (seed {seed})"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = DurableScenario::generate(7);
        let b = DurableScenario::generate(7);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.k_dom, b.k_dom);
    }

    #[test]
    fn script_always_contains_a_checkpoint() {
        for seed in 0..20 {
            let sc = DurableScenario::generate(seed);
            assert!(sc.ops.contains(&DurableOp::Checkpoint), "seed {seed}");
        }
    }

    #[test]
    fn one_seed_survives_all_crash_styles() {
        let report = run_durable_seed(0x5EED, &SimConfig::default()).unwrap();
        assert!(report.crashes >= 5, "styles ran: {report:#?}");
        assert!(report.replayed > 0, "some WAL replay happened");
        assert!(report.torn_errors >= 1, "uncovered tear surfaced typed error");
        assert!(report.checks > 0);
    }

    #[test]
    fn worlds_rotate_through_many_wal_segments() {
        let sc = DurableScenario::generate(0x5EED);
        let dir = world_dir(0x5EED, "rotation");
        let (db, run) = execute(&dir, &sc, None).unwrap();
        drop(db);
        let (final_seq, _) = *run.wal_marks.last().unwrap();
        assert!(
            final_seq >= 3,
            "the tiny segment cap should force rotation (final seq {final_seq})"
        );
        // The cut styles need post-checkpoint boundaries in non-final
        // segments — confirm the seed provides them.
        let first = run.last_checkpoint.map(|c| c + 1).unwrap_or(0);
        assert!(
            (first..sc.ops.len()).any(|m| run.wal_marks[m].0 < final_seq),
            "no post-checkpoint op in a non-final segment"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bounded_pool_world_still_survives_crash_styles() {
        let cfg = SimConfig {
            pool_pages: Some(16),
            ..SimConfig::default()
        };
        let report = run_durable_seed(0x5EED, &cfg).unwrap();
        assert!(report.crashes >= 5, "styles ran: {report:#?}");
        assert!(report.checks > 0);
    }

    #[test]
    fn mutation_check_has_teeth() {
        durable_mutation_check(0x5EED).unwrap();
    }
}
