//! Typed failure for the differential harness.
//!
//! Every public check in this crate reports a [`SimFailure`]: the check
//! *family* that tripped (a [`FailureKind`], matchable in tests and triage
//! scripts) plus the full human-readable detail — seed, thread, query
//! shape, strategy — needed to replay the failure. The `Display` form is
//! exactly the detail string, so the `simtest` binary's failure banners
//! are unchanged.

use std::error::Error;
use std::fmt;

/// The check family a [`SimFailure`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// Delivered row set differs from the oracle (missing, extra, or
    /// duplicated rows).
    RowSet,
    /// Delivery order broke a strategy's contract (key order, RID order).
    Order,
    /// A delivered record's contents differ from the shadow row.
    Contents,
    /// A strategy or optimizer run died with an unexpected storage error.
    Execution,
    /// A cost invariant (guaranteed-best multiple, first-row bound) was
    /// violated.
    CostBound,
    /// The traced event stream broke the telemetry contract.
    Trace,
    /// A fault campaign broke its contract: a non-injected error surfaced,
    /// a fault was attributed to the wrong file, or shared state stayed
    /// damaged after disarming.
    FaultContract,
    /// The multi-thread campaign itself failed (worker panic, session
    /// metering broken).
    Concurrency,
    /// The mutation smoke check could not prove the oracle has teeth.
    Mutation,
    /// A durable crash scenario broke its contract: recovery lost or
    /// invented rows, a torn frame slipped past the checksum, or an
    /// injected storage fault surfaced as anything but a typed error.
    Durability,
}

/// A differential-harness failure: which check family tripped, and the
/// full replay context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimFailure {
    /// The check family that tripped.
    pub kind: FailureKind,
    /// Full human-readable detail, including seed/query/strategy context.
    pub detail: String,
}

impl SimFailure {
    /// A failure of the given family.
    pub fn new(kind: FailureKind, detail: impl Into<String>) -> Self {
        SimFailure {
            kind,
            detail: detail.into(),
        }
    }

    /// Shorthand for [`FailureKind::RowSet`].
    pub fn row_set(detail: impl Into<String>) -> Self {
        SimFailure::new(FailureKind::RowSet, detail)
    }

    /// Shorthand for [`FailureKind::Order`].
    pub fn order(detail: impl Into<String>) -> Self {
        SimFailure::new(FailureKind::Order, detail)
    }

    /// Shorthand for [`FailureKind::Contents`].
    pub fn contents(detail: impl Into<String>) -> Self {
        SimFailure::new(FailureKind::Contents, detail)
    }

    /// Shorthand for [`FailureKind::Execution`].
    pub fn execution(detail: impl Into<String>) -> Self {
        SimFailure::new(FailureKind::Execution, detail)
    }

    /// Shorthand for [`FailureKind::CostBound`].
    pub fn cost_bound(detail: impl Into<String>) -> Self {
        SimFailure::new(FailureKind::CostBound, detail)
    }

    /// Shorthand for [`FailureKind::Trace`].
    pub fn trace(detail: impl Into<String>) -> Self {
        SimFailure::new(FailureKind::Trace, detail)
    }

    /// Shorthand for [`FailureKind::FaultContract`].
    pub fn fault_contract(detail: impl Into<String>) -> Self {
        SimFailure::new(FailureKind::FaultContract, detail)
    }

    /// Shorthand for [`FailureKind::Concurrency`].
    pub fn concurrency(detail: impl Into<String>) -> Self {
        SimFailure::new(FailureKind::Concurrency, detail)
    }

    /// Shorthand for [`FailureKind::Mutation`].
    pub fn mutation(detail: impl Into<String>) -> Self {
        SimFailure::new(FailureKind::Mutation, detail)
    }

    /// Shorthand for [`FailureKind::Durability`].
    pub fn durability(detail: impl Into<String>) -> Self {
        SimFailure::new(FailureKind::Durability, detail)
    }

    /// Prepends replay context (`"{prefix}: {detail}"`), keeping the kind.
    /// Used by the campaign drivers to layer seed/thread/query context
    /// onto a failure raised deep in the oracle.
    pub fn ctx(mut self, prefix: impl fmt::Display) -> Self {
        self.detail = format!("{prefix}: {}", self.detail);
        self
    }
}

impl fmt::Display for SimFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.detail)
    }
}

impl Error for SimFailure {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_layers_prefixes_and_keeps_the_kind() {
        let e = SimFailure::row_set("3 rows missing")
            .ctx("Tscan")
            .ctx("seed 7 query 2");
        assert_eq!(e.kind, FailureKind::RowSet);
        assert_eq!(e.to_string(), "seed 7 query 2: Tscan: 3 rows missing");
    }
}
