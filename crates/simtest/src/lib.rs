#![forbid(unsafe_code)]

//! # rdb-simtest
//!
//! Deterministic simulation harness for the dynamic-optimization stack.
//! A single `u64` seed reproduces an entire run bit-for-bit:
//!
//! * [`scenario`] grows a randomized table (skewed, clustered, correlated,
//!   NULL-heavy columns via `rdb-workload`) plus a batch of predicate
//!   workloads — point, narrow, wide, half-open, and *empty* ranges, with
//!   both optimization goals and row limits;
//! * [`oracle`] is an independent straight-line evaluator over a shadow
//!   copy of the rows — no indexes, no cost model, no buffer pool — the
//!   ground truth every strategy is differenced against;
//! * [`harness`] executes every retrieval through all four scan
//!   strategies (Tscan/Sscan/Fscan/Jscan), the static baselines, and the
//!   [`rdb_core::DynamicOptimizer`], checks row sets, delivery order, and
//!   record contents against the oracle, asserts cost invariants
//!   (guaranteed-best multiple, fast-first first-row bound), and then
//!   re-runs the dynamic optimizer under injected storage faults
//!   ([`rdb_storage::FaultPolicy`]) — verifying that every run either
//!   fails cleanly with [`rdb_storage::StorageError::InjectedFault`] or
//!   returns *exactly* the right rows, and that a dead index mid-Jscan
//!   degrades gracefully instead of corrupting the result.
//!
//! * [`join`] grows seeded *two-table* worlds (PK/FK-correlated, skewed,
//!   disjoint, and NULL-heavy key distributions), runs every generated
//!   join query through the SQL layer's join competition, and differences
//!   the rows against a naive nested-loop shadow oracle — plus a
//!   core-layer contract pass: dynamic join cost bounded by the best
//!   static join plan, and every killed candidate's partial pairs a
//!   subset of the true result (`--joins` on the binary).
//!
//! * [`durable`] grows seeded *on-disk* worlds, kills them at arbitrary
//!   points — clean close, hard crash, WAL boundary cuts, ragged
//!   mid-record cuts, torn data frames with and without a covering
//!   full-page image — and differences every recovered database against
//!   the shadow oracle's snapshot at the kill point, including a fault
//!   campaign over the recovered state (`--durable` on the binary).
//!
//! The `simtest` binary drives seed campaigns
//! (`cargo run -p rdb-simtest -- --seeds 500`) and replays a single
//! failing seed verbatim (`--replay <seed>`). A failing seed is printed
//! with the exact replay command. The harness also carries a built-in
//! mutation smoke check: it deliberately drops a row from a result and
//! asserts the oracle catches the difference, proving the differential
//! comparison has teeth.

pub mod concurrency;
pub mod durable;
pub mod failure;
pub mod harness;
pub mod join;
pub mod oracle;
pub mod scenario;

pub use concurrency::{concurrency_check, ConcurrencyReport};
pub use durable::{
    durable_mutation_check, run_durable_seed, DurableOp, DurableReport, DurableScenario,
};
pub use failure::{FailureKind, SimFailure};
pub use harness::{mutation_check, run_seed, SeedReport, SimConfig};
pub use join::{join_mutation_check, run_join_seed, JoinQuery, JoinReport, JoinScenario, KeyMode};
pub use scenario::{Conjunct, Query, Scenario};
