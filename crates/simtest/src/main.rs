//! `simtest` — seed-campaign driver for the simulation harness.
//!
//! ```text
//! cargo run -p rdb-simtest -- --seeds 500
//! cargo run -p rdb-simtest -- --replay 133742
//! cargo run -p rdb-simtest -- --seeds 64 --fault-rate 0.01
//! ```
//!
//! Every failure prints the offending seed and the exact `--replay`
//! command that reproduces it bit-for-bit.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

use rdb_simtest::{mutation_check, run_seed, SeedReport, SimConfig};

struct Args {
    seeds: u64,
    start_seed: u64,
    replay: Option<u64>,
    config: SimConfig,
    skip_mutation_check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 100,
        start_seed: 1,
        replay: None,
        config: SimConfig::default(),
        skip_mutation_check: false,
    };
    let mut rates: Vec<f64> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--seeds" => args.seeds = value("--seeds")?.parse().map_err(|e| format!("--seeds: {e}"))?,
            "--start-seed" => {
                args.start_seed = value("--start-seed")?
                    .parse()
                    .map_err(|e| format!("--start-seed: {e}"))?
            }
            "--replay" => {
                args.replay =
                    Some(value("--replay")?.parse().map_err(|e| format!("--replay: {e}"))?)
            }
            "--fault-rate" => rates.push(
                value("--fault-rate")?
                    .parse()
                    .map_err(|e| format!("--fault-rate: {e}"))?,
            ),
            "--cost-mult" => {
                args.config.cost_mult = value("--cost-mult")?
                    .parse()
                    .map_err(|e| format!("--cost-mult: {e}"))?
            }
            "--cost-slack" => {
                args.config.cost_slack = value("--cost-slack")?
                    .parse()
                    .map_err(|e| format!("--cost-slack: {e}"))?
            }
            "--skip-mutation-check" => args.skip_mutation_check = true,
            "--help" | "-h" => {
                println!(
                    "simtest: deterministic differential fuzzing of the dynamic optimizer\n\n\
                     USAGE: simtest [--seeds N] [--start-seed S] [--replay SEED]\n\
                            [--fault-rate R]... [--cost-mult M] [--cost-slack S]\n\
                            [--skip-mutation-check]\n\n\
                     Fault rates 0 < R < 1 arm random storage faults; the clean\n\
                     differential and a scoped index-death scenario always run.\n\
                     Default fault rates: 0.01 and 0.1."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    if !rates.is_empty() {
        for &r in &rates {
            if !(0.0..1.0).contains(&r) {
                return Err(format!("--fault-rate {r} out of [0, 1)"));
            }
        }
        args.config.fault_rates = rates.into_iter().filter(|&r| r > 0.0).collect();
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simtest: {e}");
            return ExitCode::from(2);
        }
    };

    if !args.skip_mutation_check {
        match mutation_check(args.replay.unwrap_or(args.start_seed)) {
            Ok(()) => println!("mutation smoke check: oracle caught the injected row drop"),
            Err(e) => {
                eprintln!("simtest: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let seeds: Vec<u64> = match args.replay {
        Some(seed) => vec![seed],
        None => (args.start_seed..args.start_seed + args.seeds).collect(),
    };

    let mut total = SeedReport::default();
    let mut failures: Vec<(u64, String)> = Vec::new();
    for &seed in &seeds {
        let outcome = catch_unwind(AssertUnwindSafe(|| run_seed(seed, &args.config)));
        match outcome {
            Ok(Ok(report)) => {
                if args.replay.is_some() {
                    println!("{report:#?}");
                }
                total.rows += report.rows;
                total.queries += report.queries;
                total.checks += report.checks;
                total.fault_runs += report.fault_runs;
                total.fault_errors += report.fault_errors;
                total.fault_ok += report.fault_ok;
                total.degraded_ok += report.degraded_ok;
                total.trace_checks += report.trace_checks;
            }
            Ok(Err(e)) => failures.push((seed, e)),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                failures.push((seed, format!("PANIC: {msg}")));
            }
        }
    }

    println!(
        "simtest: {} seeds, {} queries, {} oracle checks, {} trace-consistency checks, \
         {} faulted runs ({} clean errors, {} exact results, {} graceful index degradations)",
        seeds.len() - failures.len(),
        total.queries,
        total.checks,
        total.trace_checks,
        total.fault_runs,
        total.fault_errors,
        total.fault_ok,
        total.degraded_ok,
    );

    if failures.is_empty() {
        println!("simtest: all seeds passed");
        ExitCode::SUCCESS
    } else {
        for (seed, e) in &failures {
            eprintln!("simtest: seed {seed} FAILED: {e}");
            eprintln!("  replay with: cargo run -p rdb-simtest -- --replay {seed}");
        }
        eprintln!("simtest: {} of {} seeds failed", failures.len(), seeds.len());
        ExitCode::FAILURE
    }
}
