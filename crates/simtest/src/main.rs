//! `simtest` — seed-campaign driver for the simulation harness.
//!
//! ```text
//! cargo run -p rdb-simtest -- --seeds 500
//! cargo run -p rdb-simtest -- --replay 133742
//! cargo run -p rdb-simtest -- --seeds 64 --fault-rate 0.01
//! cargo run -p rdb-simtest -- --seeds 32 --threads 8
//! ```
//!
//! Every failure prints the offending seed and the exact `--replay`
//! command that reproduces it bit-for-bit.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

use rdb_simtest::{
    concurrency_check, durable_mutation_check, join_mutation_check, mutation_check,
    run_durable_seed, run_join_seed, run_seed, DurableReport, JoinReport, SeedReport, SimConfig,
};

struct Args {
    seeds: u64,
    start_seed: u64,
    replay: Option<u64>,
    threads: usize,
    joins: bool,
    durable: bool,
    config: SimConfig,
    skip_mutation_check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 100,
        start_seed: 1,
        replay: None,
        threads: 1,
        joins: false,
        durable: false,
        config: SimConfig::default(),
        skip_mutation_check: false,
    };
    let mut rates: Vec<f64> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--seeds" => args.seeds = value("--seeds")?.parse().map_err(|e| format!("--seeds: {e}"))?,
            "--start-seed" => {
                args.start_seed = value("--start-seed")?
                    .parse()
                    .map_err(|e| format!("--start-seed: {e}"))?
            }
            "--replay" => {
                args.replay =
                    Some(value("--replay")?.parse().map_err(|e| format!("--replay: {e}"))?)
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if args.threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--fault-rate" => rates.push(
                value("--fault-rate")?
                    .parse()
                    .map_err(|e| format!("--fault-rate: {e}"))?,
            ),
            "--cost-mult" => {
                args.config.cost_mult = value("--cost-mult")?
                    .parse()
                    .map_err(|e| format!("--cost-mult: {e}"))?
            }
            "--cost-slack" => {
                args.config.cost_slack = value("--cost-slack")?
                    .parse()
                    .map_err(|e| format!("--cost-slack: {e}"))?
            }
            "--pool-pages" => {
                let pages: usize = value("--pool-pages")?
                    .parse()
                    .map_err(|e| format!("--pool-pages: {e}"))?;
                if pages == 0 {
                    return Err("--pool-pages must be at least 1".into());
                }
                args.config.pool_pages = Some(pages);
            }
            "--joins" => args.joins = true,
            "--durable" => args.durable = true,
            "--skip-mutation-check" => args.skip_mutation_check = true,
            "--help" | "-h" => {
                println!(
                    "simtest: deterministic differential fuzzing of the dynamic optimizer\n\n\
                     USAGE: simtest [--seeds N] [--start-seed S] [--replay SEED]\n\
                            [--threads T] [--joins] [--durable] [--fault-rate R]...\n\
                            [--cost-mult M] [--cost-slack S] [--pool-pages P]\n\
                            [--skip-mutation-check]\n\n\
                     Fault rates 0 < R < 1 arm random storage faults; the clean\n\
                     differential and a scoped index-death scenario always run.\n\
                     Default fault rates: 0.01 and 0.1.\n\
                     --threads T (T >= 2) additionally runs each seed's query\n\
                     batch concurrently on T OS threads over the shared engine,\n\
                     differencing every thread against the sequential oracle —\n\
                     with and without storage faults armed.\n\
                     --joins runs the multi-table campaign instead: seeded\n\
                     two-table worlds whose join queries race the join\n\
                     competition and are differenced against a naive\n\
                     nested-loop shadow oracle.\n\
                     --durable runs the crash campaign instead: seeded\n\
                     on-disk worlds killed at arbitrary points (clean close,\n\
                     hard crash, WAL segment boundary/mid-record cuts, torn\n\
                     data frames, rotation-window crashes) whose recovered\n\
                     state is differenced against the shadow oracle's\n\
                     snapshot at the kill point.\n\
                     --pool-pages P caps the durable worlds' buffer pool at\n\
                     P pages, forcing the beyond-RAM regime during recovery\n\
                     and verification."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    if !rates.is_empty() {
        for &r in &rates {
            if !(0.0..1.0).contains(&r) {
                return Err(format!("--fault-rate {r} out of [0, 1)"));
            }
        }
        args.config.fault_rates = rates.into_iter().filter(|&r| r > 0.0).collect();
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simtest: {e}");
            return ExitCode::from(2);
        }
    };

    if args.joins {
        return run_joins_campaign(&args);
    }
    if args.durable {
        return run_durable_campaign(&args);
    }

    if !args.skip_mutation_check {
        match mutation_check(args.replay.unwrap_or(args.start_seed)) {
            Ok(()) => println!("mutation smoke check: oracle caught the injected row drop"),
            Err(e) => {
                eprintln!("simtest: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let seeds: Vec<u64> = match args.replay {
        Some(seed) => vec![seed],
        None => (args.start_seed..args.start_seed + args.seeds).collect(),
    };

    let mut total = SeedReport::default();
    let mut threaded_queries = 0u64;
    let mut threaded_checks = 0u64;
    let mut threaded_fault_runs = 0u64;
    let mut failures: Vec<(u64, String)> = Vec::new();
    for &seed in &seeds {
        let outcome = catch_unwind(AssertUnwindSafe(|| run_seed(seed, &args.config)));
        match outcome {
            Ok(Ok(report)) => {
                if args.replay.is_some() {
                    println!("{report:#?}");
                }
                total.rows += report.rows;
                total.queries += report.queries;
                total.checks += report.checks;
                total.fault_runs += report.fault_runs;
                total.fault_errors += report.fault_errors;
                total.fault_ok += report.fault_ok;
                total.degraded_ok += report.degraded_ok;
                total.trace_checks += report.trace_checks;
                total.prepared_checks += report.prepared_checks;
            }
            Ok(Err(e)) => {
                failures.push((seed, format!("[{:?}] {e}", e.kind)));
                continue;
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                failures.push((seed, format!("PANIC: {msg}")));
                continue;
            }
        }
        if args.threads >= 2 {
            let threads = args.threads;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                concurrency_check(seed, threads, &args.config)
            }));
            match outcome {
                Ok(Ok(report)) => {
                    if args.replay.is_some() {
                        println!("{report:#?}");
                    }
                    threaded_queries += report.queries_run;
                    threaded_checks += report.checks;
                    threaded_fault_runs += report.fault_runs;
                    total.fault_errors += report.fault_errors;
                    total.fault_ok += report.fault_ok;
                }
                Ok(Err(e)) => failures.push((seed, format!("[{threads} threads] [{:?}] {e}", e.kind))),
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into());
                    failures.push((seed, format!("[{threads} threads] PANIC: {msg}")));
                }
            }
        }
    }

    println!(
        "simtest: {} seeds, {} queries, {} oracle checks, {} trace-consistency checks, \
         {} prepared-mode checks, {} faulted runs ({} clean errors, {} exact results, \
         {} graceful index degradations)",
        seeds.len() - failures.len(),
        total.queries,
        total.checks,
        total.trace_checks,
        total.prepared_checks,
        total.fault_runs,
        total.fault_errors,
        total.fault_ok,
        total.degraded_ok,
    );
    if args.threads >= 2 {
        println!(
            "simtest: concurrency on {} threads — {} threaded queries, {} oracle checks, \
             {} faulted threaded runs",
            args.threads, threaded_queries, threaded_checks, threaded_fault_runs,
        );
    }

    if failures.is_empty() {
        println!("simtest: all seeds passed");
        ExitCode::SUCCESS
    } else {
        for (seed, e) in &failures {
            eprintln!("simtest: seed {seed} FAILED: {e}");
            eprintln!("  replay with: cargo run -p rdb-simtest -- --replay {seed}");
        }
        eprintln!("simtest: {} of {} seeds failed", failures.len(), seeds.len());
        ExitCode::FAILURE
    }
}

/// The multi-table campaign: every seed grows a two-table world and runs
/// its join queries through the SQL layer's join competition, differenced
/// against the naive nested-loop shadow oracle (see `rdb_simtest::join`).
fn run_joins_campaign(args: &Args) -> ExitCode {
    if !args.skip_mutation_check {
        match join_mutation_check(args.replay.unwrap_or(args.start_seed)) {
            Ok(()) => println!("join mutation smoke check: oracle caught the injected row drop"),
            Err(e) => {
                eprintln!("simtest: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let seeds: Vec<u64> = match args.replay {
        Some(seed) => vec![seed],
        None => (args.start_seed..args.start_seed + args.seeds).collect(),
    };

    let mut total = JoinReport::default();
    let mut failures: Vec<(u64, String)> = Vec::new();
    for &seed in &seeds {
        let outcome = catch_unwind(AssertUnwindSafe(|| run_join_seed(seed, &args.config)));
        match outcome {
            Ok(Ok(report)) => {
                if args.replay.is_some() {
                    println!("{report:#?}");
                }
                total.left_rows += report.left_rows;
                total.right_rows += report.right_rows;
                total.queries += report.queries;
                total.checks += report.checks;
                total.cost_checks += report.cost_checks;
                total.containment_checks += report.containment_checks;
                total.fault_runs += report.fault_runs;
                total.fault_errors += report.fault_errors;
                total.fault_ok += report.fault_ok;
            }
            Ok(Err(e)) => failures.push((seed, format!("[{:?}] {e}", e.kind))),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                failures.push((seed, format!("PANIC: {msg}")));
            }
        }
    }

    println!(
        "simtest joins: {} seeds, {} join queries, {} oracle checks, {} cost-bound checks, \
         {} containment checks, {} faulted runs ({} clean errors, {} exact results)",
        seeds.len() - failures.len(),
        total.queries,
        total.checks,
        total.cost_checks,
        total.containment_checks,
        total.fault_runs,
        total.fault_errors,
        total.fault_ok,
    );

    if failures.is_empty() {
        println!("simtest joins: all seeds passed");
        ExitCode::SUCCESS
    } else {
        for (seed, e) in &failures {
            eprintln!("simtest joins: seed {seed} FAILED: {e}");
            eprintln!("  replay with: cargo run -p rdb-simtest -- --joins --replay {seed}");
        }
        eprintln!(
            "simtest joins: {} of {} seeds failed",
            failures.len(),
            seeds.len()
        );
        ExitCode::FAILURE
    }
}

/// The durable crash campaign: every seed grows an on-disk world, kills
/// it eight ways, and differences each recovered database against the
/// shadow oracle's snapshot at the kill point (see `rdb_simtest::durable`).
fn run_durable_campaign(args: &Args) -> ExitCode {
    if !args.skip_mutation_check {
        match durable_mutation_check(args.replay.unwrap_or(args.start_seed)) {
            Ok(()) => println!(
                "durable mutation smoke check: recovery verifier caught the dropped oracle row"
            ),
            Err(e) => {
                eprintln!("simtest: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let seeds: Vec<u64> = match args.replay {
        Some(seed) => vec![seed],
        None => (args.start_seed..args.start_seed + args.seeds).collect(),
    };

    let mut total = DurableReport::default();
    let mut failures: Vec<(u64, String)> = Vec::new();
    for &seed in &seeds {
        let outcome = catch_unwind(AssertUnwindSafe(|| run_durable_seed(seed, &args.config)));
        match outcome {
            Ok(Ok(report)) => {
                if args.replay.is_some() {
                    println!("{report:#?}");
                }
                total.ops += report.ops;
                total.crashes += report.crashes;
                total.checks += report.checks;
                total.replayed += report.replayed;
                total.torn_repaired += report.torn_repaired;
                total.torn_errors += report.torn_errors;
                total.fault_runs += report.fault_runs;
                total.fault_errors += report.fault_errors;
                total.fault_ok += report.fault_ok;
            }
            Ok(Err(e)) => failures.push((seed, format!("[{:?}] {e}", e.kind))),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                failures.push((seed, format!("PANIC: {msg}")));
            }
        }
    }

    println!(
        "simtest durable: {} seeds, {} ops, {} crash recoveries, {} oracle checks, \
         {} WAL records replayed, {} torn frames repaired, {} unrepairable tears \
         surfaced as typed errors, {} faulted runs ({} clean errors, {} exact results)",
        seeds.len() - failures.len(),
        total.ops,
        total.crashes,
        total.checks,
        total.replayed,
        total.torn_repaired,
        total.torn_errors,
        total.fault_runs,
        total.fault_errors,
        total.fault_ok,
    );

    if failures.is_empty() {
        println!("simtest durable: all seeds passed");
        ExitCode::SUCCESS
    } else {
        for (seed, e) in &failures {
            eprintln!("simtest durable: seed {seed} FAILED: {e}");
            eprintln!("  replay with: cargo run -p rdb-simtest -- --durable --replay {seed}");
        }
        eprintln!(
            "simtest durable: {} of {} seeds failed",
            failures.len(),
            seeds.len()
        );
        ExitCode::FAILURE
    }
}
