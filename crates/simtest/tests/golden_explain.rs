//! Golden-file pin of the rendered `EXPLAIN ANALYZE` competition timeline.
//!
//! The engine is deterministic end to end — same data, same costs, same
//! decisions — so the full rendered timeline of a pinned database is a
//! legitimate regression artifact: any drift in estimation, competition
//! ordering, phase accounting, or the renderer shows up as a diff here.
//! Re-bless intentionally with `UPDATE_GOLDEN=1 cargo test -p rdb-simtest`.

use std::path::Path;

use rdb_query::prelude::*;

/// A pinned FAMILIES table (LCG-generated, fixed seed) with indexes on AGE
/// and SIZE — enough structure for a real index competition.
fn pinned_db() -> Db {
    let mut db = Db::builder().page_bytes(1024).open().unwrap();
    db.create_table(
        "FAMILIES",
        Schema::new(vec![
            Column::new("ID", ValueType::Int),
            Column::new("AGE", ValueType::Int),
            Column::new("SIZE", ValueType::Int),
        ]),
    )
    .unwrap();
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for i in 0..4000i64 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let age = ((state >> 33) % 100) as i64;
        db.insert(
            "FAMILIES",
            vec![Value::Int(i), Value::Int(age), Value::Int(i % 7)],
        )
        .unwrap();
    }
    db.create_index("IDX_AGE", "FAMILIES", &["AGE"]).unwrap();
    db.create_index("IDX_SIZE", "FAMILIES", &["SIZE"]).unwrap();
    db
}

/// A pinned two-table world (LCG-generated, fixed seed): PARENT(ID, KIND)
/// with a unique-key index, CHILD(FK, X) with an FK index — every join
/// method and orientation is feasible, so the join competition timeline
/// exercises estimates, kills, and the winner.
fn pinned_join_db() -> Db {
    let mut db = Db::builder().page_bytes(1024).open().unwrap();
    db.create_table(
        "PARENT",
        Schema::new(vec![
            Column::new("ID", ValueType::Int),
            Column::new("KIND", ValueType::Int),
        ]),
    )
    .unwrap();
    db.create_table(
        "CHILD",
        Schema::new(vec![
            Column::new("FK", ValueType::Int),
            Column::new("X", ValueType::Int),
        ]),
    )
    .unwrap();
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for i in 0..300i64 {
        db.insert("PARENT", vec![Value::Int(i), Value::Int((next() % 5) as i64)])
            .unwrap();
    }
    for _ in 0..900 {
        let fk = (next() % 300) as i64;
        let x = (next() % 10) as i64;
        db.insert("CHILD", vec![Value::Int(fk), Value::Int(x)]).unwrap();
    }
    db.create_index("IDX_P_ID", "PARENT", &["ID"]).unwrap();
    db.create_index("IDX_C_FK", "CHILD", &["FK"]).unwrap();
    db
}

#[test]
fn explain_analyze_timeline_matches_golden() {
    let db = pinned_db();
    db.clear_cache();
    let sql = "select ID from FAMILIES where AGE >= 97 and SIZE = 3";
    let ea = db.explain_analyze(sql, &QueryOptions::new()).unwrap();
    let rendered = ea.render();

    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/explain_analyze.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &rendered).unwrap();
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {}: {e}\nbless it with: UPDATE_GOLDEN=1 cargo test -p rdb-simtest",
            golden_path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "EXPLAIN ANALYZE timeline drifted from the golden file; if the change \
         is intended, re-bless with UPDATE_GOLDEN=1"
    );

    // The machine-readable form carries the same run: winner, phase costs,
    // and per-event records.
    let json = ea.to_json();
    assert!(json.contains("\"event\":\"tactic_chosen\""), "{json}");
    assert!(json.contains("\"event\":\"winner\""), "{json}");
    assert!(json.contains("\"event\":\"phase_cost\""), "{json}");
    assert!(json.contains("\"pool\":{"), "{json}");
}

#[test]
fn explain_analyze_join_timeline_matches_golden() {
    let db = pinned_join_db();
    db.clear_cache();
    let sql = "select PARENT.ID, CHILD.X from PARENT, CHILD \
               where PARENT.ID = CHILD.FK and CHILD.X < 3 and PARENT.KIND = 2";
    let ea = db.explain_analyze(sql, &QueryOptions::new()).unwrap();
    let rendered = ea.render();

    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/explain_analyze_join.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &rendered).unwrap();
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {}: {e}\nbless it with: UPDATE_GOLDEN=1 cargo test -p rdb-simtest",
            golden_path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "join EXPLAIN ANALYZE timeline drifted from the golden file; if the \
         change is intended, re-bless with UPDATE_GOLDEN=1"
    );

    // The join competition's trace must be present end to end: candidate
    // estimates, the raced methods, and a join winner tiling the cost.
    let json = ea.to_json();
    assert!(json.contains("\"event\":\"winner\""), "{json}");
    assert!(json.contains("join"), "{json}");
}
