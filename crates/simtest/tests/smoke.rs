//! Bounded harness runs wired into the normal test suite: a small seed
//! campaign, determinism of the report, the mutation smoke check, and the
//! graceful-degradation and workload-coverage guarantees.

use rdb_simtest::{mutation_check, run_seed, Scenario, SimConfig};
use rdb_storage::Value;

#[test]
fn small_seed_campaign_is_clean() {
    let cfg = SimConfig::default();
    for seed in 1..=12 {
        run_seed(seed, &cfg).unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn same_seed_yields_identical_report() {
    let cfg = SimConfig::default();
    let a = run_seed(42, &cfg).expect("seed 42 clean");
    let b = run_seed(42, &cfg).expect("seed 42 clean");
    assert_eq!(a, b, "replay must be bit-for-bit deterministic");
}

#[test]
fn mutation_is_caught_by_the_oracle() {
    mutation_check(7).expect("a dropped row must not survive the differential");
}

#[test]
fn index_death_degrades_gracefully_somewhere() {
    let cfg = SimConfig {
        fault_rates: vec![],
        ..SimConfig::default()
    };
    let degraded: u64 = (1..=10)
        .map(|seed| run_seed(seed, &cfg).expect("clean seed").degraded_ok)
        .sum();
    assert!(
        degraded >= 1,
        "at least one seed must exercise the mid-competition index discard"
    );
}

#[test]
fn workload_covers_empty_ranges_and_nulls() {
    let mut saw_empty_result = false;
    let mut saw_null = false;
    let mut saw_two_conjuncts = false;
    for seed in 1..=16 {
        let sc = Scenario::generate(seed);
        saw_null |= sc
            .shadow
            .iter()
            .any(|(_, row)| row.contains(&Value::Null));
        for q in &sc.queries {
            saw_two_conjuncts |= q.conjuncts.len() == 2;
            saw_empty_result |= !sc.shadow.iter().any(|(_, row)| q.matches_row(row));
        }
    }
    assert!(saw_empty_result, "no generated query had an empty result");
    assert!(saw_null, "no generated table had a NULL-heavy column");
    assert!(saw_two_conjuncts, "no generated query had two conjuncts");
}
