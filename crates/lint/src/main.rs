//! CLI driver for `rdb-lint`. See the library crate docs for the rule
//! table and policy model.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use rdb_lint::emit;
use rdb_lint::policy::Policy;
use rdb_lint::ratchet;
use rdb_lint::rules;

const USAGE: &str = "\
rdb-lint: workspace static-analysis policy pass

USAGE: cargo run -p rdb-lint [-- OPTIONS]

OPTIONS:
    --json               emit diagnostics as a JSON array
    --check-allowlists   run only the allowlist-staleness rules (X001)
    --update-ratchet     rewrite lint-ratchet.toml from a fresh count
    --root PATH          workspace root (default: inferred)
    -h, --help           show this help
";

fn main() -> ExitCode {
    let mut json = false;
    let mut allowlists_only = false;
    let mut update_ratchet = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--check-allowlists" => allowlists_only = true,
            "--update-ratchet" => update_ratchet = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = root.unwrap_or_else(default_root);
    let policy = Policy::repo(root);
    let files = match rules::load_workspace(&policy) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("rdb-lint: cannot walk {}: {e}", policy.root.display());
            return ExitCode::from(2);
        }
    };

    if update_ratchet {
        let fresh = rules::fresh_ratchet(&files, &policy);
        let total: u64 = fresh.values().sum();
        let path = policy.root.join(&policy.ratchet_path);
        if let Err(e) = fs::write(&path, ratchet::render(&fresh)) {
            eprintln!("rdb-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} ({} files, {} panic-prone tokens)",
            policy.ratchet_path,
            fresh.len(),
            total
        );
        return ExitCode::SUCCESS;
    }

    let diags = if allowlists_only {
        let mut diags = Vec::new();
        rules::check_allowlists(&files, &policy, &mut diags);
        diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        diags
    } else {
        rules::lint(&files, &policy)
    };

    if json {
        println!("{}", emit::render_json(&diags));
    } else {
        for d in &diags {
            if d.line == 0 {
                println!("{} [{}] {}", d.file, d.rule, d.message);
            } else {
                println!("{}:{} [{}] {}", d.file, d.line, d.rule, d.message);
            }
            println!("    hint: {}", d.hint);
        }
        if diags.is_empty() {
            println!(
                "rdb-lint: {} files clean ({} rule families)",
                files.len(),
                rules::FAMILIES
            );
        } else {
            println!("rdb-lint: {} policy violation(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Workspace root: `$CARGO_MANIFEST_DIR/../..` under `cargo run`, else
/// the nearest ancestor of the current directory holding `Cargo.toml`.
fn default_root() -> PathBuf {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(root) = p.parent().and_then(|p| p.parent()) {
            return root.to_path_buf();
        }
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
