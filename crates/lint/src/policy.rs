//! The repo's code policy, expressed as data.
//!
//! Everything the rules need to know about *this* workspace — which file
//! may use `unsafe`, which modules own atomics, which scan modules must
//! expose fallible entry points — lives here, in one place, so a policy
//! change is a reviewed diff rather than folklore. Every allowlist entry
//! is itself checked for staleness (rule `X001`): an exemption that no
//! longer matches anything fails the lint run, so dead carve-outs cannot
//! linger.

use std::path::PathBuf;

/// Workspace-relative policy configuration consumed by [`crate::rules`].
#[derive(Debug, Clone)]
pub struct Policy {
    /// Workspace root (the directory holding the root `Cargo.toml`).
    pub root: PathBuf,
    /// Path prefixes (relative, `/`-separated) excluded from the walk.
    pub exclude: Vec<String>,
    /// Files allowed to contain `unsafe` at all. A crate whose `src/`
    /// holds an entry here is also the only kind of crate exempt from the
    /// `#![forbid(unsafe_code)]` crate-root requirement.
    pub unsafe_allowlist: Vec<String>,
    /// Library modules allowed to use `std::sync::atomic::Ordering`.
    pub atomics_allowlist: Vec<String>,
    /// Library modules allowed to hold per-session deferred state in
    /// `thread_local!` buffers. Each such module must also carry a `Drop`
    /// guard that absorbs pending counters on every exit path (rule
    /// `D002`).
    pub deferred_allowlist: Vec<String>,
    /// Lines above a `Relaxed` use searched for a justification comment.
    pub relaxed_window: usize,
    /// Lines above an `unsafe` searched for a `SAFETY:` comment.
    pub safety_window: usize,
    /// Library files allowed to print to stdout (designated reporters).
    pub print_allowlist: Vec<String>,
    /// Planning/estimation modules that must stay infallible: no
    /// `try_access`, no `StorageError`. Entries are files or dir prefixes.
    pub planning_modules: Vec<String>,
    /// Scan modules whose `pub fn step/run/execute*` must return `Result`.
    pub scan_entry_files: Vec<String>,
    /// `(file, fn)` pairs exempt from the scan-entry rule, with a reason.
    pub scan_entry_exempt: Vec<(String, String, String)>,
    /// Sync-facade modules: the only library files allowed to issue raw
    /// atomic operations on the protected concurrency fields (the seqlock
    /// mirror, the WAL publication frontier, the deferred tallies). Rule
    /// `S003` flags facade-bypassing atomics anywhere else.
    pub facade_modules: Vec<String>,
    /// Files/prefixes whose panic tokens are counted against the ratchet.
    pub ratchet_scope: Vec<String>,
    /// The committed ratchet baseline, relative to `root`.
    pub ratchet_path: String,
}

impl Policy {
    /// The policy for this repository.
    pub fn repo(root: PathBuf) -> Policy {
        Policy {
            root,
            exclude: vec![
                "vendor/".into(),
                "target/".into(),
                // The lint tool's own rule fixtures are violations by
                // construction.
                "crates/lint/tests/fixtures/".into(),
            ],
            unsafe_allowlist: vec![
                // Open-addressed buffer pool: bounds-proven unchecked slot
                // access on the hot probe path (see the SAFETY comments).
                "crates/storage/src/buffer.rs".into(),
                // Seqlock probe mirror: the same bounds-proven unchecked
                // walk, factored out of the pool behind the Sync facade.
                "crates/storage/src/mirror.rs".into(),
                // Model-checker facade: ghost state and modeled mutex
                // cells are `UnsafeCell`s made sound by the engine's
                // one-virtual-thread-at-a-time baton (SAFETY comments).
                "crates/check/src/sync.rs".into(),
                // Counting global allocator used by the zero-allocation
                // proof; `GlobalAlloc` is an unsafe trait.
                "crates/core/tests/alloc_free.rs".into(),
            ],
            atomics_allowlist: vec![
                // Lock-free cost metering.
                "crates/storage/src/cost.rs".into(),
                // Sharded pool: fault-policy arming flag and contention
                // counter.
                "crates/storage/src/buffer.rs".into(),
                // Seqlock probe mirror: the fence-based reader/writer
                // protocol, generic over the Sync facade.
                "crates/storage/src/mirror.rs".into(),
                // WAL tail: the allocate/publish LSN handoff.
                "crates/storage/src/lsn.rs".into(),
                // Per-session deferred touch buffers: the shared
                // absorption tally behind the lock-free hit path.
                "crates/storage/src/touch.rs".into(),
                // Background-stage abandon flag.
                "crates/core/src/parallel.rs".into(),
                // The model checker's ordering interpreter: it *consumes*
                // `Ordering` values to simulate them.
                "crates/check/src/engine.rs".into(),
            ],
            deferred_allowlist: vec![
                // The one home of per-session deferred counters; its
                // `PoolLocal` drop guard absorbs pending tallies on every
                // exit path.
                "crates/storage/src/touch.rs".into(),
                // The checker's per-OS-thread virtual-thread identity
                // (`CURRENT`), uninstalled by the `CurrentGuard` drop.
                "crates/check/src/engine.rs".into(),
            ],
            relaxed_window: 8,
            safety_window: 5,
            print_allowlist: vec![
                // The experiment harness's designated table printer.
                "crates/bench/src/report.rs".into(),
            ],
            planning_modules: vec![
                "crates/core/src/initial.rs".into(),
                // Join cost/cardinality model: estimation never touches
                // fallible storage, same contract as the scan estimators.
                "crates/core/src/join/estimate.rs".into(),
                "crates/btree/src/estimate.rs".into(),
                "crates/btree/src/histogram.rs".into(),
                "crates/btree/src/stats.rs".into(),
                "crates/dist/src/".into(),
            ],
            scan_entry_files: vec![
                // Durable backend: every page-store/WAL/recovery entry
                // point is on the real-I/O path and must surface typed
                // errors, never panic.
                "crates/storage/src/store.rs".into(),
                "crates/storage/src/file_store.rs".into(),
                "crates/storage/src/wal.rs".into(),
                "crates/storage/src/durable.rs".into(),
                "crates/core/src/tscan.rs".into(),
                "crates/core/src/sscan.rs".into(),
                "crates/core/src/fscan.rs".into(),
                "crates/core/src/jscan.rs".into(),
                "crates/core/src/union.rs".into(),
                "crates/core/src/dynamic.rs".into(),
                "crates/core/src/baseline.rs".into(),
                "crates/core/src/join/nested.rs".into(),
                "crates/core/src/join/hash.rs".into(),
                "crates/core/src/join/merge.rs".into(),
                "crates/core/src/join/competition.rs".into(),
            ],
            scan_entry_exempt: vec![
                (
                    "crates/core/src/jscan.rs".into(),
                    "step".into(),
                    "Jscan absorbs storage faults as StorageFault discards \
                     (PR-2 contract); its quantum cannot fail"
                        .into(),
                ),
                (
                    "crates/core/src/jscan.rs".into(),
                    "run".into(),
                    "drives step(); same fault-absorption contract".into(),
                ),
            ],
            facade_modules: vec![
                // The facade definition itself (`RealSync`).
                "crates/storage/src/sync.rs".into(),
                // The protocol modules expressed against the facade.
                "crates/storage/src/mirror.rs".into(),
                "crates/storage/src/lsn.rs".into(),
                "crates/storage/src/touch.rs".into(),
                // The model-side facade implementation.
                "crates/check/src/sync.rs".into(),
            ],
            ratchet_scope: vec![
                "crates/storage/src/".into(),
                "crates/btree/src/".into(),
                "crates/core/src/tscan.rs".into(),
                "crates/core/src/sscan.rs".into(),
                "crates/core/src/fscan.rs".into(),
                "crates/core/src/jscan.rs".into(),
                "crates/core/src/union.rs".into(),
                "crates/core/src/ridlist.rs".into(),
                "crates/core/src/filter.rs".into(),
                "crates/core/src/parallel.rs".into(),
                "crates/core/src/tactics.rs".into(),
                "crates/core/src/dynamic.rs".into(),
                "crates/core/src/baseline.rs".into(),
                "crates/core/src/join/".into(),
            ],
            ratchet_path: "lint-ratchet.toml".into(),
        }
    }

    /// True when `rel` is excluded from the walk entirely.
    pub fn excluded(&self, rel: &str) -> bool {
        self.exclude.iter().any(|p| rel.starts_with(p.as_str()))
    }

    /// True when `rel` is test/bench/example code rather than shipped
    /// library or binary source.
    pub fn is_test_context(rel: &str) -> bool {
        rel.starts_with("tests/")
            || rel.starts_with("examples/")
            || rel.contains("/tests/")
            || rel.contains("/benches/")
            || rel.contains("/examples/")
    }

    /// True when `rel` is library code: under a crate's `src/`, not a
    /// binary entry point, not test context.
    pub fn is_lib_code(rel: &str) -> bool {
        rel.starts_with("crates/")
            && rel.contains("/src/")
            && !rel.contains("/src/bin/")
            && !rel.ends_with("/src/main.rs")
            && !Self::is_test_context(rel)
    }

    /// True when `rel` falls under the panic-freedom ratchet.
    pub fn in_ratchet_scope(&self, rel: &str) -> bool {
        Self::is_lib_code(rel)
            && self
                .ratchet_scope
                .iter()
                .any(|p| rel == p.as_str() || (p.ends_with('/') && rel.starts_with(p.as_str())))
    }

    /// True when `rel` is a planning/estimation module.
    pub fn is_planning(&self, rel: &str) -> bool {
        self.planning_modules
            .iter()
            .any(|p| rel == p.as_str() || (p.ends_with('/') && rel.starts_with(p.as_str())))
    }
}
