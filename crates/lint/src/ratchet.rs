//! The committed panic-freedom baseline (`lint-ratchet.toml`).
//!
//! The ratchet direction is **down only**: a fresh workspace count above a
//! file's baseline is a policy failure (`P001`), and a count *below* it is
//! also a failure (`P002`) until the baseline is lowered — so the
//! committed file always states the exact, current panic surface of the
//! fallible scan layers. Regenerate with `cargo run -p rdb-lint --
//! --update-ratchet` after burning panics down.
//!
//! The file format is a deliberately tiny TOML subset parsed by hand (the
//! tool is dependency-free): comments, a `[files]` section header, and
//! `"path" = count` entries.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-file panic-token counts, keyed by workspace-relative path.
pub type Baseline = BTreeMap<String, u64>;

/// A malformed baseline file (line number + offending content).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineError(pub String);

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for BaselineError {}

/// Parses `lint-ratchet.toml` content. Unparseable lines are reported as
/// errors, not ignored — a typo must not silently loosen the ratchet.
pub fn parse(content: &str) -> Result<Baseline, BaselineError> {
    let mut out = Baseline::new();
    for (idx, raw) in content.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line == "[files]" {
            continue;
        }
        let err =
            || BaselineError(format!("lint-ratchet.toml:{}: unparseable entry `{raw}`", idx + 1));
        let (key, value) = line.split_once('=').ok_or_else(err)?;
        let key = key.trim();
        let path = key
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(err)?;
        let count: u64 = value.trim().parse().map_err(|_| err())?;
        out.insert(path.to_string(), count);
    }
    Ok(out)
}

/// Renders a baseline back to the committed file format.
pub fn render(baseline: &Baseline) -> String {
    let mut out = String::from(
        "# Panic-freedom ratchet for the fallible scan layers (rdb-storage,\n\
         # rdb-btree, rdb-core scan/tactic modules). Counts cover unwrap()/\n\
         # expect()/panic!/todo!/unimplemented! and slice-indexing in non-test\n\
         # code. The count may only go DOWN: lower it legitimately by fixing\n\
         # panic paths and running `cargo run -p rdb-lint -- --update-ratchet`.\n\
         \n[files]\n",
    );
    for (path, count) in baseline {
        let _ = writeln!(out, "\"{path}\" = {count}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut b = Baseline::new();
        b.insert("crates/a/src/x.rs".into(), 3);
        b.insert("crates/b/src/y.rs".into(), 0);
        let rendered = render(&b);
        assert_eq!(parse(&rendered).unwrap(), b);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("files = yes\n").is_err());
        assert!(parse("\"a.rs\" = many\n").is_err());
        assert!(parse("# comment\n[files]\n\"a.rs\" = 2\n").is_ok());
    }
}
