//! # rdb-lint
//!
//! A `tidy`-style workspace static-analysis pass for this repository,
//! in the spirit of rustc's `src/tools/tidy`. The competition model the
//! repo reproduces (Antoshenkov, *Dynamic Query Optimization in
//! Rdb/VMS*) is only trustworthy if its cross-cutting invariants hold
//! everywhere: infallible planning vs. fallible scans, `unsafe` confined
//! to the buffer pool under `SAFETY` comments, relaxed atomics confined
//! to cost metering with written justification, and a panic surface in
//! the scan layers that only shrinks. `rdb-lint` turns those reviewer
//! conventions into machine-checked policy:
//!
//! ```text
//! cargo run -p rdb-lint                       # full policy run (CI gate)
//! cargo run -p rdb-lint -- --json             # machine-readable output
//! cargo run -p rdb-lint -- --check-allowlists # staleness check only
//! cargo run -p rdb-lint -- --update-ratchet   # regenerate lint-ratchet.toml
//! ```
//!
//! The tool is deliberately dependency-free (no `syn`): a hand-rolled
//! scanner ([`scanner`]) masks strings, char literals, and comments so
//! rules match real code tokens, and the policy itself ([`policy`]) is
//! plain data with staleness-checked allowlists. See [`rules`] for the
//! rule table.

#![forbid(unsafe_code)]

pub mod emit;
pub mod policy;
pub mod ratchet;
pub mod rules;
pub mod scanner;
