//! The rule families and the workspace walk that feeds them.
//!
//! | id   | family       | what it enforces                                          |
//! |------|--------------|-----------------------------------------------------------|
//! | U001 | unsafe       | `unsafe` only in allowlisted files                        |
//! | U002 | unsafe       | every `unsafe` block/impl carries a `SAFETY:` comment     |
//! | U003 | unsafe       | non-exempt crate roots carry `#![forbid(unsafe_code)]`    |
//! | P001 | panic ratchet| scan-layer panic count rose above the committed baseline  |
//! | P002 | panic ratchet| baseline is stale (count dropped, or dead entry)          |
//! | F001 | fallibility  | planning modules never touch `try_access`/`StorageError`  |
//! | F002 | fallibility  | scan `pub fn step/run/execute*` return `Result`           |
//! | A001 | atomics      | atomic `Ordering` only in meter/pool/parallel modules     |
//! | A002 | atomics      | `Ordering::Relaxed` has an adjacent justification comment |
//! | D001 | deferred     | `thread_local!` state only in deferred-allowlisted files  |
//! | D002 | deferred     | per-session deferred counters carry a `Drop` guard        |
//! | H001 | hygiene      | no `Result<_, String>` in public library APIs             |
//! | H002 | hygiene      | no `dbg!`/`println!` in library code                      |
//! | H003 | hygiene      | every crate root opens with a `//!` doc header            |
//! | X001 | allowlists   | no allowlist/exemption entry is stale                     |

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use crate::policy::Policy;
use crate::ratchet::{self, Baseline};
use crate::scanner::{self, Line};

/// One finding: file, 1-based line (0 = whole file), rule id, message,
/// and a fix hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line; 0 for file-level findings.
    pub line: usize,
    /// Stable rule id (`U001` … `X001`).
    pub rule: &'static str,
    /// What is wrong.
    pub message: String,
    /// How to fix it legitimately.
    pub hint: String,
}

/// A scanned workspace source file.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Per-line code/comment split from [`scanner::scan`].
    pub lines: Vec<Line>,
    /// Per-line `#[cfg(test)]`-region mask from [`scanner::test_lines`].
    pub test_mask: Vec<bool>,
}

impl SourceFile {
    fn non_test(&self) -> impl Iterator<Item = (usize, &Line)> {
        self.lines
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.test_mask[*i])
    }
}

/// Walks the workspace and scans every non-excluded `.rs` file.
pub fn load_workspace(policy: &Policy) -> std::io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    collect(&policy.root, &policy.root, policy, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for rel in paths {
        let src = fs::read_to_string(policy.root.join(&rel))?;
        let lines = scanner::scan(&src);
        let test_mask = scanner::test_lines(&lines);
        files.push(SourceFile {
            rel,
            lines,
            test_mask,
        });
    }
    Ok(files)
}

fn collect(
    root: &Path,
    dir: &Path,
    policy: &Policy,
    out: &mut Vec<String>,
) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            let rel = rel_of(root, &path);
            if policy.excluded(&format!("{rel}/")) {
                continue;
            }
            collect(root, &path, policy, out)?;
        } else if name.ends_with(".rs") {
            let rel = rel_of(root, &path);
            if !policy.excluded(&rel) {
                out.push(rel);
            }
        }
    }
    Ok(())
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Runs every rule family over pre-loaded files. The ratchet baseline is
/// read from `policy.ratchet_path`; a missing or unparseable baseline is
/// itself a diagnostic.
pub fn lint(files: &[SourceFile], policy: &Policy) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    rule_unsafe(files, policy, &mut diags);
    rule_forbid_attr(files, policy, &mut diags);
    rule_ratchet(files, policy, &mut diags);
    rule_fallibility(files, policy, &mut diags);
    rule_atomics(files, policy, &mut diags);
    rule_deferred(files, policy, &mut diags);
    rule_hygiene(files, policy, &mut diags);
    check_allowlists(files, policy, &mut diags);
    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    diags
}

fn diag(
    diags: &mut Vec<Diagnostic>,
    file: &str,
    line: usize,
    rule: &'static str,
    message: impl Into<String>,
    hint: impl Into<String>,
) {
    diags.push(Diagnostic {
        file: file.to_string(),
        line,
        rule,
        message: message.into(),
        hint: hint.into(),
    });
}

// ---------------------------------------------------------------- tokens

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Byte offsets of `word` in `code` at identifier boundaries.
fn word_positions(code: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(found) = code[from..].find(word) {
        let at = from + found;
        let before_ok = at == 0 || !is_ident(code[..at].chars().next_back().unwrap_or(' '));
        let after_ok = !code[at + word.len()..]
            .chars()
            .next()
            .is_some_and(is_ident);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + word.len();
    }
    out
}

fn next_nonspace(code: &str, from: usize) -> Option<char> {
    code[from..].chars().find(|c| !c.is_whitespace())
}

/// The word ending at byte offset `end` (exclusive), if any.
fn word_ending_at(code: &str, end: usize) -> &str {
    let start = code[..end]
        .char_indices()
        .rev()
        .take_while(|(_, c)| is_ident(*c))
        .last()
        .map(|(i, _)| i)
        .unwrap_or(end);
    &code[start..end]
}

const INDEX_KEYWORDS: &[&str] = &[
    "in", "if", "else", "match", "return", "break", "continue", "let", "mut", "ref", "move",
    "as", "impl", "dyn", "where", "loop", "while", "for", "unsafe", "const", "static", "box",
    "await", "yield", "use",
];

/// Counts slice/array index expressions: a `[` whose previous non-space
/// char ends an identifier (that is not a keyword), `)`, or `]`.
fn index_expressions(code: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for (at, c) in code.char_indices() {
        if c != '[' {
            continue;
        }
        let before = code[..at].trim_end();
        let Some(prev) = before.chars().next_back() else {
            continue;
        };
        if prev == ')' || prev == ']' {
            out.push(at);
        } else if is_ident(prev) {
            let word = word_ending_at(before, before.len());
            if !INDEX_KEYWORDS.contains(&word) {
                out.push(at);
            }
        }
    }
    out
}

/// Panic-prone token count for one masked code line.
fn panic_tokens(code: &str) -> u64 {
    let mut n = 0u64;
    for word in ["unwrap", "unwrap_err", "expect", "expect_err"] {
        for at in word_positions(code, word) {
            if next_nonspace(code, at + word.len()) == Some('(') {
                n += 1;
            }
        }
    }
    for word in ["panic", "todo", "unimplemented"] {
        for at in word_positions(code, word) {
            if next_nonspace(code, at + word.len()) == Some('!') {
                n += 1;
            }
        }
    }
    n + index_expressions(code).len() as u64
}

/// True when a comment containing `needle` sits on line `at` or within
/// `window` lines above it.
fn comment_nearby(file: &SourceFile, at: usize, window: usize, needle: &str) -> bool {
    let lo = at.saturating_sub(window);
    file.lines[lo..=at]
        .iter()
        .any(|l| l.comment.contains(needle))
}

// ---------------------------------------------------------------- unsafe

fn rule_unsafe(files: &[SourceFile], policy: &Policy, diags: &mut Vec<Diagnostic>) {
    for file in files {
        let allowed = policy.unsafe_allowlist.contains(&file.rel);
        for (idx, line) in file.lines.iter().enumerate() {
            for at in word_positions(&line.code, "unsafe") {
                if !allowed {
                    diag(
                        diags,
                        &file.rel,
                        idx + 1,
                        "U001",
                        "`unsafe` outside the unsafe allowlist",
                        "unsafe is confined to the buffer pool; rewrite safely or extend \
                         Policy::unsafe_allowlist with a justification",
                    );
                    continue;
                }
                // `unsafe fn` declares obligations for callers; the proof
                // burden sits at the unsafe *block* / impl, which is what
                // needs the comment.
                let rest = &line.code[at + "unsafe".len()..];
                let next_word_is_fn = rest.trim_start().starts_with("fn")
                    && !rest.trim_start()[2..].chars().next().is_some_and(is_ident);
                if next_word_is_fn {
                    continue;
                }
                if !comment_nearby(file, idx, policy.safety_window, "SAFETY") {
                    diag(
                        diags,
                        &file.rel,
                        idx + 1,
                        "U002",
                        "`unsafe` without an adjacent `// SAFETY:` comment",
                        "state the invariant that makes this sound in a SAFETY comment \
                         directly above the block",
                    );
                }
            }
        }
    }
}

fn rule_forbid_attr(files: &[SourceFile], policy: &Policy, diags: &mut Vec<Diagnostic>) {
    for file in files {
        let Some(crate_dir) = crate_root_of(&file.rel) else {
            continue;
        };
        let exempt = policy
            .unsafe_allowlist
            .iter()
            .any(|p| p.starts_with(&format!("{crate_dir}/src/")));
        if exempt {
            continue;
        }
        let has_forbid = file.lines.iter().any(|l| {
            let squished: String = l.code.split_whitespace().collect();
            squished.contains("#![forbid(unsafe_code)]")
        });
        if !has_forbid {
            diag(
                diags,
                &file.rel,
                0,
                "U003",
                "crate root lacks `#![forbid(unsafe_code)]`",
                "only the buffer-pool crate may opt out; add the attribute at the top \
                 of the crate root",
            );
        }
    }
}

/// `Some("crates/foo")` when `rel` is `crates/foo/src/lib.rs`.
fn crate_root_of(rel: &str) -> Option<String> {
    let rest = rel.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    (tail == "src/lib.rs").then(|| format!("crates/{name}"))
}

// --------------------------------------------------------------- ratchet

/// Fresh per-file panic counts over the ratchet scope (zero-count files
/// omitted).
pub fn fresh_ratchet(files: &[SourceFile], policy: &Policy) -> Baseline {
    let mut out = Baseline::new();
    for file in files {
        if !policy.in_ratchet_scope(&file.rel) {
            continue;
        }
        let count: u64 = file.non_test().map(|(_, l)| panic_tokens(&l.code)).sum();
        if count > 0 {
            out.insert(file.rel.clone(), count);
        }
    }
    out
}

fn rule_ratchet(files: &[SourceFile], policy: &Policy, diags: &mut Vec<Diagnostic>) {
    let path = policy.root.join(&policy.ratchet_path);
    let baseline = match fs::read_to_string(&path) {
        Ok(content) => match ratchet::parse(&content) {
            Ok(b) => b,
            Err(e) => {
                diag(diags, &policy.ratchet_path, 0, "P002", e.0, "fix the baseline file");
                return;
            }
        },
        Err(_) => {
            diag(
                diags,
                &policy.ratchet_path,
                0,
                "P002",
                "panic-freedom baseline is missing",
                "run `cargo run -p rdb-lint -- --update-ratchet` and commit the result",
            );
            return;
        }
    };
    let fresh = fresh_ratchet(files, policy);
    let mut all: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for (f, n) in &fresh {
        all.entry(f).or_default().0 = *n;
    }
    for (f, n) in &baseline {
        all.entry(f).or_default().1 = *n;
    }
    for (file, (now, base)) in all {
        if now > base {
            diag(
                diags,
                file,
                0,
                "P001",
                format!("panic-prone tokens rose to {now} (baseline {base})"),
                "the ratchet only goes down: propagate a typed error instead of \
                 unwrap/expect/panic/indexing in scan layers",
            );
        } else if now < base {
            diag(
                diags,
                file,
                0,
                "P002",
                format!("baseline {base} is stale: fresh count is {now}"),
                "good burn-down! run `cargo run -p rdb-lint -- --update-ratchet` to \
                 lock in the lower count",
            );
        }
    }
}

// ----------------------------------------------------------- fallibility

fn rule_fallibility(files: &[SourceFile], policy: &Policy, diags: &mut Vec<Diagnostic>) {
    for file in files {
        if policy.is_planning(&file.rel) {
            for (idx, line) in file.non_test() {
                for token in ["try_access", "StorageError"] {
                    if !word_positions(&line.code, token).is_empty() {
                        diag(
                            diags,
                            &file.rel,
                            idx + 1,
                            "F001",
                            format!("planning module touches fallible storage (`{token}`)"),
                            "planning and estimation are infallible by contract; route \
                             fallible reads through the scan layer",
                        );
                    }
                }
            }
        }
        if policy.scan_entry_files.contains(&file.rel) {
            for sig in pub_fn_signatures(file) {
                let stem_match = ["step", "run", "execute"]
                    .iter()
                    .any(|s| sig.name == *s || sig.name.starts_with(&format!("{s}_")));
                if !stem_match {
                    continue;
                }
                if sig.text.contains("Result<") {
                    continue;
                }
                let exempt = policy
                    .scan_entry_exempt
                    .iter()
                    .any(|(f, n, _)| *f == file.rel && *n == sig.name);
                if !exempt {
                    diag(
                        diags,
                        &file.rel,
                        sig.line + 1,
                        "F002",
                        format!("scan entry point `{}` does not return `Result`", sig.name),
                        "data scans are fallible by contract (PR-2 fallibility split); \
                         return Result<_, StorageError> or add a justified exemption",
                    );
                }
            }
        }
    }
}

struct PubFnSig {
    /// 0-based line of the `pub fn`.
    line: usize,
    name: String,
    /// Signature text from `pub fn` to the body `{` or trailing `;`.
    text: String,
}

/// Extracts every non-test `pub fn` signature (joined across lines).
fn pub_fn_signatures(file: &SourceFile) -> Vec<PubFnSig> {
    let mut out = Vec::new();
    for (idx, line) in file.non_test() {
        for at in word_positions(&line.code, "fn") {
            let before = line.code[..at].trim_end();
            if !before.ends_with("pub") {
                continue;
            }
            let after = &line.code[at + 2..];
            let name: String = after
                .trim_start()
                .chars()
                .take_while(|c| is_ident(*c))
                .collect();
            if name.is_empty() {
                continue;
            }
            // Join lines until the body opens (or the item ends) to get
            // the whole signature, including multi-line returns.
            let mut text = String::new();
            'join: for l in &file.lines[idx..(idx + 40).min(file.lines.len())] {
                for c in l.code.chars() {
                    if c == '{' {
                        break 'join;
                    }
                    text.push(c);
                    if c == ';' {
                        break 'join;
                    }
                }
                text.push(' ');
            }
            out.push(PubFnSig {
                line: idx,
                name,
                text,
            });
        }
    }
    out
}

// --------------------------------------------------------------- atomics

const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn rule_atomics(files: &[SourceFile], policy: &Policy, diags: &mut Vec<Diagnostic>) {
    for file in files {
        if !Policy::is_lib_code(&file.rel) {
            continue;
        }
        let allowed = policy.atomics_allowlist.contains(&file.rel);
        for (idx, line) in file.non_test() {
            for variant in ATOMIC_ORDERINGS {
                let needle = format!("Ordering::{variant}");
                for at in word_positions(&line.code, &needle) {
                    let _ = at;
                    if !allowed {
                        diag(
                            diags,
                            &file.rel,
                            idx + 1,
                            "A001",
                            format!("atomic `{needle}` outside the atomics allowlist"),
                            "atomics are confined to the cost meter, buffer pool, and \
                             parallel stage; use those abstractions instead",
                        );
                    } else if *variant == "Relaxed"
                        && !comment_nearby(file, idx, policy.relaxed_window, "Relaxed")
                    {
                        diag(
                            diags,
                            &file.rel,
                            idx + 1,
                            "A002",
                            "`Ordering::Relaxed` without an adjacent justification comment",
                            "say in a nearby comment why relaxed ordering is sound here \
                             (mention `Relaxed`)",
                        );
                    }
                }
            }
        }
    }
}

// -------------------------------------------------------------- deferred

/// Rules `D001`/`D002`: per-session deferred state (the thread-local
/// touch-and-charge buffers behind the buffer pool's lock-free hit path)
/// is confined to allowlisted modules, and every such module must pair its
/// `thread_local!` holder with a `Drop` guard — deferred *counters* must
/// be absorbed on every exit path (thread teardown included), or the
/// pool's `hits + misses == accesses` conservation property silently
/// breaks under concurrency.
fn rule_deferred(files: &[SourceFile], policy: &Policy, diags: &mut Vec<Diagnostic>) {
    for file in files {
        if !Policy::is_lib_code(&file.rel) {
            continue;
        }
        let allowed = policy.deferred_allowlist.contains(&file.rel);
        let mut uses_tls = false;
        for (idx, line) in file.non_test() {
            if !word_positions(&line.code, "thread_local").is_empty() {
                uses_tls = true;
                if !allowed {
                    diag(
                        diags,
                        &file.rel,
                        idx + 1,
                        "D001",
                        "`thread_local!` state outside the deferred-state allowlist",
                        "per-session deferred state is confined to the touch module;                          buffer through it or extend Policy::deferred_allowlist with a                          justification",
                    );
                }
            }
        }
        if allowed && uses_tls {
            let has_drop_guard = file
                .non_test()
                .any(|(_, l)| l.code.contains("impl Drop for"));
            if !has_drop_guard {
                diag(
                    diags,
                    &file.rel,
                    0,
                    "D002",
                    "per-session deferred counters lack a `Drop` guard",
                    "deferred counters must be absorbed on every exit path: give the                      thread-local holder a Drop impl that lands its pending tally in                      the pool-shared counters",
                );
            }
        }
    }
}

// --------------------------------------------------------------- hygiene

const PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

fn rule_hygiene(files: &[SourceFile], policy: &Policy, diags: &mut Vec<Diagnostic>) {
    for file in files {
        if let Some(_crate_dir) = crate_root_of(&file.rel) {
            let has_header = file
                .lines
                .iter()
                .take(10)
                .any(|l| l.comment.trim_start().starts_with("//!"));
            if !has_header {
                diag(
                    diags,
                    &file.rel,
                    0,
                    "H003",
                    "crate root has no `//!` doc header in its first 10 lines",
                    "open the crate with a module-level doc comment describing its role",
                );
            }
        }
        if !Policy::is_lib_code(&file.rel) {
            continue;
        }
        for sig in pub_fn_signatures(file) {
            if let Some(err_ty) = result_error_type(&sig.text) {
                if err_ty == "String" {
                    diag(
                        diags,
                        &file.rel,
                        sig.line + 1,
                        "H001",
                        format!("public fn `{}` returns `Result<_, String>`", sig.name),
                        "stringly-typed errors are unmatchable; define or reuse a typed \
                         error enum",
                    );
                }
            }
        }
        let print_allowed = policy.print_allowlist.contains(&file.rel);
        if print_allowed {
            continue;
        }
        for (idx, line) in file.non_test() {
            for mac in PRINT_MACROS {
                for at in word_positions(&line.code, mac) {
                    if next_nonspace(&line.code, at + mac.len()) == Some('!') {
                        diag(
                            diags,
                            &file.rel,
                            idx + 1,
                            "H002",
                            format!("`{mac}!` in library code"),
                            "library crates must not write to stdio; return data or use \
                             the trace sink",
                        );
                    }
                }
            }
        }
    }
}

/// The top-level error type of the *return type*'s `Result<…>`, if the
/// signature returns one.
fn result_error_type(sig: &str) -> Option<String> {
    let ret = sig.split("->").nth(1)?;
    let start = ret.find("Result<")?;
    let inner = &ret[start + "Result<".len()..];
    let mut depth = 1i32;
    let mut top_commas = Vec::new();
    let mut end = inner.len();
    for (i, c) in inner.char_indices() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => {
                depth -= 1;
                if depth == 0 {
                    end = i;
                    break;
                }
            }
            ',' if depth == 1 => top_commas.push(i),
            _ => {}
        }
    }
    let last_comma = *top_commas.last()?;
    Some(inner[last_comma + 1..end].trim().to_string())
}

// ------------------------------------------------------------ allowlists

/// Rule `X001`: every allowlist/exemption entry must still match something.
pub fn check_allowlists(files: &[SourceFile], policy: &Policy, diags: &mut Vec<Diagnostic>) {
    let find = |rel: &str| files.iter().find(|f| f.rel == rel);
    let stale = |diags: &mut Vec<Diagnostic>, entry: &str, what: &str| {
        diag(
            diags,
            entry,
            0,
            "X001",
            format!("stale allowlist entry: {what}"),
            "remove the dead exemption from crates/lint/src/policy.rs",
        );
    };
    for entry in &policy.unsafe_allowlist {
        match find(entry) {
            None => stale(diags, entry, "file no longer exists"),
            Some(f) => {
                let used = f
                    .lines
                    .iter()
                    .any(|l| !word_positions(&l.code, "unsafe").is_empty());
                if !used {
                    stale(diags, entry, "file no longer contains `unsafe`");
                }
            }
        }
    }
    for entry in &policy.atomics_allowlist {
        match find(entry) {
            None => stale(diags, entry, "file no longer exists"),
            Some(f) => {
                let used = f.lines.iter().any(|l| {
                    ATOMIC_ORDERINGS
                        .iter()
                        .any(|v| l.code.contains(&format!("Ordering::{v}")))
                });
                if !used {
                    stale(diags, entry, "file no longer uses atomic `Ordering`");
                }
            }
        }
    }
    for entry in &policy.deferred_allowlist {
        match find(entry) {
            None => stale(diags, entry, "file no longer exists"),
            Some(f) => {
                let used = f
                    .lines
                    .iter()
                    .any(|l| !word_positions(&l.code, "thread_local").is_empty());
                if !used {
                    stale(diags, entry, "file no longer declares `thread_local!` state");
                }
            }
        }
    }
    for entry in &policy.print_allowlist {
        match find(entry) {
            None => stale(diags, entry, "file no longer exists"),
            Some(f) => {
                let used = f.lines.iter().any(|l| {
                    PRINT_MACROS.iter().any(|m| {
                        word_positions(&l.code, m)
                            .iter()
                            .any(|at| next_nonspace(&l.code, at + m.len()) == Some('!'))
                    })
                });
                if !used {
                    stale(diags, entry, "file no longer prints");
                }
            }
        }
    }
    for (rel, name, _why) in &policy.scan_entry_exempt {
        match find(rel) {
            None => stale(diags, rel, "exempted file no longer exists"),
            Some(f) => {
                let still_needed = pub_fn_signatures(f)
                    .iter()
                    .any(|s| s.name == *name && !s.text.contains("Result<"));
                if !still_needed {
                    stale(
                        diags,
                        rel,
                        &format!("exemption for `{name}` no longer matches an infallible fn"),
                    );
                }
            }
        }
    }
    for entry in &policy.scan_entry_files {
        if find(entry).is_none() {
            stale(diags, entry, "scan-entry file no longer exists");
        }
    }
    for entry in &policy.planning_modules {
        let matches = files
            .iter()
            .any(|f| f.rel == *entry || (entry.ends_with('/') && f.rel.starts_with(entry.as_str())));
        if !matches {
            stale(diags, entry, "planning-module entry matches no file");
        }
    }
    for entry in &policy.ratchet_scope {
        let matches = files
            .iter()
            .any(|f| f.rel == *entry || (entry.ends_with('/') && f.rel.starts_with(entry.as_str())));
        if !matches {
            stale(diags, entry, "ratchet-scope entry matches no file");
        }
    }
    if let Ok(content) = fs::read_to_string(policy.root.join(&policy.ratchet_path)) {
        if let Ok(baseline) = ratchet::parse(&content) {
            for file in baseline.keys() {
                if find(file).is_none() {
                    stale(diags, file, "baseline entry for a file that no longer exists");
                } else if !policy.in_ratchet_scope(file) {
                    stale(diags, file, "baseline entry outside the ratchet scope");
                }
            }
        }
    }
}
