//! The rule families and the workspace walk that feeds them.
//!
//! | id   | family       | what it enforces                                          |
//! |------|--------------|-----------------------------------------------------------|
//! | U001 | unsafe       | `unsafe` only in allowlisted files                        |
//! | U002 | unsafe       | every `unsafe` block/impl carries a `SAFETY:` comment     |
//! | U003 | unsafe       | non-exempt crate roots carry `#![forbid(unsafe_code)]`    |
//! | P001 | panic ratchet| scan-layer panic count rose above the committed baseline  |
//! | P002 | panic ratchet| baseline is stale (count dropped, or dead entry)          |
//! | F001 | fallibility  | planning modules never touch `try_access`/`StorageError`  |
//! | F002 | fallibility  | scan `pub fn step/run/execute*` return `Result`           |
//! | A001 | atomics      | atomic `Ordering` only in meter/pool/parallel modules     |
//! | A002 | atomics      | `Ordering::Relaxed` has an adjacent justification comment |
//! | D001 | deferred     | `thread_local!` state only in deferred-allowlisted files  |
//! | D002 | deferred     | per-session deferred counters carry a `Drop` guard        |
//! | S001 | sync protocol| the static lock-acquisition graph has no cycles           |
//! | S002 | sync protocol| mirror-slot stores sit inside a seqlock writer section    |
//! | S003 | sync protocol| no raw atomics on protected fields outside the facade     |
//! | H001 | hygiene      | no `Result<_, String>` in public library APIs             |
//! | H002 | hygiene      | no `dbg!`/`println!` in library code                      |
//! | H003 | hygiene      | every crate root opens with a `//!` doc header            |
//! | X001 | allowlists   | no allowlist/exemption entry is stale                     |

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use crate::policy::Policy;
use crate::ratchet::{self, Baseline};
use crate::scanner::{self, Line};

/// One finding: file, 1-based line (0 = whole file), rule id, message,
/// and a fix hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line; 0 for file-level findings.
    pub line: usize,
    /// Stable rule id (`U001` … `X001`).
    pub rule: &'static str,
    /// What is wrong.
    pub message: String,
    /// How to fix it legitimately.
    pub hint: String,
}

/// A scanned workspace source file.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Per-line code/comment split from [`scanner::scan`].
    pub lines: Vec<Line>,
    /// Per-line `#[cfg(test)]`-region mask from [`scanner::test_lines`].
    pub test_mask: Vec<bool>,
}

impl SourceFile {
    fn non_test(&self) -> impl Iterator<Item = (usize, &Line)> {
        self.lines
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.test_mask[*i])
    }
}

/// Walks the workspace and scans every non-excluded `.rs` file.
pub fn load_workspace(policy: &Policy) -> std::io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    collect(&policy.root, &policy.root, policy, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for rel in paths {
        let src = fs::read_to_string(policy.root.join(&rel))?;
        let lines = scanner::scan(&src);
        let test_mask = scanner::test_lines(&lines);
        files.push(SourceFile {
            rel,
            lines,
            test_mask,
        });
    }
    Ok(files)
}

fn collect(
    root: &Path,
    dir: &Path,
    policy: &Policy,
    out: &mut Vec<String>,
) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            let rel = rel_of(root, &path);
            if policy.excluded(&format!("{rel}/")) {
                continue;
            }
            collect(root, &path, policy, out)?;
        } else if name.ends_with(".rs") {
            let rel = rel_of(root, &path);
            if !policy.excluded(&rel) {
                out.push(rel);
            }
        }
    }
    Ok(())
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Runs every rule family over pre-loaded files. The ratchet baseline is
/// read from `policy.ratchet_path`; a missing or unparseable baseline is
/// itself a diagnostic.
pub fn lint(files: &[SourceFile], policy: &Policy) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    rule_unsafe(files, policy, &mut diags);
    rule_forbid_attr(files, policy, &mut diags);
    rule_ratchet(files, policy, &mut diags);
    rule_fallibility(files, policy, &mut diags);
    rule_atomics(files, policy, &mut diags);
    rule_deferred(files, policy, &mut diags);
    rule_sync_protocol(files, policy, &mut diags);
    rule_hygiene(files, policy, &mut diags);
    check_allowlists(files, policy, &mut diags);
    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    diags
}

/// Rule families in the table above (`U`, `P`, `F`, `A`, `D`, `S`, `H`,
/// `X`), for reporting.
pub const FAMILIES: usize = 8;

fn diag(
    diags: &mut Vec<Diagnostic>,
    file: &str,
    line: usize,
    rule: &'static str,
    message: impl Into<String>,
    hint: impl Into<String>,
) {
    diags.push(Diagnostic {
        file: file.to_string(),
        line,
        rule,
        message: message.into(),
        hint: hint.into(),
    });
}

// ---------------------------------------------------------------- tokens

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Byte offsets of `word` in `code` at identifier boundaries.
fn word_positions(code: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(found) = code[from..].find(word) {
        let at = from + found;
        let before_ok = at == 0 || !is_ident(code[..at].chars().next_back().unwrap_or(' '));
        let after_ok = !code[at + word.len()..]
            .chars()
            .next()
            .is_some_and(is_ident);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + word.len();
    }
    out
}

fn next_nonspace(code: &str, from: usize) -> Option<char> {
    code[from..].chars().find(|c| !c.is_whitespace())
}

/// The word ending at byte offset `end` (exclusive), if any.
fn word_ending_at(code: &str, end: usize) -> &str {
    let start = code[..end]
        .char_indices()
        .rev()
        .take_while(|(_, c)| is_ident(*c))
        .last()
        .map(|(i, _)| i)
        .unwrap_or(end);
    &code[start..end]
}

const INDEX_KEYWORDS: &[&str] = &[
    "in", "if", "else", "match", "return", "break", "continue", "let", "mut", "ref", "move",
    "as", "impl", "dyn", "where", "loop", "while", "for", "unsafe", "const", "static", "box",
    "await", "yield", "use",
];

/// Counts slice/array index expressions: a `[` whose previous non-space
/// char ends an identifier (that is not a keyword), `)`, or `]`.
fn index_expressions(code: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for (at, c) in code.char_indices() {
        if c != '[' {
            continue;
        }
        let before = code[..at].trim_end();
        let Some(prev) = before.chars().next_back() else {
            continue;
        };
        if prev == ')' || prev == ']' {
            out.push(at);
        } else if is_ident(prev) {
            let word = word_ending_at(before, before.len());
            if !INDEX_KEYWORDS.contains(&word) {
                out.push(at);
            }
        }
    }
    out
}

/// Panic-prone token count for one masked code line.
fn panic_tokens(code: &str) -> u64 {
    let mut n = 0u64;
    for word in ["unwrap", "unwrap_err", "expect", "expect_err"] {
        for at in word_positions(code, word) {
            if next_nonspace(code, at + word.len()) == Some('(') {
                n += 1;
            }
        }
    }
    for word in ["panic", "todo", "unimplemented"] {
        for at in word_positions(code, word) {
            if next_nonspace(code, at + word.len()) == Some('!') {
                n += 1;
            }
        }
    }
    n + index_expressions(code).len() as u64
}

/// True when a comment containing `needle` sits on line `at` or within
/// `window` lines above it.
fn comment_nearby(file: &SourceFile, at: usize, window: usize, needle: &str) -> bool {
    let lo = at.saturating_sub(window);
    file.lines[lo..=at]
        .iter()
        .any(|l| l.comment.contains(needle))
}

// ---------------------------------------------------------------- unsafe

fn rule_unsafe(files: &[SourceFile], policy: &Policy, diags: &mut Vec<Diagnostic>) {
    for file in files {
        let allowed = policy.unsafe_allowlist.contains(&file.rel);
        for (idx, line) in file.lines.iter().enumerate() {
            for at in word_positions(&line.code, "unsafe") {
                if !allowed {
                    diag(
                        diags,
                        &file.rel,
                        idx + 1,
                        "U001",
                        "`unsafe` outside the unsafe allowlist",
                        "unsafe is confined to the buffer pool; rewrite safely or extend \
                         Policy::unsafe_allowlist with a justification",
                    );
                    continue;
                }
                // `unsafe fn` declares obligations for callers; the proof
                // burden sits at the unsafe *block* / impl, which is what
                // needs the comment.
                let rest = &line.code[at + "unsafe".len()..];
                let next_word_is_fn = rest.trim_start().starts_with("fn")
                    && !rest.trim_start()[2..].chars().next().is_some_and(is_ident);
                if next_word_is_fn {
                    continue;
                }
                if !comment_nearby(file, idx, policy.safety_window, "SAFETY") {
                    diag(
                        diags,
                        &file.rel,
                        idx + 1,
                        "U002",
                        "`unsafe` without an adjacent `// SAFETY:` comment",
                        "state the invariant that makes this sound in a SAFETY comment \
                         directly above the block",
                    );
                }
            }
        }
    }
}

fn rule_forbid_attr(files: &[SourceFile], policy: &Policy, diags: &mut Vec<Diagnostic>) {
    for file in files {
        let Some(crate_dir) = crate_root_of(&file.rel) else {
            continue;
        };
        let exempt = policy
            .unsafe_allowlist
            .iter()
            .any(|p| p.starts_with(&format!("{crate_dir}/src/")));
        if exempt {
            continue;
        }
        let has_forbid = file.lines.iter().any(|l| {
            let squished: String = l.code.split_whitespace().collect();
            squished.contains("#![forbid(unsafe_code)]")
        });
        if !has_forbid {
            diag(
                diags,
                &file.rel,
                0,
                "U003",
                "crate root lacks `#![forbid(unsafe_code)]`",
                "only the buffer-pool crate may opt out; add the attribute at the top \
                 of the crate root",
            );
        }
    }
}

/// `Some("crates/foo")` when `rel` is `crates/foo/src/lib.rs`.
fn crate_root_of(rel: &str) -> Option<String> {
    let rest = rel.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    (tail == "src/lib.rs").then(|| format!("crates/{name}"))
}

// --------------------------------------------------------------- ratchet

/// Fresh per-file panic counts over the ratchet scope (zero-count files
/// omitted).
pub fn fresh_ratchet(files: &[SourceFile], policy: &Policy) -> Baseline {
    let mut out = Baseline::new();
    for file in files {
        if !policy.in_ratchet_scope(&file.rel) {
            continue;
        }
        let count: u64 = file.non_test().map(|(_, l)| panic_tokens(&l.code)).sum();
        if count > 0 {
            out.insert(file.rel.clone(), count);
        }
    }
    out
}

fn rule_ratchet(files: &[SourceFile], policy: &Policy, diags: &mut Vec<Diagnostic>) {
    let path = policy.root.join(&policy.ratchet_path);
    let baseline = match fs::read_to_string(&path) {
        Ok(content) => match ratchet::parse(&content) {
            Ok(b) => b,
            Err(e) => {
                diag(diags, &policy.ratchet_path, 0, "P002", e.0, "fix the baseline file");
                return;
            }
        },
        Err(_) => {
            diag(
                diags,
                &policy.ratchet_path,
                0,
                "P002",
                "panic-freedom baseline is missing",
                "run `cargo run -p rdb-lint -- --update-ratchet` and commit the result",
            );
            return;
        }
    };
    let fresh = fresh_ratchet(files, policy);
    let mut all: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for (f, n) in &fresh {
        all.entry(f).or_default().0 = *n;
    }
    for (f, n) in &baseline {
        all.entry(f).or_default().1 = *n;
    }
    for (file, (now, base)) in all {
        if now > base {
            diag(
                diags,
                file,
                0,
                "P001",
                format!("panic-prone tokens rose to {now} (baseline {base})"),
                "the ratchet only goes down: propagate a typed error instead of \
                 unwrap/expect/panic/indexing in scan layers",
            );
        } else if now < base {
            diag(
                diags,
                file,
                0,
                "P002",
                format!("baseline {base} is stale: fresh count is {now}"),
                "good burn-down! run `cargo run -p rdb-lint -- --update-ratchet` to \
                 lock in the lower count",
            );
        }
    }
}

// ----------------------------------------------------------- fallibility

fn rule_fallibility(files: &[SourceFile], policy: &Policy, diags: &mut Vec<Diagnostic>) {
    for file in files {
        if policy.is_planning(&file.rel) {
            for (idx, line) in file.non_test() {
                for token in ["try_access", "StorageError"] {
                    if !word_positions(&line.code, token).is_empty() {
                        diag(
                            diags,
                            &file.rel,
                            idx + 1,
                            "F001",
                            format!("planning module touches fallible storage (`{token}`)"),
                            "planning and estimation are infallible by contract; route \
                             fallible reads through the scan layer",
                        );
                    }
                }
            }
        }
        if policy.scan_entry_files.contains(&file.rel) {
            for sig in pub_fn_signatures(file) {
                let stem_match = ["step", "run", "execute"]
                    .iter()
                    .any(|s| sig.name == *s || sig.name.starts_with(&format!("{s}_")));
                if !stem_match {
                    continue;
                }
                if sig.text.contains("Result<") {
                    continue;
                }
                let exempt = policy
                    .scan_entry_exempt
                    .iter()
                    .any(|(f, n, _)| *f == file.rel && *n == sig.name);
                if !exempt {
                    diag(
                        diags,
                        &file.rel,
                        sig.line + 1,
                        "F002",
                        format!("scan entry point `{}` does not return `Result`", sig.name),
                        "data scans are fallible by contract (PR-2 fallibility split); \
                         return Result<_, StorageError> or add a justified exemption",
                    );
                }
            }
        }
    }
}

struct PubFnSig {
    /// 0-based line of the `pub fn`.
    line: usize,
    name: String,
    /// Signature text from `pub fn` to the body `{` or trailing `;`.
    text: String,
}

/// Extracts every non-test `pub fn` signature (joined across lines).
fn pub_fn_signatures(file: &SourceFile) -> Vec<PubFnSig> {
    let mut out = Vec::new();
    for (idx, line) in file.non_test() {
        for at in word_positions(&line.code, "fn") {
            let before = line.code[..at].trim_end();
            if !before.ends_with("pub") {
                continue;
            }
            let after = &line.code[at + 2..];
            let name: String = after
                .trim_start()
                .chars()
                .take_while(|c| is_ident(*c))
                .collect();
            if name.is_empty() {
                continue;
            }
            // Join lines until the body opens (or the item ends) to get
            // the whole signature, including multi-line returns.
            let mut text = String::new();
            'join: for l in &file.lines[idx..(idx + 40).min(file.lines.len())] {
                for c in l.code.chars() {
                    if c == '{' {
                        break 'join;
                    }
                    text.push(c);
                    if c == ';' {
                        break 'join;
                    }
                }
                text.push(' ');
            }
            out.push(PubFnSig {
                line: idx,
                name,
                text,
            });
        }
    }
    out
}

// --------------------------------------------------------------- atomics

const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn rule_atomics(files: &[SourceFile], policy: &Policy, diags: &mut Vec<Diagnostic>) {
    for file in files {
        if !Policy::is_lib_code(&file.rel) {
            continue;
        }
        let allowed = policy.atomics_allowlist.contains(&file.rel);
        for (idx, line) in file.non_test() {
            for variant in ATOMIC_ORDERINGS {
                let needle = format!("Ordering::{variant}");
                for at in word_positions(&line.code, &needle) {
                    let _ = at;
                    if !allowed {
                        diag(
                            diags,
                            &file.rel,
                            idx + 1,
                            "A001",
                            format!("atomic `{needle}` outside the atomics allowlist"),
                            "atomics are confined to the cost meter, buffer pool, and \
                             parallel stage; use those abstractions instead",
                        );
                    } else if *variant == "Relaxed"
                        && !comment_nearby(file, idx, policy.relaxed_window, "Relaxed")
                    {
                        diag(
                            diags,
                            &file.rel,
                            idx + 1,
                            "A002",
                            "`Ordering::Relaxed` without an adjacent justification comment",
                            "say in a nearby comment why relaxed ordering is sound here \
                             (mention `Relaxed`)",
                        );
                    }
                }
            }
        }
    }
}

// -------------------------------------------------------------- deferred

/// Rules `D001`/`D002`: per-session deferred state (the thread-local
/// touch-and-charge buffers behind the buffer pool's lock-free hit path)
/// is confined to allowlisted modules, and every such module must pair its
/// `thread_local!` holder with a `Drop` guard — deferred *counters* must
/// be absorbed on every exit path (thread teardown included), or the
/// pool's `hits + misses == accesses` conservation property silently
/// breaks under concurrency.
fn rule_deferred(files: &[SourceFile], policy: &Policy, diags: &mut Vec<Diagnostic>) {
    for file in files {
        if !Policy::is_lib_code(&file.rel) {
            continue;
        }
        let allowed = policy.deferred_allowlist.contains(&file.rel);
        let mut uses_tls = false;
        for (idx, line) in file.non_test() {
            if !word_positions(&line.code, "thread_local").is_empty() {
                uses_tls = true;
                if !allowed {
                    diag(
                        diags,
                        &file.rel,
                        idx + 1,
                        "D001",
                        "`thread_local!` state outside the deferred-state allowlist",
                        "per-session deferred state is confined to the touch module;                          buffer through it or extend Policy::deferred_allowlist with a                          justification",
                    );
                }
            }
        }
        if allowed && uses_tls {
            // Matches both `impl Drop for T` and the generic
            // `impl<S: …> Drop for T<S>` form.
            let has_drop_guard = file
                .non_test()
                .any(|(_, l)| l.code.contains("impl") && l.code.contains("Drop for"));
            if !has_drop_guard {
                diag(
                    diags,
                    &file.rel,
                    0,
                    "D002",
                    "per-session deferred counters lack a `Drop` guard",
                    "deferred counters must be absorbed on every exit path: give the                      thread-local holder a Drop impl that lands its pending tally in                      the pool-shared counters",
                );
            }
        }
    }
}

// --------------------------------------------------------- sync protocol

/// One function's lexical extent: 0-based lines `[start, end]`, inclusive
/// of the `fn` line and the closing brace.
struct FnSpan {
    start: usize,
    end: usize,
}

/// Lexical spans of every `fn` that has a body, in source order. Nested
/// functions get their own (contained) span; use [`innermost`] to
/// attribute a line to the tightest enclosing function.
fn function_spans(file: &SourceFile) -> Vec<FnSpan> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        for at in word_positions(&line.code, "fn") {
            // Walk forward from the keyword to the body `{` (or give up
            // at a `;`: a bodyless trait-method declaration).
            let mut depth = 0i32;
            let mut pos = at + 2;
            let mut row = idx;
            let body = 'find: loop {
                let code = &file.lines[row].code;
                for c in code[pos.min(code.len())..].chars() {
                    match c {
                        '{' => break 'find Some(row),
                        ';' => break 'find None,
                        _ => {}
                    }
                }
                row += 1;
                pos = 0;
                if row >= file.lines.len() || row > idx + 40 {
                    break None;
                }
            };
            let Some(body_row) = body else { continue };
            // Brace-match from the body line to the function's end.
            let mut row = body_row;
            let mut opened = false;
            'scan: while row < file.lines.len() {
                for c in file.lines[row].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => {
                            depth -= 1;
                            if opened && depth == 0 {
                                break 'scan;
                            }
                        }
                        _ => {}
                    }
                }
                row += 1;
            }
            out.push(FnSpan {
                start: idx,
                end: row.min(file.lines.len() - 1),
            });
        }
    }
    out
}

/// Index of the tightest span containing `line`, if any.
fn innermost(spans: &[FnSpan], line: usize) -> Option<usize> {
    spans
        .iter()
        .enumerate()
        .filter(|(_, s)| s.start <= line && line <= s.end)
        .max_by_key(|(_, s)| s.start)
        .map(|(i, _)| i)
}

/// The receiver chain ending at byte offset `end` (exclusive): identifier
/// segments joined by `.`, index brackets included (`self.shards[i].state`).
fn receiver_chain(code: &str, end: usize) -> &str {
    let bytes = code.as_bytes();
    let mut start = end;
    while start > 0 {
        let c = bytes[start - 1] as char;
        if is_ident(c) || c == '.' || c == '[' || c == ']' {
            start -= 1;
        } else {
            break;
        }
    }
    &code[start..end]
}

/// The last identifier segment of a receiver chain (`state` for
/// `self.shards[i].state`), or `None` for an empty chain.
fn chain_tail(chain: &str) -> Option<&str> {
    let seg = chain.rsplit('.').next()?.trim_end_matches(['[', ']']);
    let seg: &str = seg.split('[').next().unwrap_or(seg);
    (!seg.is_empty() && seg.chars().all(is_ident)).then_some(seg)
}

/// The crate short-name of a workspace path (`storage` for
/// `crates/storage/src/…`), used to namespace lock nodes: lock names only
/// unify within one crate, since guards do not cross crate boundaries.
fn crate_short_name(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("workspace")
}

/// One lock acquisition found by the lexical scan.
struct Acquisition {
    /// Namespaced lock node (`storage::state`).
    node: String,
    /// 0-based line.
    line: usize,
    /// `let`-bound guard: held from here to the end of the function
    /// (unless explicitly `drop`ped); a plain temporary is released at
    /// the end of its statement and never *holds*.
    let_bound: bool,
    /// The guard's binding name, for `drop(name)` release tracking.
    binding: Option<String>,
}

/// Guard-preserving adapters: chaining one of these onto a lock call
/// still binds the guard itself.
const GUARD_ADAPTERS: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// Byte offset just past the `)` matching the `(` at `open`, same line
/// only.
fn close_paren(code: &str, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, c) in code[open..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + i + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// True when the expression continuing at `(row, pos)` ends the `let`
/// statement with the guard still bound: optional `unwrap`-family
/// adapters, then `;`. A chain that projects a field or calls anything
/// else consumes the guard within the statement (so the binding holds a
/// value, not the lock).
fn is_guard_stmt(file: &SourceFile, mut row: usize, mut pos: usize) -> bool {
    let limit = (row + 5).min(file.lines.len().saturating_sub(1));
    loop {
        let code = &file.lines[row].code;
        let from = pos.min(code.len());
        let Some(off) = code[from..].find(|c: char| !c.is_whitespace()) else {
            if row >= limit {
                return false;
            }
            row += 1;
            pos = 0;
            continue;
        };
        let at = from + off;
        match code[at..].chars().next() {
            Some(';') => return true,
            Some('?') => pos = at + 1,
            Some('.') => {
                let name: String = code[at + 1..]
                    .chars()
                    .take_while(|c| is_ident(*c))
                    .collect();
                if !GUARD_ADAPTERS.contains(&name.as_str()) {
                    return false;
                }
                let open = at + 1 + name.len();
                if next_nonspace(code, open) != Some('(') {
                    return false;
                }
                let open = open + code[open..].find('(').unwrap_or(0);
                match close_paren(code, open) {
                    Some(end) => pos = end,
                    None => return false,
                }
            }
            _ => return false,
        }
    }
}

/// Lock-acquisition sites on one masked code line: `recv.lock()` method
/// calls and `lock(&expr)` helper calls. `try_lock` is deliberately
/// ignored — it cannot block, so it forms no deadlock edge — and a line
/// containing a closure bar before the call is skipped (the definition
/// site acquires nothing).
fn lock_acquisitions(krate: &str, file: &SourceFile, idx: usize) -> Vec<Acquisition> {
    let code = &file.lines[idx].code;
    let mut out = Vec::new();
    let trimmed = code.trim_start();
    let is_let = trimmed.starts_with("let ");
    let binding = is_let.then(|| {
        trimmed["let ".len()..]
            .trim_start()
            .trim_start_matches("mut ")
            .chars()
            .take_while(|c| is_ident(*c))
            .collect::<String>()
    });
    for at in word_positions(code, "lock") {
        if next_nonspace(code, at + "lock".len()) != Some('(') {
            continue;
        }
        if code[..at].contains('|') {
            continue;
        }
        let before = code[..at].trim_end();
        let name = if before.ends_with('.') {
            // `recv.lock()`: the lock is the receiver's last segment.
            chain_tail(receiver_chain(code, before.len() - 1)).map(str::to_string)
        } else if before.ends_with("fn") {
            // A `fn lock(…)` definition, not an acquisition.
            None
        } else {
            // `lock(&expr)` helper: the lock is the argument's last
            // segment.
            let open = code[at..].find('(').map(|p| at + p + 1);
            open.and_then(|o| {
                let arg_end = code[o..].find(')').map_or(code.len(), |p| o + p);
                let arg = code[o..arg_end].trim().trim_start_matches(['&', '*']);
                chain_tail(arg).map(str::to_string)
            })
        };
        let Some(name) = name else { continue };
        let call_open = at + code[at..].find('(').unwrap_or(0);
        let let_bound = is_let
            && close_paren(code, call_open)
                .is_some_and(|end| is_guard_stmt(file, idx, end));
        out.push(Acquisition {
            node: format!("{krate}::{name}"),
            line: idx,
            let_bound,
            binding: binding.clone(),
        });
    }
    out
}

/// Rule `S001`: build the workspace's static lock-acquisition graph — an
/// edge `a → b` wherever a function acquires `b` while (lexically) still
/// holding `a` — and fail on any cycle, the classic deadlock shape. The
/// scan is intra-procedural and lexical: `let`-bound guards are assumed
/// held to the end of the function (or an explicit `drop`), temporaries
/// to the end of their statement.
fn rule_lock_order(files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
    // (from, to) → first site.
    let mut edges: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    for file in files {
        if !Policy::is_lib_code(&file.rel) {
            continue;
        }
        let krate = crate_short_name(&file.rel);
        let spans = function_spans(file);
        for (si, span) in spans.iter().enumerate() {
            // Held guards: (binding, node).
            let mut held: Vec<(Option<String>, String)> = Vec::new();
            for idx in span.start..=span.end {
                if file.test_mask[idx] || innermost(&spans, idx) != Some(si) {
                    continue;
                }
                let code = &file.lines[idx].code;
                // `drop(name)` releases the named guard early.
                for at in word_positions(code, "drop") {
                    if next_nonspace(code, at + "drop".len()) != Some('(') {
                        continue;
                    }
                    let open = at + code[at..].find('(').unwrap_or(0) + 1;
                    let arg: String = code[open..]
                        .trim_start()
                        .chars()
                        .take_while(|c| is_ident(*c))
                        .collect();
                    held.retain(|(b, _)| b.as_deref() != Some(arg.as_str()));
                }
                for acq in lock_acquisitions(krate, file, idx) {
                    for (_, h) in &held {
                        edges
                            .entry((h.clone(), acq.node.clone()))
                            .or_insert_with(|| (file.rel.clone(), acq.line + 1));
                    }
                    if acq.let_bound {
                        held.push((acq.binding.clone(), acq.node.clone()));
                    }
                }
            }
        }
    }
    for cycle in graph_cycles(&edges) {
        let parts: Vec<String> = cycle
            .iter()
            .map(|(from, to, file, line)| format!("{from} -> {to} ({file}:{line})"))
            .collect();
        let (_, _, file, line) = &cycle[0];
        diag(
            diags,
            file,
            *line,
            "S001",
            format!("lock-acquisition cycle: {}", parts.join(", ")),
            "pick one global acquisition order for these locks (or collapse them \
             into a single lock); a cycle in the static graph is the classic \
             deadlock shape",
        );
    }
}

/// Strongly-connected components with more than one node (or a self
/// edge), each reported as its sorted intra-component edge list.
#[allow(clippy::type_complexity)]
fn graph_cycles(
    edges: &BTreeMap<(String, String), (String, usize)>,
) -> Vec<Vec<(String, String, String, usize)>> {
    use std::collections::BTreeSet;
    let nodes: BTreeSet<&String> = edges.keys().flat_map(|(a, b)| [a, b]).collect();
    let index: BTreeMap<&String, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let names: Vec<&String> = nodes.into_iter().collect();
    let mut adj = vec![Vec::new(); names.len()];
    for (a, b) in edges.keys() {
        adj[index[a]].push(index[b]);
    }
    // Tarjan, iterative for determinism over sorted adjacency.
    let n = names.len();
    let (mut idx, mut low, mut on, mut order) = (vec![usize::MAX; n], vec![0; n], vec![false; n], 0);
    let mut stack = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut ncomp = 0;
    for root in 0..n {
        if idx[root] != usize::MAX {
            continue;
        }
        let mut call = vec![(root, 0usize)];
        while let Some(&mut (v, ref mut ei)) = call.last_mut() {
            if *ei == 0 {
                idx[v] = order;
                low[v] = order;
                order += 1;
                stack.push(v);
                on[v] = true;
            }
            if let Some(&w) = adj[v].get(*ei) {
                *ei += 1;
                if idx[w] == usize::MAX {
                    call.push((w, 0));
                } else if on[w] {
                    low[v] = low[v].min(idx[w]);
                }
            } else {
                if low[v] == idx[v] {
                    while let Some(w) = stack.pop() {
                        on[w] = false;
                        comp[w] = ncomp;
                        if w == v {
                            break;
                        }
                    }
                    ncomp += 1;
                }
                call.pop();
                if let Some(&mut (u, _)) = call.last_mut() {
                    low[u] = low[u].min(low[v]);
                }
            }
        }
    }
    let mut cycles = Vec::new();
    for c in 0..ncomp {
        let members: Vec<usize> = (0..n).filter(|v| comp[*v] == c).collect();
        let cyclic = members.len() > 1
            || members
                .iter()
                .any(|&v| edges.contains_key(&(names[v].clone(), names[v].clone())));
        if !cyclic {
            continue;
        }
        let mut cycle_edges: Vec<(String, String, String, usize)> = edges
            .iter()
            .filter(|((a, b), _)| {
                comp[index[a]] == c && comp[index[b]] == c
            })
            .map(|((a, b), (f, l))| (a.clone(), b.clone(), f.clone(), *l))
            .collect();
        cycle_edges.sort();
        cycles.push(cycle_edges);
    }
    cycles
}

/// Rule `S002`: every mirror-slot store (`….mirror.set(…)` or
/// `….mirror.fill_vacant(…)`) must sit lexically between
/// `begin_write()` and `end_write()` in the same function, unless the
/// function is documented as running inside a caller's writer section
/// (a comment containing "writer section").
fn rule_writer_section(files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
    const STORES: &[&str] = &["set", "fill_vacant"];
    for file in files {
        if !Policy::is_lib_code(&file.rel) {
            continue;
        }
        let spans = function_spans(file);
        for (si, span) in spans.iter().enumerate() {
            let doc_lo = span.start.saturating_sub(6);
            let exempt = file.lines[doc_lo..=span.end]
                .iter()
                .any(|l| l.comment.contains("writer section"));
            if exempt {
                continue;
            }
            let mut depth = 0i32;
            for idx in span.start..=span.end {
                if file.test_mask[idx] || innermost(&spans, idx) != Some(si) {
                    continue;
                }
                let code = &file.lines[idx].code;
                // Events in byte order: writer-section brackets and
                // mirror stores.
                let mut events: Vec<(usize, i32, bool)> = Vec::new();
                for at in word_positions(code, "begin_write") {
                    events.push((at, 1, false));
                }
                for at in word_positions(code, "end_write") {
                    events.push((at, -1, false));
                }
                for store in STORES {
                    for at in word_positions(code, store) {
                        if next_nonspace(code, at + store.len()) != Some('(') {
                            continue;
                        }
                        let before = code[..at].trim_end();
                        if !before.ends_with('.') {
                            continue;
                        }
                        let chain = receiver_chain(code, before.len() - 1);
                        let on_mirror = chain
                            .split('.')
                            .any(|seg| seg.split('[').next() == Some("mirror"));
                        if on_mirror {
                            events.push((at, 0, true));
                        }
                    }
                }
                events.sort_by_key(|e| e.0);
                for (_, delta, is_store) in events {
                    if is_store && depth <= 0 {
                        diag(
                            diags,
                            &file.rel,
                            idx + 1,
                            "S002",
                            "mirror-slot store outside a seqlock writer section",
                            "bracket the store with begin_write()/end_write(), or \
                             document the function as running inside a caller's \
                             writer section",
                        );
                    }
                    depth += delta;
                }
            }
        }
    }
}

/// Atomic method-call tokens rule `S003` looks for.
const ATOMIC_CALLS: &[&str] = &[
    ".load(",
    ".store(",
    ".fetch_add(",
    ".fetch_max(",
    ".fetch_min(",
    ".fetch_sub(",
    ".fetch_or(",
    ".fetch_and(",
    ".compare_exchange",
    ".swap(",
];

/// Field-name fragments whose atomics are facade-protected.
const PROTECTED_FIELDS: &[&str] = &["mirror", "published", "deferred", "tally"];

/// Rule `S003`: the protected concurrency fields — the seqlock mirror,
/// the WAL publication frontier, the deferred tallies — may be touched
/// with raw atomic operations only inside the designated Sync-facade
/// modules, where the protocol (and its model-checked twin) lives.
fn rule_facade_atomics(files: &[SourceFile], policy: &Policy, diags: &mut Vec<Diagnostic>) {
    for file in files {
        if !Policy::is_lib_code(&file.rel) || policy.facade_modules.contains(&file.rel) {
            continue;
        }
        for (idx, line) in file.non_test() {
            if !line.code.contains("Ordering::") {
                continue;
            }
            if !ATOMIC_CALLS.iter().any(|t| line.code.contains(t)) {
                continue;
            }
            if let Some(field) = PROTECTED_FIELDS.iter().find(|f| line.code.contains(**f)) {
                diag(
                    diags,
                    &file.rel,
                    idx + 1,
                    "S003",
                    format!("raw atomic on protected field `{field}` bypasses the Sync facade"),
                    "go through the facade modules (ProbeMirror / WalTail / \
                     DeferredCounters) so the model checker covers this access",
                );
            }
        }
    }
}

/// The `S` family: concurrency-protocol rules backing the `rdb-check`
/// model checker — what the checker verifies dynamically, these rules
/// pin structurally.
fn rule_sync_protocol(files: &[SourceFile], policy: &Policy, diags: &mut Vec<Diagnostic>) {
    rule_lock_order(files, diags);
    rule_writer_section(files, diags);
    rule_facade_atomics(files, policy, diags);
}

// --------------------------------------------------------------- hygiene

const PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

fn rule_hygiene(files: &[SourceFile], policy: &Policy, diags: &mut Vec<Diagnostic>) {
    for file in files {
        if let Some(_crate_dir) = crate_root_of(&file.rel) {
            let has_header = file
                .lines
                .iter()
                .take(10)
                .any(|l| l.comment.trim_start().starts_with("//!"));
            if !has_header {
                diag(
                    diags,
                    &file.rel,
                    0,
                    "H003",
                    "crate root has no `//!` doc header in its first 10 lines",
                    "open the crate with a module-level doc comment describing its role",
                );
            }
        }
        if !Policy::is_lib_code(&file.rel) {
            continue;
        }
        for sig in pub_fn_signatures(file) {
            if let Some(err_ty) = result_error_type(&sig.text) {
                if err_ty == "String" {
                    diag(
                        diags,
                        &file.rel,
                        sig.line + 1,
                        "H001",
                        format!("public fn `{}` returns `Result<_, String>`", sig.name),
                        "stringly-typed errors are unmatchable; define or reuse a typed \
                         error enum",
                    );
                }
            }
        }
        let print_allowed = policy.print_allowlist.contains(&file.rel);
        if print_allowed {
            continue;
        }
        for (idx, line) in file.non_test() {
            for mac in PRINT_MACROS {
                for at in word_positions(&line.code, mac) {
                    if next_nonspace(&line.code, at + mac.len()) == Some('!') {
                        diag(
                            diags,
                            &file.rel,
                            idx + 1,
                            "H002",
                            format!("`{mac}!` in library code"),
                            "library crates must not write to stdio; return data or use \
                             the trace sink",
                        );
                    }
                }
            }
        }
    }
}

/// The top-level error type of the *return type*'s `Result<…>`, if the
/// signature returns one.
fn result_error_type(sig: &str) -> Option<String> {
    let ret = sig.split("->").nth(1)?;
    let start = ret.find("Result<")?;
    let inner = &ret[start + "Result<".len()..];
    let mut depth = 1i32;
    let mut top_commas = Vec::new();
    let mut end = inner.len();
    for (i, c) in inner.char_indices() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => {
                depth -= 1;
                if depth == 0 {
                    end = i;
                    break;
                }
            }
            ',' if depth == 1 => top_commas.push(i),
            _ => {}
        }
    }
    let last_comma = *top_commas.last()?;
    Some(inner[last_comma + 1..end].trim().to_string())
}

// ------------------------------------------------------------ allowlists

/// Rule `X001`: every allowlist/exemption entry must still match something.
pub fn check_allowlists(files: &[SourceFile], policy: &Policy, diags: &mut Vec<Diagnostic>) {
    let find = |rel: &str| files.iter().find(|f| f.rel == rel);
    let stale = |diags: &mut Vec<Diagnostic>, entry: &str, what: &str| {
        diag(
            diags,
            entry,
            0,
            "X001",
            format!("stale allowlist entry: {what}"),
            "remove the dead exemption from crates/lint/src/policy.rs",
        );
    };
    for entry in &policy.unsafe_allowlist {
        match find(entry) {
            None => stale(diags, entry, "file no longer exists"),
            Some(f) => {
                let used = f
                    .lines
                    .iter()
                    .any(|l| !word_positions(&l.code, "unsafe").is_empty());
                if !used {
                    stale(diags, entry, "file no longer contains `unsafe`");
                }
            }
        }
    }
    for entry in &policy.atomics_allowlist {
        match find(entry) {
            None => stale(diags, entry, "file no longer exists"),
            Some(f) => {
                let used = f.lines.iter().any(|l| {
                    ATOMIC_ORDERINGS
                        .iter()
                        .any(|v| l.code.contains(&format!("Ordering::{v}")))
                });
                if !used {
                    stale(diags, entry, "file no longer uses atomic `Ordering`");
                }
            }
        }
    }
    for entry in &policy.deferred_allowlist {
        match find(entry) {
            None => stale(diags, entry, "file no longer exists"),
            Some(f) => {
                let used = f
                    .lines
                    .iter()
                    .any(|l| !word_positions(&l.code, "thread_local").is_empty());
                if !used {
                    stale(diags, entry, "file no longer declares `thread_local!` state");
                }
            }
        }
    }
    for entry in &policy.facade_modules {
        match find(entry) {
            None => stale(diags, entry, "facade module no longer exists"),
            Some(f) => {
                let used = f.lines.iter().any(|l| l.code.contains("Ordering"));
                if !used {
                    stale(diags, entry, "facade module no longer touches atomics");
                }
            }
        }
    }
    for entry in &policy.print_allowlist {
        match find(entry) {
            None => stale(diags, entry, "file no longer exists"),
            Some(f) => {
                let used = f.lines.iter().any(|l| {
                    PRINT_MACROS.iter().any(|m| {
                        word_positions(&l.code, m)
                            .iter()
                            .any(|at| next_nonspace(&l.code, at + m.len()) == Some('!'))
                    })
                });
                if !used {
                    stale(diags, entry, "file no longer prints");
                }
            }
        }
    }
    for (rel, name, _why) in &policy.scan_entry_exempt {
        match find(rel) {
            None => stale(diags, rel, "exempted file no longer exists"),
            Some(f) => {
                let still_needed = pub_fn_signatures(f)
                    .iter()
                    .any(|s| s.name == *name && !s.text.contains("Result<"));
                if !still_needed {
                    stale(
                        diags,
                        rel,
                        &format!("exemption for `{name}` no longer matches an infallible fn"),
                    );
                }
            }
        }
    }
    for entry in &policy.scan_entry_files {
        if find(entry).is_none() {
            stale(diags, entry, "scan-entry file no longer exists");
        }
    }
    for entry in &policy.planning_modules {
        let matches = files
            .iter()
            .any(|f| f.rel == *entry || (entry.ends_with('/') && f.rel.starts_with(entry.as_str())));
        if !matches {
            stale(diags, entry, "planning-module entry matches no file");
        }
    }
    for entry in &policy.ratchet_scope {
        let matches = files
            .iter()
            .any(|f| f.rel == *entry || (entry.ends_with('/') && f.rel.starts_with(entry.as_str())));
        if !matches {
            stale(diags, entry, "ratchet-scope entry matches no file");
        }
    }
    if let Ok(content) = fs::read_to_string(policy.root.join(&policy.ratchet_path)) {
        if let Ok(baseline) = ratchet::parse(&content) {
            for file in baseline.keys() {
                if find(file).is_none() {
                    stale(diags, file, "baseline entry for a file that no longer exists");
                } else if !policy.in_ratchet_scope(file) {
                    stale(diags, file, "baseline entry outside the ratchet scope");
                }
            }
        }
    }
}
