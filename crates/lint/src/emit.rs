//! Output rendering for diagnostics — in particular the **stable JSON
//! schema** behind `rdb-lint --json`.
//!
//! # Schema (stable)
//!
//! `--json` prints a single JSON array. Each element is an object with
//! exactly these five keys, in this order:
//!
//! | key       | type   | meaning                                         |
//! |-----------|--------|-------------------------------------------------|
//! | `file`    | string | path relative to the workspace root, `/`-separated |
//! | `line`    | number | 1-based line, or `0` for whole-file diagnostics |
//! | `rule`    | string | rule id (`U001`, `P002`, `S001`, ...)           |
//! | `message` | string | human-readable finding                          |
//! | `hint`    | string | how to fix or silence it                        |
//!
//! The array is sorted by `(file, line, rule)` and is `[]` (no newline
//! padding) when the workspace is clean. Consumers may rely on: the key
//! set never shrinking, key order as listed, and the sort order. New
//! keys may be *appended* in a future revision; parsers should ignore
//! unknown keys. The snapshot test `tests/emit.rs` locks this shape.

use crate::rules::Diagnostic;

/// Renders diagnostics as the stable JSON array described in the module
/// docs. Infallible: escaping covers every `char`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"hint\": {}}}",
            json_str(&d.file),
            d.line,
            json_str(d.rule),
            json_str(&d.message),
            json_str(&d.hint)
        ));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// Escapes a string as a JSON string literal, including the quotes.
/// Control characters below U+0020 become `\uXXXX`; everything else
/// passes through (the output is UTF-8, not ASCII-escaped).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
