//! A small hand-rolled Rust source scanner.
//!
//! The rules in [`crate::rules`] match tokens in *code*, not in strings or
//! comments, so a naive grep would misfire on e.g. a test asserting on the
//! literal `"unwrap()"` or a doc comment discussing `panic!`. This scanner
//! walks a file once and splits every line into its **code** text (string
//! and char-literal contents blanked to spaces, comments removed) and its
//! **comment** text (kept verbatim, including the `//`/`/*` introducers, so
//! rules can look for `SAFETY:` or `Relaxed` justifications).
//!
//! Handled: line comments (`//`, `///`, `//!`), nested block comments,
//! string literals with escapes, raw strings (`r"…"`, `r#"…"#`, any hash
//! depth, plus `br`-prefixed forms), byte strings, char literals, and the
//! char-vs-lifetime ambiguity of `'`. Column positions are preserved:
//! masked characters become spaces, so byte offsets in `code` line up with
//! the original source.

/// One source line, split into masked code and verbatim comment text.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Code with comments removed and literal contents blanked.
    pub code: String,
    /// Comment text on this line, exactly as written (may be empty).
    pub comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested depth.
    BlockComment(u32),
    /// Inside `"…"`; `true` after a backslash.
    Str(bool),
    /// Inside a raw string with this many `#`s.
    RawStr(u32),
    /// Inside `'…'`; `true` after a backslash.
    Char(bool),
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scans a whole file into per-line code/comment splits.
pub fn scan(src: &str) -> Vec<Line> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // A line comment ends at the newline; everything else carries
            // its state across the boundary.
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    cur.comment.push(c);
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    cur.comment.push_str("/*");
                    cur.code.push_str("  ");
                    i += 2;
                    continue;
                } else if c == '"' {
                    state = State::Str(false);
                    cur.code.push(' ');
                } else if c == 'r' || c == 'b' {
                    // Possible raw/byte literal prefix — only when not the
                    // tail of a longer identifier (e.g. `for r in`, `var`).
                    let prev_ident = i > 0 && is_ident(chars[i - 1]);
                    if !prev_ident {
                        if let Some(prefix) = try_literal_prefix(&chars, i) {
                            match prefix {
                                Prefix::Raw(hashes, skip) => {
                                    state = State::RawStr(hashes);
                                    for _ in 0..skip {
                                        cur.code.push(' ');
                                    }
                                    i += skip;
                                    continue;
                                }
                                Prefix::Plain(skip) => {
                                    state = State::Str(false);
                                    for _ in 0..skip {
                                        cur.code.push(' ');
                                    }
                                    i += skip;
                                    continue;
                                }
                                Prefix::ByteChar(skip) => {
                                    state = State::Char(false);
                                    for _ in 0..skip {
                                        cur.code.push(' ');
                                    }
                                    i += skip;
                                    continue;
                                }
                            }
                        }
                    }
                    cur.code.push(c);
                } else if c == '\'' {
                    // Lifetime (`'a`) or char literal (`'x'`, `'\n'`)?
                    let looks_like_char = match next {
                        Some('\\') => true,
                        Some(_) => chars.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if looks_like_char {
                        state = State::Char(false);
                        cur.code.push(' ');
                    } else {
                        cur.code.push(c); // lifetime quote stays in code
                    }
                } else {
                    cur.code.push(c);
                }
            }
            State::LineComment => cur.comment.push(c),
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    cur.comment.push_str("*/");
                    if depth == 1 {
                        state = State::Code;
                        cur.code.push_str("  ");
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    i += 2;
                    continue;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    cur.comment.push_str("/*");
                    i += 2;
                    continue;
                }
                cur.comment.push(c);
            }
            State::Str(escaped) => {
                cur.code.push(' ');
                state = if escaped {
                    State::Str(false)
                } else if c == '\\' {
                    State::Str(true)
                } else if c == '"' {
                    State::Code
                } else {
                    State::Str(false)
                };
            }
            State::RawStr(hashes) => {
                cur.code.push(' ');
                if c == '"' {
                    let mut ok = true;
                    for h in 0..hashes as usize {
                        if chars.get(i + 1 + h) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..hashes {
                            cur.code.push(' ');
                        }
                        i += hashes as usize;
                        state = State::Code;
                    }
                }
            }
            State::Char(escaped) => {
                cur.code.push(' ');
                state = if escaped {
                    State::Char(false)
                } else if c == '\\' {
                    State::Char(true)
                } else if c == '\'' {
                    State::Code
                } else {
                    State::Char(false)
                };
            }
        }
        i += 1;
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

enum Prefix {
    /// `r"`, `r#"`, `br##"` …: raw string with N hashes; skip M chars.
    Raw(u32, usize),
    /// `b"`: plain (escaped) byte string; skip M chars.
    Plain(usize),
    /// `b'`: byte char literal; skip M chars.
    ByteChar(usize),
}

/// Detects a raw/byte literal starting at `i` (which holds `r` or `b`).
fn try_literal_prefix(chars: &[char], i: usize) -> Option<Prefix> {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        match chars.get(j) {
            Some('\'') => return Some(Prefix::ByteChar(j + 1 - i)),
            Some('"') => return Some(Prefix::Plain(j + 1 - i)),
            Some('r') => {} // br…
            _ => return None,
        }
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        let mut hashes = 0u32;
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        if chars.get(j) == Some(&'"') {
            return Some(Prefix::Raw(hashes, j + 1 - i));
        }
    }
    None
}

/// Marks lines that belong to a `#[cfg(test)]`-gated item (typically
/// `mod tests { … }`), so per-line rules can skip test-only code.
///
/// Heuristic but robust for this workspace's idiom: after a code line
/// containing `#[cfg(test)]`, the next item's braced body (tracked by brace
/// depth on masked code) is test-only. A semicolon-terminated item (e.g.
/// `#[cfg(test)] use …;`) consumes the marker without opening a region.
pub fn test_lines(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut pending = false;
    let mut depth: i64 = 0;
    let mut in_test = false;
    for (idx, line) in lines.iter().enumerate() {
        let squished: String = line.code.split_whitespace().collect();
        if !in_test && squished.contains("#[cfg(test)]") {
            pending = true;
            mask[idx] = true;
            continue;
        }
        if in_test {
            mask[idx] = true;
            for c in line.code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            in_test = false;
                        }
                    }
                    _ => {}
                }
            }
            continue;
        }
        if pending {
            mask[idx] = true;
            let mut opened = false;
            for c in line.code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    ';' if depth == 0 && !opened => {
                        pending = false;
                        break;
                    }
                    _ => {}
                }
            }
            if opened {
                pending = false;
                if depth > 0 {
                    in_test = true;
                } else {
                    depth = 0;
                }
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_masked() {
        let src = "let x = \"unwrap()\"; // panic! here\nlet y = 1;\n";
        let lines = scan(src);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(!lines[0].code.contains("panic"));
        assert!(lines[0].comment.contains("panic!"));
        assert!(lines[1].code.contains("let y"));
    }

    #[test]
    fn raw_strings_and_chars() {
        let src = "let s = r#\"unsafe { }\"#; let c = 'u'; let l: &'static str = \"x\";\n";
        let lines = scan(src);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("&'static str"), "{}", lines[0].code);
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still */ b\n";
        let lines = scan(src);
        assert!(lines[0].code.contains('a') && lines[0].code.contains('b'));
        assert!(!lines[0].code.contains("inner"));
        assert!(lines[0].comment.contains("inner"));
    }

    #[test]
    fn multi_line_strings_stay_masked() {
        let src = "let s = \"line one\nunwrap() inside\";\nlet t = 0;\n";
        let lines = scan(src);
        assert!(!lines[1].code.contains("unwrap"));
        assert!(lines[2].code.contains("let t"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "\
fn real() {}
#[cfg(test)]
mod tests {
    fn helper() { x.unwrap(); }
}
fn also_real() {}
";
        let lines = scan(src);
        let mask = test_lines(&lines);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_use_statement_does_not_open_region() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() {}\n";
        let lines = scan(src);
        let mask = test_lines(&lines);
        assert_eq!(mask, vec![true, true, false]);
    }
}
