//! Clean fixture: typed errors, no unsafe, no atomics, no prints.

#![forbid(unsafe_code)]

/// Error type with matchable variants.
#[derive(Debug)]
pub enum GoodError {
    /// The input was empty.
    Empty,
}

/// Halves every value, rejecting empty input.
pub fn halve(values: &[u64]) -> Result<Vec<u64>, GoodError> {
    if values.is_empty() {
        return Err(GoodError::Empty);
    }
    Ok(values.iter().map(|v| v / 2).collect())
}
