//! Clean fixture: typed errors, no unsafe, no atomics, no prints.

#![forbid(unsafe_code)]

/// Error type with matchable variants.
#[derive(Debug)]
pub enum GoodError {
    /// The input was empty.
    Empty,
}

/// Halves every value, rejecting empty input.
pub fn halve(values: &[u64]) -> Result<Vec<u64>, GoodError> {
    if values.is_empty() {
        return Err(GoodError::Empty);
    }
    Ok(values.iter().map(|v| v / 2).collect())
}

use std::sync::{Mutex, MutexGuard, PoisonError};

/// A mirror with the seqlock writer API.
pub struct Mirror;

impl Mirror {
    /// Enters the writer section.
    pub fn begin_write(&self) {}
    /// Leaves the writer section.
    pub fn end_write(&self) {}
    /// Stores a key word.
    pub fn set(&self, _slot: usize, _key: u64) {}
}

/// A shard with ordered locks and a seqlock mirror: the S rules must
/// stay silent on this conforming shape.
pub struct Shard {
    /// First in the global acquisition order.
    meta: Mutex<u32>,
    /// Second in the global acquisition order.
    data: Mutex<u32>,
    /// The residency mirror.
    mirror: Mirror,
}

impl Shard {
    fn lock_pair(&self) -> (MutexGuard<'_, u32>, MutexGuard<'_, u32>) {
        let meta = self.meta.lock().unwrap_or_else(PoisonError::into_inner);
        let data = self.data.lock().unwrap_or_else(PoisonError::into_inner);
        (meta, data)
    }

    /// Consistent meta-then-data order; the mirror store is bracketed.
    pub fn publish(&self, key: u64) -> u32 {
        let (meta, data) = self.lock_pair();
        self.mirror.begin_write();
        self.mirror.set(0, key);
        self.mirror.end_write();
        *meta + *data
    }
}
