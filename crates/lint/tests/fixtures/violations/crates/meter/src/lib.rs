//! Meter fixture: allowlisted for atomics and for unsafe code, but
//! missing the justification comments A002 and U002 demand.

use std::sync::atomic::{AtomicU64, Ordering};

static TICKS: AtomicU64 = AtomicU64::new(0);

pub fn tick() -> u64 {
    TICKS.fetch_add(1, Ordering::Relaxed)
}

pub fn read_raw(p: *const u64) -> u64 {
    unsafe { *p }
}

thread_local! {
    // D002: deferred-allowlisted, but no Drop guard absorbs this tally.
    static LOCAL_TICKS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// A probe holding a facade-protected field.
pub struct Probe {
    /// The seqlock version word of a mirror.
    pub mirror_version: AtomicU64,
}

/// S003: raw atomic on a protected (mirror) field outside the facade.
pub fn bypass(p: &Probe) -> u64 {
    p.mirror_version.load(Ordering::Acquire)
}
