//! Meter fixture: allowlisted for atomics and for unsafe code, but
//! missing the justification comments A002 and U002 demand.

use std::sync::atomic::{AtomicU64, Ordering};

static TICKS: AtomicU64 = AtomicU64::new(0);

pub fn tick() -> u64 {
    TICKS.fetch_add(1, Ordering::Relaxed)
}

pub fn read_raw(p: *const u64) -> u64 {
    unsafe { *p }
}

thread_local! {
    // D002: deferred-allowlisted, but no Drop guard absorbs this tally.
    static LOCAL_TICKS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}
