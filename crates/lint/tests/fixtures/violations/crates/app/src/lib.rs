// A deliberately bad crate root: no `//!` doc header (H003), no
// `#![forbid(unsafe_code)]` (U003), and one of every hygiene sin.

pub mod plan;
pub mod scan;

use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

pub fn bump() -> u64 {
    COUNTER.fetch_add(1, Ordering::SeqCst)
}

pub fn parse_flag(raw: &str) -> Result<bool, String> {
    match raw {
        "y" => Ok(true),
        "n" => Ok(false),
        _ => Err(format!("bad flag {raw}")),
    }
}

pub fn debug_dump(x: u64) {
    println!("value = {x}");
}

pub fn peek(slot: *const u64) -> u64 {
    unsafe { *slot }
}

thread_local! {
    // D001: per-session deferred state outside the allowlist.
    static PENDING: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}
