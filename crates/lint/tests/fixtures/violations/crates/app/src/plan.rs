//! Planning fixture: touches fallible storage, which F001 forbids.

use crate::scan::StorageError;

pub fn estimate(rows: u64) -> Result<u64, StorageError> {
    Ok(rows / 2)
}
