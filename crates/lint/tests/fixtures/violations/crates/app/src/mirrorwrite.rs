//! Seqlock-discipline fixture: a bracketed mirror store (clean), a bare
//! store rule S002 must flag, and a helper documented as running inside
//! the caller's writer section (exempt).

/// A stand-in mirror with the seqlock writer API.
pub struct Mirror;

impl Mirror {
    /// Bumps the version to odd.
    pub fn begin_write(&self) {}
    /// Publishes the even version.
    pub fn end_write(&self) {}
    /// Stores a key word.
    pub fn set(&self, _slot: usize, _key: u64) {}
}

/// A shard holding its mirror.
pub struct Shard {
    /// The residency mirror.
    pub mirror: Mirror,
}

/// Properly bracketed store.
pub fn bracketed(s: &Shard) {
    s.mirror.begin_write();
    s.mirror.set(0, 1);
    s.mirror.end_write();
}

pub fn bare(s: &Shard) {
    s.mirror.set(0, 3);
}

/// Caller must be inside a writer section.
pub fn helper(s: &Shard) {
    s.mirror.set(1, 2);
}
