//! Scan fixture: an infallible entry point (F002) and two panic-prone
//! tokens for the ratchet tests (one index expression, one unwrap).

pub struct StorageError;

pub struct Scan {
    items: Vec<u32>,
    pos: usize,
}

impl Scan {
    pub fn step(&mut self) -> Option<u32> {
        let item = self.items[self.pos];
        self.pos += 1;
        Some(item)
    }

    pub fn run(&mut self) -> Result<u32, StorageError> {
        self.step().ok_or(StorageError)
    }

    pub fn finish(self) -> u32 {
        self.items.last().copied().unwrap()
    }
}
