//! Lock-order fixture: `ab` and `ba` acquire the two locks in opposite
//! orders — the classic deadlock cycle rule S001 must catch.

use std::sync::{Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub struct Two {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Two {
    /// Acquires alpha, then beta.
    pub fn ab(&self) -> u32 {
        let a = lock(&self.alpha);
        let b = lock(&self.beta);
        *a + *b
    }

    /// Acquires beta, then alpha — the reversed order.
    pub fn ba(&self) -> u32 {
        let b = lock(&self.beta);
        let a = lock(&self.alpha);
        *a - *b
    }
}
