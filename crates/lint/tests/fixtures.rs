//! Fixture-backed rule tests.
//!
//! The `tests/fixtures/violations/` corpus is a miniature workspace that
//! commits one of every policy sin; each test asserts its rule fires at
//! the exact file and line. The `tests/fixtures/clean/` corpus proves the
//! rules stay silent on conforming code.

use std::path::{Path, PathBuf};

use rdb_lint::policy::Policy;
use rdb_lint::rules::{self, Diagnostic};

fn fixture_root(which: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(which)
}

fn violations_policy(ratchet: &str) -> Policy {
    Policy {
        root: fixture_root("violations"),
        exclude: vec![],
        unsafe_allowlist: vec!["crates/meter/src/lib.rs".into()],
        atomics_allowlist: vec!["crates/meter/src/lib.rs".into()],
        deferred_allowlist: vec!["crates/meter/src/lib.rs".into()],
        relaxed_window: 8,
        safety_window: 5,
        print_allowlist: vec![],
        planning_modules: vec!["crates/app/src/plan.rs".into()],
        scan_entry_files: vec!["crates/app/src/scan.rs".into()],
        scan_entry_exempt: vec![],
        facade_modules: vec![],
        ratchet_scope: vec!["crates/app/src/scan.rs".into()],
        ratchet_path: ratchet.into(),
    }
}

fn lint_violations(ratchet: &str) -> Vec<Diagnostic> {
    let policy = violations_policy(ratchet);
    let files = rules::load_workspace(&policy).expect("fixture walk");
    rules::lint(&files, &policy)
}

fn assert_fires(diags: &[Diagnostic], file: &str, line: usize, rule: &str) {
    assert!(
        diags
            .iter()
            .any(|d| d.file == file && d.line == line && d.rule == rule),
        "expected {rule} at {file}:{line}, got:\n{diags:#?}"
    );
}

#[test]
fn u001_unsafe_outside_allowlist() {
    let diags = lint_violations("ratchet-p001.toml");
    assert_fires(&diags, "crates/app/src/lib.rs", 28, "U001");
}

#[test]
fn u002_unsafe_without_safety_comment() {
    let diags = lint_violations("ratchet-p001.toml");
    assert_fires(&diags, "crates/meter/src/lib.rs", 13, "U002");
}

#[test]
fn u003_crate_root_missing_forbid_attr() {
    let diags = lint_violations("ratchet-p001.toml");
    assert_fires(&diags, "crates/app/src/lib.rs", 0, "U003");
    // The unsafe-allowlisted crate is exempt.
    assert!(
        !diags
            .iter()
            .any(|d| d.rule == "U003" && d.file.starts_with("crates/meter/")),
        "meter crate owns an unsafe allowlist entry, must be U003-exempt"
    );
}

#[test]
fn p001_panic_count_rose_above_baseline() {
    let diags = lint_violations("ratchet-p001.toml");
    assert_fires(&diags, "crates/app/src/scan.rs", 0, "P001");
}

#[test]
fn p002_baseline_stale_after_burn_down() {
    let diags = lint_violations("ratchet-p002.toml");
    assert_fires(&diags, "crates/app/src/scan.rs", 0, "P002");
}

#[test]
fn p002_missing_baseline_file() {
    let diags = lint_violations("no-such-ratchet.toml");
    assert_fires(&diags, "no-such-ratchet.toml", 0, "P002");
}

#[test]
fn f001_planning_module_touches_fallible_storage() {
    let diags = lint_violations("ratchet-p001.toml");
    assert_fires(&diags, "crates/app/src/plan.rs", 3, "F001");
    assert_fires(&diags, "crates/app/src/plan.rs", 5, "F001");
}

#[test]
fn f002_scan_entry_point_without_result() {
    let diags = lint_violations("ratchet-p001.toml");
    assert_fires(&diags, "crates/app/src/scan.rs", 12, "F002");
    // `run` returns Result and must not fire.
    assert!(
        !diags.iter().any(|d| d.rule == "F002" && d.line != 12),
        "only `step` is infallible in the fixture:\n{diags:#?}"
    );
}

#[test]
fn a001_ordering_outside_atomics_allowlist() {
    let diags = lint_violations("ratchet-p001.toml");
    assert_fires(&diags, "crates/app/src/lib.rs", 12, "A001");
}

#[test]
fn a002_relaxed_without_justification() {
    let diags = lint_violations("ratchet-p001.toml");
    assert_fires(&diags, "crates/meter/src/lib.rs", 9, "A002");
}

#[test]
fn d001_thread_local_outside_deferred_allowlist() {
    let diags = lint_violations("ratchet-p001.toml");
    assert_fires(&diags, "crates/app/src/lib.rs", 31, "D001");
}

#[test]
fn d002_deferred_state_without_drop_guard() {
    let diags = lint_violations("ratchet-p001.toml");
    assert_fires(&diags, "crates/meter/src/lib.rs", 0, "D002");
}

#[test]
fn s001_lock_order_cycle_detected() {
    let diags = lint_violations("ratchet-p001.toml");
    // The cycle is reported once, anchored at its smallest edge site
    // (the second acquisition of `ab`, which closes alpha -> beta).
    assert_fires(&diags, "crates/app/src/guards.rs", 19, "S001");
    assert_eq!(
        diags.iter().filter(|d| d.rule == "S001").count(),
        1,
        "one cycle, one diagnostic:\n{diags:#?}"
    );
}

#[test]
fn s002_mirror_store_outside_writer_section() {
    let diags = lint_violations("ratchet-p001.toml");
    assert_fires(&diags, "crates/app/src/mirrorwrite.rs", 31, "S002");
    // The bracketed store and the documented in-section helper are clean.
    assert_eq!(
        diags.iter().filter(|d| d.rule == "S002").count(),
        1,
        "only the bare store may fire:\n{diags:#?}"
    );
}

#[test]
fn s003_protected_atomic_outside_facade() {
    let diags = lint_violations("ratchet-p001.toml");
    assert_fires(&diags, "crates/meter/src/lib.rs", 29, "S003");
}

#[test]
fn h001_public_fn_returns_result_string() {
    let diags = lint_violations("ratchet-p001.toml");
    assert_fires(&diags, "crates/app/src/lib.rs", 15, "H001");
}

#[test]
fn h002_print_macro_in_library_code() {
    let diags = lint_violations("ratchet-p001.toml");
    assert_fires(&diags, "crates/app/src/lib.rs", 24, "H002");
}

#[test]
fn h003_crate_root_without_doc_header() {
    let diags = lint_violations("ratchet-p001.toml");
    assert_fires(&diags, "crates/app/src/lib.rs", 0, "H003");
}

#[test]
fn violations_corpus_fires_exactly_the_expected_set() {
    let diags = lint_violations("ratchet-p001.toml");
    let got: Vec<(&str, usize, &str)> = diags
        .iter()
        .map(|d| (d.file.as_str(), d.line, d.rule))
        .collect();
    let want = [
        ("crates/app/src/guards.rs", 19, "S001"),
        ("crates/app/src/lib.rs", 0, "H003"),
        ("crates/app/src/lib.rs", 0, "U003"),
        ("crates/app/src/lib.rs", 12, "A001"),
        ("crates/app/src/lib.rs", 15, "H001"),
        ("crates/app/src/lib.rs", 24, "H002"),
        ("crates/app/src/lib.rs", 28, "U001"),
        ("crates/app/src/lib.rs", 31, "D001"),
        ("crates/app/src/mirrorwrite.rs", 31, "S002"),
        ("crates/app/src/plan.rs", 3, "F001"),
        ("crates/app/src/plan.rs", 5, "F001"),
        ("crates/app/src/scan.rs", 0, "P001"),
        ("crates/app/src/scan.rs", 12, "F002"),
        ("crates/meter/src/lib.rs", 0, "D002"),
        ("crates/meter/src/lib.rs", 9, "A002"),
        ("crates/meter/src/lib.rs", 13, "U002"),
        ("crates/meter/src/lib.rs", 29, "S003"),
    ];
    assert_eq!(got, want, "diagnostic set drifted:\n{diags:#?}");
}

#[test]
fn x001_stale_allowlist_entries_fail() {
    let mut policy = violations_policy("ratchet-p001.toml");
    // Six kinds of dead carve-out: a ghost file, an
    // unsafe/atomics/deferred/print entry for a file that no longer uses
    // the feature, and a scan-entry exemption for a fn that already
    // returns Result.
    policy.unsafe_allowlist.push("crates/app/src/ghost.rs".into());
    policy.unsafe_allowlist.push("crates/app/src/plan.rs".into());
    policy.atomics_allowlist.push("crates/app/src/plan.rs".into());
    policy.deferred_allowlist.push("crates/app/src/plan.rs".into());
    policy.print_allowlist.push("crates/app/src/plan.rs".into());
    policy.scan_entry_exempt.push((
        "crates/app/src/scan.rs".into(),
        "run".into(),
        "already fallible — this exemption is dead".into(),
    ));
    let files = rules::load_workspace(&policy).expect("fixture walk");
    let mut diags = Vec::new();
    rules::check_allowlists(&files, &policy, &mut diags);
    let x001: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "X001").collect();
    assert_eq!(x001.len(), 6, "expected 6 stale entries:\n{diags:#?}");
    for d in &x001 {
        assert!(
            d.file == "crates/app/src/ghost.rs"
                || d.file == "crates/app/src/plan.rs"
                || d.file == "crates/app/src/scan.rs",
            "unexpected stale entry target: {d:#?}"
        );
    }
}

#[test]
fn clean_corpus_is_silent() {
    let policy = Policy {
        root: fixture_root("clean"),
        exclude: vec![],
        unsafe_allowlist: vec![],
        atomics_allowlist: vec![],
        deferred_allowlist: vec![],
        relaxed_window: 8,
        safety_window: 5,
        print_allowlist: vec![],
        planning_modules: vec![],
        scan_entry_files: vec![],
        scan_entry_exempt: vec![],
        facade_modules: vec![],
        ratchet_scope: vec!["crates/good/src/".into()],
        ratchet_path: "ratchet.toml".into(),
    };
    let files = rules::load_workspace(&policy).expect("fixture walk");
    let diags = rules::lint(&files, &policy);
    assert!(diags.is_empty(), "clean corpus must lint clean:\n{diags:#?}");
}
