//! The real workspace must satisfy its own policy: `cargo test -p
//! rdb-lint` fails the moment a policy violation or a stale ratchet
//! lands, independent of the CI job that runs the binary.

use std::path::Path;

use rdb_lint::policy::Policy;
use rdb_lint::ratchet;
use rdb_lint::rules;

fn workspace_policy() -> Policy {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    Policy::repo(root.canonicalize().expect("workspace root resolves"))
}

#[test]
fn workspace_is_lint_clean() {
    let policy = workspace_policy();
    let files = rules::load_workspace(&policy).expect("workspace walk");
    let diags = rules::lint(&files, &policy);
    assert!(
        diags.is_empty(),
        "the workspace violates its own code policy:\n{diags:#?}"
    );
}

#[test]
fn committed_ratchet_matches_fresh_count() {
    let policy = workspace_policy();
    let files = rules::load_workspace(&policy).expect("workspace walk");
    let committed = ratchet::parse(
        &std::fs::read_to_string(policy.root.join(&policy.ratchet_path))
            .expect("lint-ratchet.toml is committed"),
    )
    .expect("lint-ratchet.toml parses");
    let fresh = rules::fresh_ratchet(&files, &policy);
    assert_eq!(
        committed, fresh,
        "lint-ratchet.toml is out of date: run `cargo run -p rdb-lint -- --update-ratchet`"
    );
}
