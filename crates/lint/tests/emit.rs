//! Snapshot tests locking the stable `--json` schema documented in
//! `rdb_lint::emit`. If one of these fails, either fix the regression
//! or — for a deliberate schema revision — update the docs, this file,
//! and anything downstream that parses the output.

use rdb_lint::emit::{json_str, render_json};
use rdb_lint::rules::Diagnostic;

#[test]
fn empty_run_is_a_bare_array() {
    assert_eq!(render_json(&[]), "[]");
}

#[test]
fn snapshot_two_diagnostics() {
    let diags = [
        Diagnostic {
            file: "crates/app/src/lib.rs".into(),
            line: 12,
            rule: "A001",
            message: "atomic Ordering outside allowlisted modules".into(),
            hint: "move it behind the metering facade".into(),
        },
        Diagnostic {
            file: "crates/app/src/scan.rs".into(),
            line: 0,
            rule: "P001",
            message: "panic-prone tokens rose to 3 (baseline 0)".into(),
            hint: "the ratchet only goes down".into(),
        },
    ];
    let want = concat!(
        "[\n",
        "  {\"file\": \"crates/app/src/lib.rs\", \"line\": 12, \"rule\": \"A001\", ",
        "\"message\": \"atomic Ordering outside allowlisted modules\", ",
        "\"hint\": \"move it behind the metering facade\"},\n",
        "  {\"file\": \"crates/app/src/scan.rs\", \"line\": 0, \"rule\": \"P001\", ",
        "\"message\": \"panic-prone tokens rose to 3 (baseline 0)\", ",
        "\"hint\": \"the ratchet only goes down\"}\n",
        "]"
    );
    assert_eq!(render_json(&diags), want);
}

#[test]
fn string_escaping_covers_specials_and_controls() {
    assert_eq!(json_str("plain"), "\"plain\"");
    assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
    assert_eq!(json_str("line\nfeed\ttab"), "\"line\\nfeed\\ttab\"");
    assert_eq!(json_str("bell\u{07}"), "\"bell\\u0007\"");
    // Non-ASCII passes through as UTF-8 rather than \u escapes.
    assert_eq!(json_str("résumé"), "\"résumé\"");
}

#[test]
fn every_value_round_trips_as_valid_json() {
    // A hand-rolled sanity check (no serde in this workspace): the
    // rendered form of a hostile diagnostic must still balance quotes
    // and braces after unescaping.
    let d = Diagnostic {
        file: "weird\"\\\npath.rs".into(),
        line: 7,
        rule: "H002",
        message: "tab\there".into(),
        hint: "ctrl\u{01}char".into(),
    };
    let out = render_json(std::slice::from_ref(&d));
    // The escaped body must contain no raw control characters and no
    // unescaped quotes besides the structural ones.
    assert!(!out.chars().any(|c| (c as u32) < 0x20 && c != '\n'));
    // Count quotes that are NOT escaped: 5 keys + 4 string values
    // (file/rule/message/hint) with 2 quotes each = 18 structural quotes.
    let bytes = out.as_bytes();
    let structural_quotes = (0..bytes.len())
        .filter(|&i| bytes[i] == b'"' && (i == 0 || bytes[i - 1] != b'\\'))
        .count();
    assert_eq!(structural_quotes, 18);
    assert!(out.starts_with("[\n  {") && out.ends_with("}\n]"));
}
