//! Shared experiment fixtures.

use rdb_btree::BTree;
use rdb_storage::{
    shared_meter, shared_pool, Column, CostConfig, FileId, HeapTable, Record, Schema, SharedCost,
    Value, ValueType,
};

/// A raw (core-level) fixture: one table with modular columns and one
/// index per column — the canonical Jscan playground.
pub struct JscanFixture {
    /// The data table.
    pub table: HeapTable,
    /// One index per column, `indexes[k]` over column `k`.
    pub indexes: Vec<BTree>,
    /// Shared cost meter.
    pub cost: SharedCost,
    /// Row count.
    pub n: i64,
    /// Column moduli (`col_k = i % mods[k]`; the last column is `i`).
    pub mods: Vec<i64>,
}

impl JscanFixture {
    /// Builds the fixture: columns `c0..c{mods.len()-1}` with
    /// `ck = i % mods[k]`, plus a final unique column `id = i`.
    pub fn build(n: i64, mods: &[i64], pool_pages: usize) -> JscanFixture {
        let cost = shared_meter(CostConfig::default());
        let pool = shared_pool(pool_pages, cost.clone());
        let mut columns: Vec<Column> = (0..mods.len())
            .map(|k| Column::new(format!("c{k}"), ValueType::Int))
            .collect();
        columns.push(Column::new("id", ValueType::Int));
        let schema = Schema::new(columns);
        let mut table = HeapTable::with_page_bytes("t", FileId(0), schema, pool.clone(), 1024);
        let mut indexes: Vec<BTree> = (0..=mods.len())
            .map(|k| {
                BTree::new(
                    if k == mods.len() {
                        "idx_id".to_string()
                    } else {
                        format!("idx_c{k}")
                    },
                    FileId(1 + k as u32),
                    pool.clone(),
                    vec![k],
                    64,
                )
            })
            .collect();
        for i in 0..n {
            let mut values: Vec<Value> = mods.iter().map(|m| Value::Int(i % m)).collect();
            values.push(Value::Int(i));
            let rid = table.insert(Record::new(values.clone())).unwrap();
            for (k, idx) in indexes.iter_mut().enumerate() {
                idx.insert(vec![values[k].clone()], rid);
            }
        }
        JscanFixture {
            table,
            indexes,
            cost,
            n,
            mods: mods.to_vec(),
        }
    }

    /// Evicts the cache (cold-start each measured run).
    pub fn cold(&self) {
        self.table.pool().clear();
    }

    /// Ground-truth ids for a predicate over `(c0.., id)`.
    pub fn truth(&self, pred: impl Fn(&[i64], i64) -> bool) -> Vec<i64> {
        (0..self.n)
            .filter(|&i| {
                let cols: Vec<i64> = self.mods.iter().map(|m| i % m).collect();
                pred(&cols, i)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds_consistently() {
        let f = JscanFixture::build(1000, &[10, 7], 10_000);
        assert_eq!(f.table.cardinality(), 1000);
        assert_eq!(f.indexes.len(), 3);
        let t = f.truth(|c, _| c[0] == 3 && c[1] == 3);
        // i ≡ 3 mod 70 → 15 values below 1000 (3, 73, ..., 983).
        assert_eq!(t.len(), 15);
    }
}
