//! E4/E5 — Section 3 competition model.
//!
//! Direct competition: with both plan costs L-shaped (knee c ≪ tail), run
//! the risky plan to its knee and switch. The paper's headline:
//! expected cost ≈ (m₂+c₂+M₁)/2, "about twice smaller than the
//! traditional M₁". Also: the simultaneous proportional-speed variant for
//! hyperbolic shapes, and the two-stage competition (pass `--two-stage`).
//!
//! Run: `cargo run --release -p rdb-bench --bin competition [-- --two-stage]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rdb_bench::report::{fmt, print_table};
use rdb_competition::{
    direct_competition_cost, optimal_switch_point, simultaneous_cost, simultaneous_cost_n,
    two_stage_cost, CostDist, TwoStageConfig,
};

fn direct() {
    println!("== Direct competition (paper Section 3) ==\n");
    println!("A1, A2 two-piece L-shapes: 50% of mass below the knee, tail beyond.\n");
    let mut rows = Vec::new();
    for (knee, tail1, tail2) in [
        (1.0, 200.0, 240.0),
        (1.0, 100.0, 100.0),
        (2.0, 400.0, 2000.0),
        (5.0, 50.0, 80.0),
    ] {
        let a1 = CostDist::l_shape(knee, tail1);
        let a2 = CostDist::l_shape(knee, tail2);
        let m1 = a1.mean();
        let m2_below = a2.mean_below(knee).unwrap_or(0.0);
        let formula = (m2_below + knee + m1) / 2.0;
        let out = direct_competition_cost(&a1, &a2, knee);
        let (s_opt, best) = optimal_switch_point(&a1, &a2);
        rows.push(vec![
            format!("c={knee} M1={}", fmt(m1)),
            fmt(m1),
            fmt(formula),
            fmt(out.expected_cost),
            fmt(out.speedup()),
            fmt(s_opt),
            fmt(best.expected_cost),
        ]);
    }
    print_table(
        &[
            "scenario",
            "traditional M1",
            "(m2+c2+M1)/2",
            "switch@knee",
            "speedup",
            "opt.switch",
            "opt.cost",
        ],
        &rows,
    );

    println!("\n== Simultaneous proportional-speed run (hyperbolic shapes) ==\n");
    let mut rng = StdRng::seed_from_u64(20_260_705);
    let mut rows = Vec::new();
    for b in [0.005, 0.02, 0.1] {
        let a1 = CostDist::Hyperbolic { b, max: 200.0 };
        let a2 = CostDist::Hyperbolic { b, max: 240.0 };
        let seq = direct_competition_cost(&a1, &a2, a2.quantile(0.5));
        let sim = simultaneous_cost(&a1, &a2, 1.0, None, &mut rng, 200_000);
        let capped = simultaneous_cost(
            &a1,
            &a2,
            1.0,
            Some(a2.quantile(0.6)),
            &mut rng,
            200_000,
        );
        rows.push(vec![
            format!("b={b}"),
            fmt(a1.mean()),
            fmt(seq.expected_cost),
            fmt(sim.expected_cost),
            fmt(capped.expected_cost),
            fmt(a1.mean() / capped.expected_cost),
        ]);
    }
    print_table(
        &[
            "shape",
            "traditional",
            "sequential@median",
            "simultaneous",
            "simult.+cap",
            "best speedup",
        ],
        &rows,
    );
}

fn n_way() {
    println!("\n== N-way simultaneous races (sharp vs flat cost shapes) ==\n");
    let mut rng = StdRng::seed_from_u64(99);
    let mut rows = Vec::new();
    for (label, plan) in [
        ("sharp L (b=0.001)", CostDist::Hyperbolic { b: 0.001, max: 1000.0 }),
        ("medium (b=0.02)", CostDist::Hyperbolic { b: 0.02, max: 1000.0 }),
        ("flat (uniform)", CostDist::Uniform { lo: 400.0, hi: 600.0 }),
    ] {
        let mut cells = vec![label.to_string(), fmt(plan.mean())];
        for n in [1usize, 2, 3, 4] {
            let plans = vec![plan; n];
            let speeds = vec![1.0; n];
            let out = simultaneous_cost_n(&plans, &speeds, &mut rng, 100_000);
            cells.push(fmt(out.expected_cost));
        }
        rows.push(cells);
    }
    print_table(
        &["shape", "single mean", "1 racer", "2 racers", "3 racers", "4 racers"],
        &rows,
    );
    println!(
        "\nSharp L-shapes reward extra independent racers (each is another shot\n\
         at a near-free run); flat shapes make every extra racer pure overhead\n\
         — competition exploits uncertainty, it does not create value without it."
    );
}

fn two_stage() {
    println!("\n== Two-stage competition (paper Section 3) ==\n");
    println!("A2 = cheap stage A' + expensive A''; A' continuously refines the A'' estimate.\n");
    let mut rng = StdRng::seed_from_u64(42);
    let mut rows = Vec::new();
    for (label, a1, a2) in [
        ("L-shaped A2", CostDist::Fixed(50.0), CostDist::l_shape(2.0, 400.0)),
        (
            "uniform A2 (no L-shape needed)",
            CostDist::Fixed(50.0),
            CostDist::Uniform { lo: 0.0, hi: 150.0 },
        ),
        (
            "hyperbolic A2",
            CostDist::Fixed(30.0),
            CostDist::Hyperbolic { b: 0.02, max: 300.0 },
        ),
    ] {
        let out = two_stage_cost(&a1, &a2, &TwoStageConfig::default(), &mut rng, 200_000);
        rows.push(vec![
            label.to_string(),
            fmt(out.commit_a1_cost),
            fmt(out.commit_a2_cost),
            fmt(out.expected_cost),
            fmt(out.speedup()),
            format!("{:.0}%", out.abandon_rate * 100.0),
        ]);
    }
    print_table(
        &[
            "scenario",
            "commit A1",
            "commit A2",
            "two-stage",
            "speedup vs best static",
            "abandon rate",
        ],
        &rows,
    );
}

fn main() {
    direct();
    n_way();
    two_stage();
}
