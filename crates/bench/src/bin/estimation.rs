//! E7/E8 — Figure 5: range estimation by descent to a split node,
//! RangeRIDs ≈ k·f^(l−1), and the Section 5 OLTP shortcuts.
//!
//! Accuracy across range sizes (including the tiny/empty ranges that
//! stored histograms miss), the counted ablation, the \[Ant92\] sampling
//! estimator, and the estimation-cost-vs-scan-cost ratio. Pass
//! `--shortcut` for the shortcut-path cost table.
//!
//! Run: `cargo run --release -p rdb-bench --bin estimation [-- --shortcut]`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rdb_bench::fixtures::JscanFixture;
use rdb_bench::report::{fmt, print_table};
use rdb_btree::{Histogram, KeyRange, SampleMethod, Sampler};
use rdb_core::Tscan;
use rdb_storage::Value;

fn main() {
    let f = JscanFixture::build(100_000, &[1000], 200_000);
    let idx = &f.indexes[1]; // unique id index
    println!(
        "index: {} entries, height {}, avg fanout {:.1}\n",
        idx.len(),
        idx.height(),
        idx.avg_fanout()
    );

    println!("== Descent-to-split-node estimates vs truth (Figure 5) ==\n");
    let mut rows = Vec::new();
    for (lo, hi) in [
        (50_000, 49_999), // empty (lo > hi)
        (200_000, 300_000), // empty (outside domain)
        (5_000, 5_000),
        (5_000, 5_002),
        (5_000, 5_030),
        (5_000, 5_300),
        (5_000, 8_000),
        (5_000, 35_000),
        (0, 99_999),
    ] {
        let range = KeyRange::closed(lo, hi);
        let truth = ((hi.min(99_999) - lo.max(0) + 1).max(0)) as f64;
        let est = idx.estimate_range(&range, idx.pool().cost());
        let counted = idx.estimate_range_counted(&range, idx.pool().cost());
        let ratio = if truth > 0.0 {
            fmt(est.estimate / truth)
        } else if est.estimate == 0.0 {
            "exact".into()
        } else {
            "inf".into()
        };
        rows.push(vec![
            format!("[{lo},{hi}]"),
            fmt(truth),
            fmt(est.estimate),
            ratio,
            format!("l={} k={}", est.split_level, est.k),
            if est.exact { "yes" } else { "no" }.into(),
            fmt(counted.estimate),
            format!("{}", est.nodes_visited),
        ]);
    }
    print_table(
        &[
            "range", "truth", "k*f^(l-1)", "est/truth", "split", "exact", "counted", "nodes",
        ],
        &rows,
    );

    println!("\n== Stored histograms vs descent to split node (the Section 5 argument) ==\n");
    // Build a table with a hole so small/empty ranges are interesting:
    // ids 0..40k and 60k..100k (hole at [40k, 60k)).
    {
        use rdb_storage::{
            shared_meter, shared_pool, CostConfig, FileId, Rid,
        };
        let pool = shared_pool(200_000, shared_meter(CostConfig::default()));
        let mut holed = rdb_btree::BTree::new("idx_holed", FileId(40), pool, vec![0], 64);
        for i in (0..40_000i64).chain(60_000..100_000) {
            holed.insert(vec![Value::Int(i)], Rid::new((i % 1_000_000) as u32, 0));
        }
        let hist = Histogram::equi_width(&holed, 50, holed.pool().cost()).expect("numeric keys");
        let histd = Histogram::equi_depth(&holed, 50, holed.pool().cost()).expect("numeric keys");
        let mut rows = Vec::new();
        for (label, lo, hi, truth) in [
            ("wide live range", 0i64, 29_999i64, 30_000.0),
            ("range in the hole (empty)", 45_000, 45_999, 0.0),
            ("tiny range (3 keys)", 70_000, 70_002, 3.0),
            ("tiny range in hole (empty)", 50_000, 50_002, 0.0),
        ] {
            let r = KeyRange::closed(lo, hi);
            let d = holed.estimate_range(&r, holed.pool().cost());
            rows.push(vec![
                label.into(),
                fmt(truth),
                fmt(hist.estimate_range(&r)),
                fmt(histd.estimate_range(&r)),
                fmt(d.estimate),
                if d.exact { "exact" } else { "est" }.into(),
            ]);
        }
        print_table(
            &[
                "range",
                "truth",
                "equi-width(50)",
                "equi-depth(50)",
                "descent",
                "descent kind",
            ],
            &rows,
        );
        println!(
            "\nHistograms estimate wide ranges well but cannot *detect* tiny or\n\
             empty ranges below bucket granularity — the exact cases the paper\n\
             says 'must be detected and scanned first'. The descent is exact on\n\
             them and always up to date (no rescan maintenance)."
        );
    }

    println!("\n== Sampling estimator [Ant92] vs acceptance/rejection [OlRo89] ==\n");
    let mut rng = StdRng::seed_from_u64(7);
    let mut rows = Vec::new();
    for samples in [100, 400, 1600] {
        let mut ranked = Sampler::new(idx, SampleMethod::Ranked);
        let est_r = ranked
            .estimate_selectivity(samples, &mut rng, idx.pool().cost(), |k, _| {
                let v = k[0].as_i64().unwrap();
                (5_000..=8_000).contains(&v)
            })
            .unwrap()
            * 100_000.0;
        let d_r = ranked.descents();
        let mut ar = Sampler::new(idx, SampleMethod::AcceptReject);
        let est_a = ar
            .estimate_selectivity(samples, &mut rng, idx.pool().cost(), |k, _| {
                let v = k[0].as_i64().unwrap();
                (5_000..=8_000).contains(&v)
            })
            .unwrap()
            * 100_000.0;
        let d_a = ar.descents();
        rows.push(vec![
            format!("{samples} samples"),
            "3001".into(),
            fmt(est_r),
            format!("{d_r}"),
            fmt(est_a),
            format!("{d_a}"),
            fmt(d_a as f64 / d_r as f64),
        ]);
    }
    print_table(
        &[
            "budget",
            "truth",
            "ranked est",
            "descents",
            "A/R est",
            "A/R descents",
            "A/R waste factor",
        ],
        &rows,
    );

    if std::env::args().any(|a| a == "--shortcut") {
        println!("\n== Section 5 shortcuts: estimation cost vs productive scan cost ==\n");
        let tscan = Tscan::full_cost(&f.table);
        let mut rows = Vec::new();
        for (label, lo, hi) in [
            ("empty range", 500_000i64, 600_000i64),
            ("tiny range (3)", 42, 44),
            ("small range (300)", 42, 341),
        ] {
            f.cold();
            let before = f.cost.total();
            let est = idx.estimate_range(
                &KeyRange {
                    lo: rdb_btree::KeyBound::Inclusive(vec![Value::Int(lo)]),
                    hi: rdb_btree::KeyBound::Inclusive(vec![Value::Int(hi)]),
                },
                idx.pool().cost(),
            );
            let est_cost = f.cost.total() - before;
            rows.push(vec![
                label.into(),
                fmt(est.estimate),
                fmt(est_cost),
                fmt(tscan),
                format!("{:.4}%", est_cost / tscan * 100.0),
            ]);
        }
        print_table(
            &["case", "estimate", "estimation cost", "Tscan cost", "ratio"],
            &rows,
        );
        println!(
            "\nThe estimation phase costs a root-to-split-node descent — orders of\n\
             magnitude below any productive phase, as Section 5 requires."
        );
    }
}
