//! E6 — the paper's Section 4 host-variable example:
//!
//! ```sql
//! select * from FAMILIES where AGE >= :A1;
//! ```
//!
//! "with parameter :A1 taking values 0 and 200, delivering all or no
//! records in two different runs. In this case, a correct choice between
//! the sequential (>=0) and index (>=200) retrieval strategies can only be
//! done dynamically on a per-run basis."
//!
//! We sweep :A1, comparing the dynamic optimizer against both static
//! commitments and the per-binding oracle.
//!
//! Run: `cargo run --release -p rdb-bench --bin host_var`

use std::sync::Arc;

use rdb_bench::report::{fmt, print_table};
use rdb_btree::KeyRange;
use rdb_core::baseline::{PredShape, StaticIndexInfo};
use rdb_core::{
    DynamicOptimizer, IndexChoice, OptimizeGoal, RecordPred, RetrievalRequest, StaticOptimizer,
    StaticPlan,
};
use rdb_storage::Record;
use rdb_workload::{families_db, FamiliesConfig};

fn main() {
    let rows = 20_000;
    let db = families_db(&FamiliesConfig {
        rows,
        ..FamiliesConfig::default()
    });
    let table = db.heap("FAMILIES").expect("fixture table");
    let idx_age = db
        .indexes("FAMILIES")
        .expect("fixture indexes")
        .iter()
        .find(|i| i.name() == "IDX_AGE")
        .expect("AGE index");

    // Static plans committed once, before :A1 is known.
    let stats = idx_age.stats();
    let static_opt = StaticOptimizer::default();
    let committed = static_opt.plan(
        table,
        &[StaticIndexInfo {
            entries: stats.entries,
            distinct_keys: stats.distinct_keys,
            avg_fanout: stats.avg_fanout,
            shape: PredShape::Range,
            self_sufficient: false,
        }],
    );
    println!(
        "static optimizer committed (1/3 range-selectivity guess): {committed:?}\n"
    );

    let dynamic = DynamicOptimizer::default();
    let request = |a1: i64| -> RetrievalRequest<'_> {
        let residual: RecordPred = Arc::new(move |r: &Record| r[1].as_i64().unwrap() >= a1);
        RetrievalRequest {
            table,
            cost: table.pool().cost().clone(),
            indexes: vec![IndexChoice::fetch_needed(idx_age, KeyRange::at_least(a1))],
            residual,
            goal: OptimizeGoal::TotalTime,
            order_required: false,
            limit: None,
        }
    };

    let mut out = Vec::new();
    for a1 in [0, 20, 50, 80, 90, 95, 99, 100, 200] {
        db.clear_cache();
        let dyn_run = dynamic.run(&request(a1)).unwrap();
        db.clear_cache();
        let stat_committed = static_opt.execute(committed, &request(a1)).unwrap();
        db.clear_cache();
        let stat_tscan = static_opt.execute(StaticPlan::Tscan, &request(a1)).unwrap();
        db.clear_cache();
        let stat_fscan = static_opt.execute(StaticPlan::Fscan { pos: 0 }, &request(a1)).unwrap();
        assert_eq!(dyn_run.deliveries.len(), stat_tscan.deliveries.len());
        let oracle = stat_tscan.cost.min(stat_fscan.cost);
        out.push(vec![
            format!(":A1={a1}"),
            format!("{}", dyn_run.deliveries.len()),
            fmt(dyn_run.cost),
            fmt(stat_committed.cost),
            fmt(stat_tscan.cost),
            fmt(stat_fscan.cost),
            fmt(oracle),
            fmt(dyn_run.cost / oracle.max(1e-9)),
            dyn_run.strategy.clone(),
        ]);
    }
    print_table(
        &[
            "binding",
            "rows",
            "dynamic",
            "static(committed)",
            "static Tscan",
            "static Fscan",
            "oracle",
            "dyn/oracle",
            "dynamic tactic",
        ],
        &out,
    );
    println!(
        "\nShape to check against the paper: the committed static plan is near-\n\
         optimal on one side of the sweep and catastrophic on the other; the\n\
         dynamic column stays within a small factor of the oracle everywhere,\n\
         switching strategy as :A1 crosses the selectivity crossover."
    );
}
