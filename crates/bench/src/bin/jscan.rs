//! E9/E10 — Section 6 / Figure 6: the joint scan.
//!
//! * Selectivity sweep: dynamic Jscan vs statically-thresholded Jscan
//!   \[MoHa90\] vs single-index Fscan vs Tscan. The shape to check: the
//!   dynamic column tracks the best strategy across the whole sweep,
//!   abandoning unproductive index scans mid-run; the static variants are
//!   each catastrophic somewhere.
//! * `--tiers`: the tiered RID-list storage distribution under an
//!   L-shaped result-size workload.
//!
//! Run: `cargo run --release -p rdb-bench --bin jscan [-- --tiers]`

use std::sync::Arc;

use rdb_bench::fixtures::JscanFixture;
use rdb_bench::report::{fmt, print_table};
use rdb_btree::KeyRange;
use rdb_core::baseline::{estimate_all, StaticJscan, StaticJscanConfig};
use rdb_core::{
    DynamicOptimizer, IndexChoice, OptimizeGoal, RecordPred, RetrievalRequest, StaticOptimizer,
    StaticPlan, Tscan,
};
use rdb_storage::{Record, Value};

fn sweep() {
    // Columns: c0 = i % 1000 (selective eq), c1 = i % m (swept selectivity).
    println!("== Jscan selectivity sweep: AND of two index restrictions ==\n");
    println!("restriction: c0 < K (swept) and c1 = 1 (fixed 1/50)\n");
    let f = JscanFixture::build(50_000, &[1000, 50], 200_000);
    let tscan_cost = Tscan::full_cost(&f.table);
    let dynamic = DynamicOptimizer::default();
    let static_jscan = StaticJscan::new(StaticJscanConfig::default());
    let static_opt = StaticOptimizer::default();

    let mut rows = Vec::new();
    for k in [2i64, 10, 50, 200, 600, 1000] {
        let request = || -> RetrievalRequest<'_> {
            let residual: RecordPred = Arc::new(move |r: &Record| {
                r[0].as_i64().unwrap() < k && r[1] == Value::Int(1)
            });
            RetrievalRequest {
                table: &f.table,
                cost: f.table.pool().cost().clone(),
                indexes: vec![
                    IndexChoice::fetch_needed(&f.indexes[0], KeyRange::at_most(k - 1)),
                    IndexChoice::fetch_needed(&f.indexes[1], KeyRange::eq(1)),
                ],
                residual,
                goal: OptimizeGoal::TotalTime,
                order_required: false,
                limit: None,
            }
        };
        f.cold();
        let dyn_run = dynamic.run(&request()).unwrap();
        f.cold();
        let req = request();
        let est = estimate_all(&req);
        let stat = static_jscan.run(&req, &est).unwrap();
        f.cold();
        let fscan = static_opt.execute(StaticPlan::Fscan { pos: 1 }, &request()).unwrap();
        f.cold();
        let tscan = static_opt.execute(StaticPlan::Tscan, &request()).unwrap();
        assert_eq!(dyn_run.deliveries.len(), tscan.deliveries.len());
        let oracle = fscan.cost.min(tscan.cost).min(stat.cost);
        rows.push(vec![
            format!("K={k}"),
            format!("{}", dyn_run.deliveries.len()),
            fmt(dyn_run.cost),
            fmt(stat.cost),
            fmt(fscan.cost),
            fmt(tscan.cost),
            fmt(dyn_run.cost / oracle.max(1e-9)),
            dyn_run
                .events
                .iter()
                .filter(|e| e.contains("discarded"))
                .count()
                .to_string(),
        ]);
    }
    print_table(
        &[
            "sweep",
            "rows",
            "dynamic Jscan",
            "static Jscan[MoHa90]",
            "Fscan(c1)",
            "Tscan",
            "dyn/best-other",
            "scans abandoned",
        ],
        &rows,
    );
    println!("\n(Tscan reference cost: {})", fmt(tscan_cost));
}

fn tiers() {
    println!("\n== Tiered RID storage under an L-shaped result-size workload ==\n");
    let f = JscanFixture::build(50_000, &[50_000], 200_000);
    let dynamic = DynamicOptimizer::default();
    // Result sizes drawn from an L-shape: mostly tiny, occasionally huge.
    let sizes = [0i64, 1, 3, 7, 15, 20, 40, 120, 800, 4000, 9000];
    let mut rows = Vec::new();
    for &s in &sizes {
        let request = {
            let residual: RecordPred =
                Arc::new(move |r: &Record| r[0].as_i64().unwrap() < s);
            RetrievalRequest {
                table: &f.table,
                cost: f.table.pool().cost().clone(),
                indexes: vec![IndexChoice::fetch_needed(
                    &f.indexes[0],
                    KeyRange::at_most(s - 1),
                )],
                residual,
                goal: OptimizeGoal::TotalTime,
                order_required: false,
                limit: None,
            }
        };
        f.cold();
        let run = dynamic.run(&request).unwrap();
        let tier = run
            .events
            .iter()
            .find_map(|e| {
                if e.contains("final stage") {
                    e.split('(').nth(1).and_then(|t| t.split(' ').next())
                } else {
                    None
                }
            })
            .unwrap_or(if run.strategy == "TinyRangeFetch" {
                "tiny-shortcut"
            } else if run.strategy == "EndOfData" {
                "empty-shortcut"
            } else {
                "(direct)"
            });
        rows.push(vec![
            format!("{s} rids"),
            run.strategy.clone(),
            tier.to_string(),
            fmt(run.cost),
        ]);
    }
    print_table(&["result size", "tactic", "tier", "cost"], &rows);
    println!(
        "\nThe paper's hybrid arrangement: zero -> shortcut, <=20 -> static\n\
         buffer (and the tiny-range initial-stage shortcut), medium -> heap\n\
         buffer, huge -> temp table + bitmap."
    );
}

fn main() {
    sweep();
    tiers();
}
