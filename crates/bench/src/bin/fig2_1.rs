//! E1/E2 — Figure 2.1: transformation of uniform selectivity
//! distributions by AND/OR chains under correlation assumptions, plus the
//! hyperbola-fit errors quoted in Section 2 (pass `--fit`).
//!
//! Run: `cargo run --release -p rdb-bench --bin fig2_1 [-- --fit]`

use rdb_bench::report::{fmt, print_table, sparkline};
use rdb_dist::figures::figure_2_1;
use rdb_dist::{apply_spec, fit_hyperbola, Correlation, Pdf, ShapeSummary};

fn main() {
    println!("== Figure 2.1: transformations of the uniform selectivity distribution ==\n");
    let panels = figure_2_1();
    let rows: Vec<Vec<String>> = panels
        .iter()
        .map(|p| {
            let s = p.summary();
            vec![
                p.label.clone(),
                sparkline(&p.pdf, 24),
                fmt(s.mean),
                fmt(s.std_dev),
                fmt(s.skewness),
                fmt(s.median),
                fmt(s.mass_low),
                fmt(s.mass_high),
            ]
        })
        .collect();
    print_table(
        &[
            "panel", "density", "mean", "sd", "skew", "median", "P(s<=.1)", "P(s>.9)",
        ],
        &rows,
    );

    if std::env::args().any(|a| a == "--fit") {
        println!("\n== Hyperbola fits (paper: &X ~ 1/4, &&X ~ 1/7, &&&X ~ 1/23) ==\n");
        let u = Pdf::uniform();
        let mut rows = Vec::new();
        for spec in ["&X", "&&X", "&&&X", "||X", "&|X"] {
            let pdf = apply_spec(spec, &u, Correlation::Unknown);
            let fit = fit_hyperbola(&pdf);
            rows.push(vec![
                spec.to_string(),
                fmt(fit.rel_error),
                format!("1/{:.0}", 1.0 / fit.rel_error.max(1e-9)),
                fmt(fit.b),
                if fit.mirrored { "at s=1" } else { "at s=0" }.to_string(),
                if ShapeSummary::of(&pdf).is_l_shaped_at_zero()
                    || ShapeSummary::of(&pdf).is_l_shaped_at_one()
                {
                    "L-shape"
                } else {
                    "-"
                }
                .to_string(),
            ]);
        }
        print_table(&["chain", "rel.err", "~1/k", "b", "legs", "shape"], &rows);
        println!(
            "\nNote: exact error values depend on the hyperbola family; the paper's\n\
             claim reproduced here is the magnitude and the strict decrease with\n\
             chain length."
        );
    }
}
