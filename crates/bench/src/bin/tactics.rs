//! E11-E14 — the four retrieval tactics of Section 7, each in its home
//! scenario, against the alternatives it must beat.
//!
//! Run: `cargo run --release -p rdb-bench --bin tactics [-- <name>]`
//! where `<name>` ∈ {background-only, fast-first, sorted, index-only};
//! no argument runs all four.

use std::sync::Arc;

use rdb_bench::fixtures::JscanFixture;
use rdb_bench::report::{fmt, print_table};
use rdb_btree::KeyRange;
use rdb_core::{
    DynamicOptimizer, IndexChoice, KeyPred, OptimizeGoal, RecordPred, RetrievalRequest,
    StaticOptimizer, StaticPlan,
};
use rdb_storage::{Record, Value};

/// E11: total-time + fetch-needed indexes: background-only (Jscan + sorted
/// final fetch) vs committed Fscan vs Tscan.
fn background_only() {
    println!("== E11 background-only tactic (total-time, fetch-needed only) ==\n");
    let f = JscanFixture::build(40_000, &[200, 80], 200_000);
    let dynamic = DynamicOptimizer::default();
    let static_opt = StaticOptimizer::default();
    let mut rows = Vec::new();
    for (a, b) in [(1, 1), (1, 40), (150, 1)] {
        let request = || -> RetrievalRequest<'_> {
            let residual: RecordPred = Arc::new(move |r: &Record| {
                r[0] == Value::Int(a) && r[1] == Value::Int(b)
            });
            RetrievalRequest {
                table: &f.table,
                cost: f.table.pool().cost().clone(),
                indexes: vec![
                    IndexChoice::fetch_needed(&f.indexes[0], KeyRange::eq(a)),
                    IndexChoice::fetch_needed(&f.indexes[1], KeyRange::eq(b)),
                ],
                residual,
                goal: OptimizeGoal::TotalTime,
                order_required: false,
                limit: None,
            }
        };
        f.cold();
        let dynamic_run = dynamic.run(&request()).unwrap();
        f.cold();
        let fscan = static_opt.execute(StaticPlan::Fscan { pos: 0 }, &request()).unwrap();
        f.cold();
        let tscan = static_opt.execute(StaticPlan::Tscan, &request()).unwrap();
        rows.push(vec![
            format!("c0={a},c1={b}"),
            format!("{}", dynamic_run.deliveries.len()),
            fmt(dynamic_run.cost),
            fmt(fscan.cost),
            fmt(tscan.cost),
            dynamic_run.strategy.clone(),
        ]);
    }
    print_table(
        &["restriction", "rows", "background-only", "Fscan", "Tscan", "tactic"],
        &rows,
    );
}

/// E12: fast-first: early termination ≈ Fscan speed; late termination ≈
/// Jscan totals.
fn fast_first() {
    println!("\n== E12 fast-first tactic (borrowing foreground vs background Jscan) ==\n");
    let f = JscanFixture::build(40_000, &[200, 80], 200_000);
    let dynamic = DynamicOptimizer::default();
    let static_opt = StaticOptimizer::default();
    let mut rows = Vec::new();
    for limit in [Some(1), Some(5), Some(25), None] {
        let request = |goal: OptimizeGoal| -> RetrievalRequest<'_> {
            let residual: RecordPred = Arc::new(move |r: &Record| {
                r[0] == Value::Int(1) && r[1] == Value::Int(1)
            });
            RetrievalRequest {
                table: &f.table,
                cost: f.table.pool().cost().clone(),
                indexes: vec![
                    IndexChoice::fetch_needed(&f.indexes[0], KeyRange::eq(1)),
                    IndexChoice::fetch_needed(&f.indexes[1], KeyRange::eq(1)),
                ],
                residual,
                goal,
                order_required: false,
                limit,
            }
        };
        f.cold();
        let ff = dynamic.run(&request(OptimizeGoal::FastFirst)).unwrap();
        f.cold();
        let bg = dynamic.run(&request(OptimizeGoal::TotalTime)).unwrap();
        f.cold();
        let fscan = static_opt.execute(StaticPlan::Fscan { pos: 0 }, &request(OptimizeGoal::FastFirst)).unwrap();
        rows.push(vec![
            match limit {
                Some(n) => format!("stop after {n}"),
                None => "run to completion".into(),
            },
            format!("{}", ff.deliveries.len()),
            fmt(ff.cost),
            fmt(bg.cost),
            fmt(fscan.cost),
        ]);
    }
    print_table(
        &[
            "termination",
            "rows",
            "fast-first",
            "background-only",
            "Fscan",
        ],
        &rows,
    );
    println!(
        "\nShape: for early termination fast-first ~ Fscan (and far below\n\
         background-only); run to completion it degrades gracefully toward\n\
         the background-only cost instead of Fscan's full random-fetch bill."
    );
}

/// E13: sorted tactic: ordered Fscan + parallel filter-producing Jscan vs
/// Fscan alone vs serial filter-then-scan.
fn sorted() {
    println!("\n== E13 sorted tactic (order-needed Fscan + background Jscan filter) ==\n");
    let f = JscanFixture::build(40_000, &[400, 80], 200_000);
    let dynamic = DynamicOptimizer::default();
    let mut rows = Vec::new();
    for sel in [1i64, 5, 40] {
        // order by id; restriction c0 < sel (selective for small sel).
        let request = |with_bgr: bool| -> RetrievalRequest<'_> {
            let residual: RecordPred =
                Arc::new(move |r: &Record| r[0].as_i64().unwrap() < sel);
            let mut indexes = vec![
                IndexChoice::fetch_needed(&f.indexes[2], KeyRange::all()).with_order(),
            ];
            if with_bgr {
                indexes.push(IndexChoice::fetch_needed(
                    &f.indexes[0],
                    KeyRange::at_most(sel - 1),
                ));
            }
            RetrievalRequest {
                table: &f.table,
                cost: f.table.pool().cost().clone(),
                indexes,
                residual,
                goal: OptimizeGoal::FastFirst,
                order_required: true,
                limit: None,
            }
        };
        f.cold();
        let with_filter = dynamic.run(&request(true)).unwrap();
        f.cold();
        let without = dynamic.run(&request(false)).unwrap();
        rows.push(vec![
            format!("c0<{sel}"),
            format!("{}", with_filter.deliveries.len()),
            fmt(with_filter.cost),
            fmt(without.cost),
            fmt(without.cost / with_filter.cost.max(1e-9)),
        ]);
    }
    print_table(
        &[
            "restriction",
            "rows",
            "sorted (Fscan+Jscan filter)",
            "Fscan alone",
            "saving factor",
        ],
        &rows,
    );
}

/// E14: index-only tactic: best Sscan vs Jscan; the Sscan-is-safer
/// asymmetry. A two-column covering index `(c0, c1)` makes the Sscan
/// self-sufficient for the two-column restriction; the background Jscan
/// works from the single-column index on `c1`.
fn index_only() {
    println!("\n== E14 index-only tactic (self-sufficient Sscan vs background Jscan) ==\n");
    let f = JscanFixture::build(40_000, &[200, 80], 200_000);
    // Build the covering index (c0, c1) by walking the heap (setup cost,
    // excluded from measurements by the cold() + per-run cost deltas).
    let mut covering = rdb_btree::BTree::new(
        "idx_c0_c1",
        rdb_storage::FileId(50),
        f.table.pool().clone(),
        vec![0, 1],
        64,
    );
    let mut scan = f.table.scan();
    while let Some((rid, record)) = scan.next(&f.table, f.table.pool().cost()).unwrap() {
        covering.insert(vec![record[0].clone(), record[1].clone()], rid);
    }

    let dynamic = DynamicOptimizer::default();
    let static_opt = StaticOptimizer::default();
    let mut rows = Vec::new();
    for (label, prefix_bound, bgr_useful) in [
        // The restriction is c1==1 only: the covering index has no usable
        // prefix, so the "worst Sscan scans one entire index" (40k
        // entries); the background Jscan's 500-entry scan of idx_c1
        // completes long before that and wins with a sure RID list.
        ("Sscan unselective: whole-index scan, Jscan wins", false, true),
        // The restriction is the covering prefix c0==1 AND c1==1: Sscan
        // walks just the 200-entry prefix; the broad background range is
        // unproductive, Jscan is abandoned, the safe Sscan finishes.
        ("Sscan selective, bgr unproductive: Sscan wins", true, false),
    ] {
        let request = || -> RetrievalRequest<'_> {
            let kp: KeyPred = if prefix_bound {
                Arc::new(move |k: &[Value]| k[0] == Value::Int(1) && k[1] == Value::Int(1))
            } else {
                Arc::new(move |k: &[Value]| k[1] == Value::Int(1))
            };
            let residual: RecordPred = if prefix_bound {
                Arc::new(move |r: &Record| r[0] == Value::Int(1) && r[1] == Value::Int(1))
            } else {
                Arc::new(move |r: &Record| r[1] == Value::Int(1))
            };
            let sscan_range = if prefix_bound {
                KeyRange {
                    lo: rdb_btree::KeyBound::Inclusive(vec![Value::Int(1)]),
                    hi: rdb_btree::KeyBound::Inclusive(vec![Value::Int(1)]),
                }
            } else {
                KeyRange::all()
            };
            let mut indexes = vec![
                IndexChoice::fetch_needed(&covering, sscan_range).with_self_sufficient(kp),
            ];
            if bgr_useful {
                indexes.push(IndexChoice::fetch_needed(&f.indexes[1], KeyRange::eq(1)));
            } else {
                indexes.push(IndexChoice::fetch_needed(
                    &f.indexes[1],
                    KeyRange::at_most(78),
                ));
            }
            RetrievalRequest {
                table: &f.table,
                cost: f.table.pool().cost().clone(),
                indexes,
                residual,
                goal: OptimizeGoal::TotalTime,
                order_required: false,
                limit: None,
            }
        };
        f.cold();
        let run = dynamic.run(&request()).unwrap();
        f.cold();
        // The best static fetch-based comparator for each scenario.
        let fscan = static_opt.execute(
            StaticPlan::Fscan {
                pos: if bgr_useful { 1 } else { 0 },
            },
            &request(),
        ).unwrap();
        assert_eq!(run.deliveries.len(), fscan.deliveries.len());
        rows.push(vec![
            label.into(),
            format!("{}", run.deliveries.len()),
            fmt(run.cost),
            fmt(fscan.cost),
            run.events
                .iter()
                .find(|e| e.contains("won") || e.contains("continues"))
                .cloned()
                .unwrap_or_else(|| run.strategy.clone()),
        ]);
    }
    print_table(
        &["scenario", "rows", "index-only", "best Fscan", "resolution"],
        &rows,
    );
}

fn main() {
    let arg = std::env::args().nth(1);
    match arg.as_deref() {
        Some("background-only") => background_only(),
        Some("fast-first") => fast_first(),
        Some("sorted") => sorted(),
        Some("index-only") => index_only(),
        _ => {
            background_only();
            fast_first();
            sorted();
            index_only();
        }
    }
}
