//! CI gate — the tracing layer's overhead guarantee, measured.
//!
//! The telemetry contract promises that threading [`rdb_core::Tracer`]
//! through every hot path costs nothing when no sink is attached: each
//! would-be event is one pointer-is-null branch, and event payloads are
//! never constructed. This binary measures it: the same warm query batch
//! runs untraced (no sink — the default) and traced (a no-op sink that
//! discards every event), interleaved, min-of-k per arm; the traced arm
//! must stay within the overhead budget (default 2%, override with
//! `TRACE_OVERHEAD_MAX_PCT`). Exits nonzero on regression.
//!
//! It also smoke-checks `EXPLAIN ANALYZE`: the JSON must carry the
//! competition timeline end to end.
//!
//! Run: `cargo run --release -p rdb-bench --bin trace_overhead`

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use rdb_core::{TraceEvent, TraceSink};
use rdb_query::prelude::*;
use rdb_workload::{families_db, FamiliesConfig};

/// Accepts every event and does nothing — isolates emission cost from
/// consumption cost.
struct NoopSink;

impl TraceSink for NoopSink {
    fn emit(&self, _event: TraceEvent) {}
}

const SQLS: [&str; 4] = [
    "select ID from FAMILIES where AGE >= 95",
    "select ID, AGE from FAMILIES where AGE >= 90 and CITY = 0",
    "select ID from FAMILIES where REGION = 2",
    "select ID from FAMILIES where AGE >= 200", // OLTP empty-range shortcut
];
const REPS_PER_BATCH: usize = 5;
const ROUNDS: usize = 40;
const ATTEMPTS: usize = 4;

/// One cold batch: every query, `REPS_PER_BATCH` times, each from a cold
/// buffer pool — the paper's canonical retrieval profile, where per-row
/// work (pool faults, fetches, residual checks) dominates. Returns (rows
/// delivered, wall seconds); the row total keeps the work observable.
fn batch(db: &Db, opts: &QueryOptions) -> (usize, f64) {
    let start = Instant::now();
    let mut rows = 0usize;
    for _ in 0..REPS_PER_BATCH {
        for sql in SQLS {
            db.clear_cache();
            rows += db.query(sql, opts).expect("bench query").rows.len();
        }
    }
    (rows, start.elapsed().as_secs_f64())
}

/// Interleaved paired comparison, alternating arm order each round so
/// frequency scaling and cache drift cannot systematically tax one arm.
/// Returns the median of the per-round `traced / untraced` ratios — pairing
/// cancels slow drift, and the median shrugs off scheduler bursts that a
/// ratio-of-minima statistic is hostage to.
fn measure(db: &Db) -> (f64, f64, f64) {
    let untraced = QueryOptions::new();
    let traced = QueryOptions::new().with_trace(Arc::new(NoopSink));
    // Warm the pool and the allocator before timing anything.
    let (expect, _) = batch(db, &untraced);
    let (_, _) = batch(db, &traced);
    let mut ratios = Vec::with_capacity(ROUNDS);
    let (mut best_untraced, mut best_traced) = (f64::INFINITY, f64::INFINITY);
    for round in 0..ROUNDS {
        let arm = |traced_arm: bool| -> f64 {
            let opts = if traced_arm { &traced } else { &untraced };
            let (rows, t) = batch(db, opts);
            assert_eq!(rows, expect, "a timed batch changed its result");
            t
        };
        let first_traced = round % 2 == 1;
        let t_first = arm(first_traced);
        let t_second = arm(!first_traced);
        let (t_untraced, t_traced) = if first_traced {
            (t_second, t_first)
        } else {
            (t_first, t_second)
        };
        best_untraced = best_untraced.min(t_untraced);
        best_traced = best_traced.min(t_traced);
        ratios.push(t_traced / t_untraced);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = ratios[ROUNDS / 2];
    (best_untraced, best_traced, median)
}

fn explain_analyze_smoke(db: &Db) -> Result<(), String> {
    let ea = db
        .explain_analyze(SQLS[1], &QueryOptions::new())
        .map_err(|e| format!("explain_analyze failed: {e}"))?;
    let json = ea.to_json();
    for needle in [
        "\"sql\":",
        "\"strategy\":",
        "\"cost\":",
        "\"pool\":{\"hits\":",
        "\"events\":[",
        "\"event\":\"tactic_chosen\"",
        "\"event\":\"phase_cost\"",
        "\"event\":\"winner\"",
    ] {
        if !json.contains(needle) {
            return Err(format!("EXPLAIN ANALYZE JSON is missing {needle}: {json}"));
        }
    }
    if ea.events.is_empty() || !ea.render().contains("winner") {
        return Err("EXPLAIN ANALYZE timeline is empty".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let max_pct: f64 = std::env::var("TRACE_OVERHEAD_MAX_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let db = families_db(&FamiliesConfig {
        rows: 20_000,
        ..FamiliesConfig::default()
    });

    if let Err(e) = explain_analyze_smoke(&db) {
        eprintln!("trace_overhead: {e}");
        return ExitCode::FAILURE;
    }
    println!("EXPLAIN ANALYZE smoke: timeline + JSON complete");

    // Wall-clock gates are noisy; min-of-k already filters most of it, and
    // a couple of retries absorb an unlucky scheduler burst without
    // weakening the bound itself.
    let mut last_pct = f64::INFINITY;
    for attempt in 1..=ATTEMPTS {
        let (untraced, traced, median_ratio) = measure(&db);
        last_pct = 100.0 * (median_ratio - 1.0);
        println!(
            "attempt {attempt}: untraced {:.3} ms, no-op sink {:.3} ms, \
             median paired overhead {last_pct:+.2}% (budget {max_pct:.1}%)",
            untraced * 1e3,
            traced * 1e3,
        );
        if last_pct <= max_pct {
            println!("trace_overhead: PASS — disabled-path tracing is free, no-op sink within budget");
            return ExitCode::SUCCESS;
        }
    }
    eprintln!(
        "trace_overhead: FAIL — no-op sink overhead {last_pct:.2}% exceeds {max_pct:.1}% \
         after {ATTEMPTS} attempts"
    );
    ExitCode::FAILURE
}
