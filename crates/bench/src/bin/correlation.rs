//! E18 (supporting claim) — cross-column correlation wrecks independence
//! estimates on *actual data*, the way Section 2 predicts.
//!
//! FAMILIES.INCOME_BAND copies AGE with 80% probability. An optimizer
//! assuming independence estimates `AGE = x AND INCOME_BAND = x` at
//! `sel(AGE=x) · sel(IB=x)` ≈ 0.01%, while the true selectivity is ~0.8%
//! — an ~80× cardinality error from correlation alone, matching the
//! `+1`-leaning correlation curves of Figure 2.1. The dynamic optimizer
//! doesn't care: it observes the actual RID lists.
//!
//! Run: `cargo run --release -p rdb-bench --bin correlation`

use rdb_bench::report::{fmt, print_table};
use rdb_dist::ops::and_selectivity;
use rdb_query::QueryOptions;
use rdb_workload::{families_db, FamiliesConfig};

fn main() {
    let rows = 30_000usize;
    let db = families_db(&FamiliesConfig {
        rows,
        ..FamiliesConfig::default()
    });
    let none = QueryOptions::new();
    let n = rows as f64;

    let mut out = Vec::new();
    for x in [5i64, 30, 70] {
        let age = db
            .query(&format!("select ID from FAMILIES where AGE = {x}"), &none)
            .expect("query")
            .rows
            .len() as f64;
        let band = db
            .query(
                &format!("select ID from FAMILIES where INCOME_BAND = {x}"),
                &none,
            )
            .expect("query")
            .rows
            .len() as f64;
        let both = db
            .query(
                &format!("select ID from FAMILIES where AGE = {x} and INCOME_BAND = {x}"),
                &none,
            )
            .expect("query")
            .rows
            .len() as f64;
        let (sa, sb, st) = (age / n, band / n, both / n);
        let independent = and_selectivity(sa, sb, 0.0);
        let plus_one = and_selectivity(sa, sb, 1.0);
        out.push(vec![
            format!("x = {x}"),
            fmt(sa * 100.0),
            fmt(sb * 100.0),
            fmt(st * 100.0),
            fmt(independent * 100.0),
            fmt(plus_one * 100.0),
            format!("x{:.0}", st / independent.max(1e-12)),
        ]);
    }
    print_table(
        &[
            "binding",
            "sel(AGE)%",
            "sel(IB)%",
            "true AND%",
            "indep. AND%",
            "c=+1 AND%",
            "indep. error",
        ],
        &out,
    );
    println!(
        "\nTrue AND selectivity sits near the c=+1 anchor, tens of times above\n\
         the independence estimate — the compile-time number a [SACL79]-style\n\
         optimizer would multiply its plan costs with. The paper's answer is\n\
         not a better guess but abandoning the single-point guess entirely."
    );
}
