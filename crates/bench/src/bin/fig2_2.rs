//! E3 — Figure 2.2: degradation of certainty. A precise estimate
//! (bell m=0.2, e=0.005) is destroyed step by step by AND/OR applications
//! under unknown correlation, ending in L-shapes — the paper's statements
//! (1)-(3) of Section 2.
//!
//! Run: `cargo run --release -p rdb-bench --bin fig2_2`

use rdb_bench::report::{fmt, print_table, sparkline};
use rdb_dist::figures::figure_2_2;

fn main() {
    println!("== Figure 2.2: degradation of certainty (bell m=0.2, e=0.005) ==\n");
    let panels = figure_2_2();
    let rows: Vec<Vec<String>> = panels
        .iter()
        .map(|p| {
            let s = p.summary();
            let verdict = if s.is_l_shaped_at_zero() {
                "L at 0"
            } else if s.is_l_shaped_at_one() {
                "L at 1"
            } else if s.std_dev < 0.01 {
                "precise"
            } else {
                "spread"
            };
            vec![
                p.label.clone(),
                sparkline(&p.pdf, 24),
                fmt(s.mean),
                fmt(s.std_dev),
                fmt(s.skewness),
                verdict.to_string(),
            ]
        })
        .collect();
    print_table(&["chain", "density", "mean", "sd", "skew", "verdict"], &rows);

    let base_sd = panels[0].summary().std_dev;
    let and_sd = panels
        .iter()
        .find(|p| p.label == "&X")
        .expect("panel &X")
        .summary()
        .std_dev;
    println!(
        "\nStatement (1): one AND multiplies the spread {}x (e=0.005 -> {:.3}),\n\
         i.e. precision relative to the distance from the interval end is\n\
         nullified by a single operator application.",
        fmt(and_sd / base_sd),
        and_sd
    );
}
