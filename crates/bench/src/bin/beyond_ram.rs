//! Beyond-RAM I/O gate — the regime the paper's competition model was
//! built for: tables much larger than the buffer pool, where every
//! optimizer mistake costs real disk traffic.
//!
//! Two hard gates, both on a table at least 8x the pool capacity:
//!
//! 1. **Sequential read-ahead** (wall clock, file-backed): a cold full
//!    scan with read-ahead on must run at least
//!    `READAHEAD_MIN_SPEEDUP`x (default 1.5x) faster than the same scan
//!    with read-ahead off. Off, every miss of a checkpointed page is its
//!    own open + positioned frame read; on, the adaptive window batches
//!    up to 64 frames into one read. The run cross-checks grounding both
//!    ways: real page reads equal the cost meter's simulated misses, and
//!    the batched path issues a small fraction of the off-path's reads.
//! 2. **Scan-resistant retention** (deterministic, simulated): a hot
//!    128-page working set is re-touched between rounds of a big
//!    sequential sweep through a 512-page pool. Midpoint-insertion LRU
//!    must keep the hot set's hit rate at least `RETENTION_MIN_RATIO`x
//!    (default 2x) the pure-LRU baseline — under pure LRU each sweep
//!    flushes the working set, under midpoint insertion single-touch
//!    scan pages die in the old sublist.
//!
//! Environment knobs:
//!
//! * `READAHEAD_MIN_SPEEDUP` — gate 1 floor (default 1.5).
//! * `RETENTION_MIN_RATIO` — gate 2 floor (default 2.0).
//! * `BEYOND_RAM_JSON` — path to write the machine-readable report (the
//!   committed `BENCH_beyond_ram.json` at the repo root).
//!
//! Run: `cargo run --release -p rdb-bench --bin beyond_ram`

use std::path::PathBuf;
use std::time::Instant;

use rdb_bench::report::print_table;
use rdb_query::prelude::*;
use rdb_storage::{
    shared_meter, BufferPool, Column, CostConfig, EvictionPolicy, FileId, PageId, Schema,
    ValueType,
};

/// Buffer-pool capacity for the file-backed scan gate, in pages.
const POOL_PAGES: usize = 256;

/// Minimum table size relative to the pool (the "beyond-RAM" bar).
const TABLE_OVER_POOL: u32 = 8;

fn env_floor(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn bench_dir() -> PathBuf {
    std::env::temp_dir().join(format!("rdb-bench-beyond-ram-{}", std::process::id()))
}

fn best_of<T>(n: usize, mut run: impl FnMut() -> T) -> (T, f64) {
    let mut out = run(); // warm-up pass, also the returned value
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let t = Instant::now();
        out = run();
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    (out, best)
}

/// Builds the beyond-RAM table: small heap pages over 4K disk frames so
/// the page count dwarfs the pool, then checkpoints so every page has a
/// clean frame (cold misses perform real verify-reads).
fn build(dir: &PathBuf) -> Db {
    let _ = std::fs::remove_dir_all(dir);
    let mut db = Db::builder()
        .path(dir)
        .page_bytes(512)
        .pool_pages(POOL_PAGES)
        .open()
        .expect("open fresh bench db");
    db.create_table(
        "BIGTAB",
        Schema::new(vec![
            Column::new("ID", ValueType::Int),
            Column::new("PAYLOAD", ValueType::Str),
        ]),
    )
    .expect("create table");
    let mut i = 0i64;
    loop {
        db.insert(
            "BIGTAB",
            vec![Value::Int(i), Value::Str(format!("{i:>08}-{}", "x".repeat(350)))],
        )
        .expect("insert row");
        i += 1;
        // Stop once the heap is comfortably past the beyond-RAM bar.
        if i % 1024 == 0 {
            let pages = db.heap("BIGTAB").expect("table").page_count();
            if pages >= TABLE_OVER_POOL * POOL_PAGES as u32 {
                break;
            }
        }
    }
    db.checkpoint().expect("checkpoint");
    db
}

/// Gate 1: cold sequential scan, read-ahead on vs off.
fn read_ahead_gate() -> (f64, u64, u64, u64, u32, usize) {
    let dir = bench_dir();
    let db = build(&dir);
    let opts = QueryOptions::new();
    let store = db.store().expect("durable store").clone();
    let pages = db.heap("BIGTAB").expect("table").page_count();
    let rows = db.row_count("BIGTAB").expect("row count") as usize;
    assert!(
        pages >= TABLE_OVER_POOL * POOL_PAGES as u32,
        "table spans {pages} pages, below the beyond-RAM bar of {}x pool ({} pages)",
        TABLE_OVER_POOL,
        TABLE_OVER_POOL * POOL_PAGES as u32
    );

    let cold_scan = |label: &str| {
        db.clear_cache();
        let before = store.stats();
        let result = db.query("select ID from BIGTAB", &opts).expect(label);
        assert_eq!(result.rows.len(), rows, "{label}: row count");
        let real = store.stats().since(&before);
        assert_eq!(
            real.page_reads, result.metrics.pool_misses,
            "{label}: the cost meter's I/O unit must match real page reads cold"
        );
        real
    };

    db.pool().set_read_ahead(true);
    let (on_stats, on_ns) = best_of(5, || cold_scan("cold scan, read-ahead on"));
    db.pool().set_read_ahead(false);
    let (off_stats, off_ns) = best_of(5, || cold_scan("cold scan, read-ahead off"));
    db.pool().set_read_ahead(true);

    assert!(
        on_stats.batch_reads * 2 <= on_stats.page_reads,
        "read-ahead must batch: {} batched reads for {} pages",
        on_stats.batch_reads,
        on_stats.page_reads
    );
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    let speedup = off_ns / on_ns.max(1.0);
    println!(
        "beyond_ram/read_ahead: on {:.2} ms ({} reads in {} batches) vs off {:.2} ms ({} reads)",
        on_ns / 1e6,
        on_stats.page_reads,
        on_stats.batch_reads,
        off_ns / 1e6,
        off_stats.page_reads,
    );
    (
        speedup,
        on_stats.page_reads,
        on_stats.batch_reads,
        off_stats.page_reads,
        pages,
        rows,
    )
}

/// One retention experiment: warm a hot working set into `pool`, then
/// alternate hot re-touches with sequential sweep chunks and report the
/// hot set's hit rate across the pressured rounds.
fn retention_run(policy: EvictionPolicy) -> f64 {
    const CAPACITY: usize = 512;
    const HOT: u32 = 128;
    const FILLER: u32 = 192;
    const ROUNDS: u32 = 16;
    let pool = BufferPool::with_policy(CAPACITY, 1, policy, shared_meter(CostConfig::default()));
    let cost = pool.cost().clone();
    let hot_file = FileId(0);
    let scan_file = FileId(1);
    let touch_hot = |pool: &BufferPool| {
        for p in 0..HOT {
            pool.access(PageId::new(hot_file, p), &cost);
        }
    };
    // Warmup: fault the hot set in (first touch lands in the old
    // sublist), push filler pages through so the midpoint demotions
    // churn past it, then re-touch — the second touch promotes the hot
    // set into the young sublist, marking it as genuinely re-referenced.
    touch_hot(&pool);
    for p in 0..FILLER {
        pool.access(PageId::new(FileId(2), p), &cost);
    }
    touch_hot(&pool);
    let mut hot_hits = 0u64;
    for round in 0..ROUNDS {
        let before = pool.hits();
        touch_hot(&pool);
        hot_hits += pool.hits() - before;
        // One sweep chunk: a pool-sized run of never-again pages, the
        // canonical beyond-RAM sequential scan.
        let first = round * CAPACITY as u32;
        for p in first..first + CAPACITY as u32 {
            pool.access(PageId::new(scan_file, p), &cost);
        }
    }
    hot_hits as f64 / f64::from(HOT * ROUNDS)
}

fn main() {
    let readahead_floor = env_floor("READAHEAD_MIN_SPEEDUP", 1.5);
    let retention_floor = env_floor("RETENTION_MIN_RATIO", 2.0);

    let (speedup, on_reads, on_batches, off_reads, pages, rows) = read_ahead_gate();

    let mid_rate = retention_run(EvictionPolicy::Midpoint);
    let lru_rate = retention_run(EvictionPolicy::Lru);
    // A zero-hit LRU baseline (each sweep flushes everything) makes the
    // ratio degenerate; the absolute check keeps the gate meaningful.
    let ratio = mid_rate / lru_rate.max(1e-9);
    println!(
        "beyond_ram/retention: midpoint hot hit rate {:.1}% vs pure LRU {:.1}%",
        mid_rate * 100.0,
        lru_rate * 100.0,
    );

    print_table(
        &["gate", "measured", "floor"],
        &[
            vec![
                "cold-scan read-ahead speedup".into(),
                format!("{speedup:.2}x"),
                format!("{readahead_floor:.2}x"),
            ],
            vec![
                "hot hit rate, midpoint vs LRU".into(),
                format!("{:.1}% / {:.1}%", mid_rate * 100.0, lru_rate * 100.0),
                format!("{retention_floor:.2}x ratio"),
            ],
        ],
    );

    assert!(
        speedup >= readahead_floor,
        "read-ahead gate: cold sequential scan is only {speedup:.2}x over prefetch-off, \
         below the READAHEAD_MIN_SPEEDUP floor of {readahead_floor:.2}x"
    );
    assert!(
        ratio >= retention_floor && mid_rate >= 0.9,
        "retention gate: midpoint hit rate {:.3} (LRU {:.3}, ratio {ratio:.2}) below the \
         RETENTION_MIN_RATIO floor of {retention_floor:.2}x (and 0.9 absolute)",
        mid_rate,
        lru_rate
    );
    println!("beyond_ram: both gates passed");

    if let Ok(path) = std::env::var("BEYOND_RAM_JSON") {
        let out = format!(
            "{{\n  \"bench\": \"crates/bench/src/bin/beyond_ram.rs\",\n  \
             \"command\": \"BEYOND_RAM_JSON=BENCH_beyond_ram.json cargo run --release -p rdb-bench --bin beyond_ram\",\n  \
             \"note\": \"Beyond-RAM gates on a table >= 8x pool capacity: cold sequential scan with \
             adaptive read-ahead vs per-page reads (wall clock, floor {readahead_floor}x), and hot \
             working-set retention under sequential sweep pressure, midpoint-insertion LRU vs pure \
             LRU (deterministic simulation, floor {retention_floor}x). In-run asserts ground both: \
             real reads == simulated misses cold, and the batched path issues <= half the reads.\",\n  \
             \"table_pages\": {pages},\n  \"pool_pages\": {POOL_PAGES},\n  \"rows\": {rows},\n  \
             \"read_ahead\": {{\n    \"speedup\": {speedup:.2},\n    \"on_page_reads\": {on_reads},\n    \
             \"on_batch_reads\": {on_batches},\n    \"off_page_reads\": {off_reads}\n  }},\n  \
             \"retention\": {{\n    \"midpoint_hot_hit_rate\": {mid_rate:.4},\n    \
             \"lru_hot_hit_rate\": {lru_rate:.4}\n  }}\n}}\n"
        );
        std::fs::write(&path, out).expect("write beyond_ram json");
        println!("wrote {path}");
    }
}
