//! Multi-client throughput — the gate for the `Send + Sync` engine.
//!
//! One shared [`Db`] (FAMILIES, 40k rows, four indexes), N OS threads
//! each driving their own [`rdb_query::Session`] through a fixed query
//! mix for a wall-clock measurement window. Reports queries/second at
//! 1, 2, 4 and 8 threads plus the buffer pool's shard-contention
//! counter, and asserts correctness while it measures: every thread
//! checks each query's row count against the sequentially-computed
//! expectation, and every session meter must end up charged.
//!
//! Environment knobs:
//!
//! * `THROUGHPUT_MEASURE_MS` — per-thread-count measurement window
//!   (default 1500 ms).
//! * `THROUGHPUT_MIN_SPEEDUP` — required 8-thread/1-thread qps ratio
//!   (default 3.0; set 0 to report without gating). The effective gate
//!   is capped at `0.75 × available_parallelism`: scaling past the
//!   core count is physics, not engineering, so on a 1-core CI box the
//!   gate degrades to "no throughput collapse under 8-way contention"
//!   while any ≥4-core machine still demands the full 3x.
//! * `THROUGHPUT_JSON` — path to write the machine-readable report
//!   (the committed `BENCH_concurrency.json` at the repo root).
//! * `THROUGHPUT_POOL_PAGES` — buffer-pool capacity (default 512:
//!   smaller than the FAMILIES heap plus its four indexes, so the mix
//!   runs in the beyond-RAM eviction regime and threads contend for
//!   frames, not just shard locks).
//!
//! Run: `cargo run --release -p rdb-bench --bin throughput`

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rdb_bench::report::{fmt, print_table};
use rdb_query::parser::parse_query;
use rdb_query::{Db, QueryOptions};
use rdb_workload::{families_db, FamiliesConfig};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Case {
    sql: &'static str,
    opts: QueryOptions,
    expected_rows: usize,
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The mixed workload: host-variable sweeps over the uniform column,
/// Zipf-skewed point lookups, a clustered-range scan, and a two-index
/// conjunction — the shapes whose strategies the dynamic optimizer picks
/// per binding.
fn build_workload(db: &Db) -> Vec<Case> {
    let mut cases = Vec::new();
    for a1 in [95i64, 80, 50] {
        cases.push((
            "select * from FAMILIES where AGE >= :A1",
            QueryOptions::new().with_param("A1", a1),
        ));
    }
    for city in [0i64, 7, 200] {
        cases.push((
            "select * from FAMILIES where CITY = :C",
            QueryOptions::new().with_param("C", city),
        ));
    }
    cases.push((
        "select * from FAMILIES where REGION = :R",
        QueryOptions::new().with_param("R", 3i64),
    ));
    cases.push((
        "select * from FAMILIES where AGE >= :A1 and INCOME_BAND >= :I",
        QueryOptions::new()
            .with_param("A1", 90i64)
            .with_param("I", 90i64),
    ));
    cases
        .into_iter()
        .map(|(sql, opts)| {
            let expected_rows = db.query(sql, &opts).expect("workload query").rows.len();
            Case {
                sql,
                opts,
                expected_rows,
            }
        })
        .collect()
}

struct Measurement {
    threads: usize,
    queries: u64,
    elapsed_s: f64,
    qps: f64,
    /// Per-query latency percentiles across every thread, microseconds.
    p50_us: f64,
    p95_us: f64,
    contention: u64,
}

/// The `q`-quantile (nearest-rank) of an unsorted nanosecond sample,
/// in microseconds.
fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)] as f64 / 1e3
}

fn measure(db: &Db, workload: &[Case], threads: usize, window_ms: u64) -> Measurement {
    let specs: Vec<_> = workload
        .iter()
        .map(|c| parse_query(c.sql).expect("workload parses"))
        .collect();
    let contention_before = db.pool().contention();
    let done = AtomicU64::new(0);
    let latencies = std::sync::Mutex::new(Vec::new());
    let start = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let (done, specs, latencies) = (&done, &specs, &latencies);
            s.spawn(move || {
                let session = db.session();
                let mut local = 0u64;
                let mut local_ns: Vec<u64> = Vec::with_capacity(4096);
                // Stagger start positions so threads don't convoy on the
                // same pages in lockstep.
                let mut qi = tid % workload.len();
                while start.elapsed().as_millis() < u128::from(window_ms) {
                    let case = &workload[qi];
                    let q_start = Instant::now();
                    let result = session
                        .query_spec(&specs[qi], &case.opts)
                        .expect("workload query under concurrency");
                    local_ns.push(q_start.elapsed().as_nanos() as u64);
                    assert_eq!(
                        result.rows.len(),
                        case.expected_rows,
                        "thread {tid} got a wrong row count for {:?}",
                        case.sql
                    );
                    local += 1;
                    qi = (qi + 1) % workload.len();
                }
                assert!(
                    session.cost().total() > 0.0,
                    "session meter must be charged"
                );
                // Replay this worker's deferred LRU touches before the
                // scope joins (scoped threads may outlive TLS teardown
                // ordering assumptions; see `rdb_storage::touch`).
                db.pool().flush_session();
                done.fetch_add(local, Ordering::Relaxed);
                latencies
                    .lock()
                    .expect("latency collector")
                    .append(&mut local_ns);
            });
        }
    });
    let elapsed_s = start.elapsed().as_secs_f64();
    let queries = done.load(Ordering::Relaxed);
    let mut all_ns = latencies.into_inner().expect("latency collector");
    all_ns.sort_unstable();
    Measurement {
        threads,
        queries,
        elapsed_s,
        qps: queries as f64 / elapsed_s,
        p50_us: percentile_us(&all_ns, 0.50),
        p95_us: percentile_us(&all_ns, 0.95),
        contention: db.pool().contention() - contention_before,
    }
}

fn write_json(
    path: &str,
    rows: usize,
    pool_pages: usize,
    window_ms: u64,
    cores: usize,
    runs: &[Measurement],
    gate: f64,
) {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"crates/bench/src/bin/throughput.rs\",\n");
    out.push_str(
        "  \"command\": \"THROUGHPUT_JSON=BENCH_concurrency.json cargo run --release -p rdb-bench --bin throughput\",\n",
    );
    out.push_str(&format!("  \"rows\": {rows},\n"));
    out.push_str(&format!("  \"pool_pages\": {pool_pages},\n"));
    out.push_str(&format!("  \"measure_ms_per_thread_count\": {window_ms},\n"));
    out.push_str(&format!("  \"host_parallelism\": {cores},\n"));
    out.push_str(
        "  \"note\": \"One shared Db under a bounded buffer pool (pool_pages < heap + indexes, \
         the beyond-RAM regime); each OS thread drives its own Session (private cost meter) \
         through the mixed FAMILIES workload. Row counts are asserted against the sequential \
         expectation on every query, so these numbers are from verified-correct runs. \
         p50_us/p95_us are per-query wall-clock latency percentiles pooled across all \
         threads at that thread count. \
         shard_contention is the buffer pool's contended-shard-acquisition counter delta \
         for the whole run at that thread count. The speedup gate is capped at \
         0.75 x host_parallelism: thread scaling cannot beat the core count.\",\n",
    );
    let base_qps = runs[0].qps;
    out.push_str("  \"runs\": [\n");
    for (i, m) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"queries\": {}, \"elapsed_s\": {:.3}, \"qps\": {:.1}, \
             \"speedup_vs_1t\": {:.2}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \
             \"shard_contention\": {}}}{}\n",
            m.threads,
            m.queries,
            m.elapsed_s,
            m.qps,
            m.qps / base_qps,
            m.p50_us,
            m.p95_us,
            m.contention,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let last = runs.last().expect("at least one run");
    out.push_str(&format!(
        "  \"gate\": {{\"min_speedup_8t\": {:.2}, \"achieved\": {:.2}}}\n}}\n",
        gate,
        last.qps / base_qps
    ));
    std::fs::write(path, out).expect("write throughput json");
    println!("wrote {path}");
}

fn main() {
    let window_ms = env_f64("THROUGHPUT_MEASURE_MS", 1500.0) as u64;
    let cores = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    let gate = env_f64("THROUGHPUT_MIN_SPEEDUP", 3.0).min(0.75 * cores as f64);
    let rows = 40_000;
    let pool_pages = env_f64("THROUGHPUT_POOL_PAGES", 512.0) as usize;
    let mut config = FamiliesConfig {
        rows,
        ..FamiliesConfig::default()
    };
    config.db.pool_pages = pool_pages;
    let db = families_db(&config);
    let workload = build_workload(&db);
    println!(
        "throughput: {} queries/mix, {} rows, {pool_pages}-page pool, {window_ms} ms per \
         thread count, {cores} cores (effective gate {gate:.2}x)\n",
        workload.len(),
        rows
    );

    // Warm the pool once so every thread count sees the same cache state.
    let _ = measure(&db, &workload, 1, window_ms.min(300));

    let runs: Vec<Measurement> = THREAD_COUNTS
        .iter()
        .map(|&t| measure(&db, &workload, t, window_ms))
        .collect();

    let base_qps = runs[0].qps;
    let mut table = Vec::new();
    for m in &runs {
        table.push(vec![
            m.threads.to_string(),
            m.queries.to_string(),
            fmt(m.qps),
            format!("{:.2}x", m.qps / base_qps),
            format!("{:.0}", m.p50_us),
            format!("{:.0}", m.p95_us),
            m.contention.to_string(),
        ]);
    }
    print_table(
        &[
            "threads",
            "queries",
            "qps",
            "speedup",
            "p50 us",
            "p95 us",
            "shard contention",
        ],
        &table,
    );

    if let Ok(path) = std::env::var("THROUGHPUT_JSON") {
        write_json(&path, rows, pool_pages, window_ms, cores, &runs, gate);
    }

    let achieved = runs.last().expect("runs").qps / base_qps;
    if gate > 0.0 {
        assert!(
            achieved >= gate,
            "throughput gate FAILED: 8-thread speedup {achieved:.2}x < required {gate:.2}x \
             (override with THROUGHPUT_MIN_SPEEDUP)"
        );
        println!("\nthroughput gate passed: {achieved:.2}x >= {gate:.2}x at 8 threads");
    } else {
        println!("\nthroughput gate disabled (THROUGHPUT_MIN_SPEEDUP=0); speedup {achieved:.2}x");
    }
}
