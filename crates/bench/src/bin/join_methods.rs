//! Join-method bench — every method forced to completion, then the
//! dynamic competition, on three canonical two-table shapes.
//!
//! Each shape builds a PARENT/CHILD pair (LCG-generated, fixed seed)
//! and times each feasible [`rdb_core::JoinMethod`] alone via
//! [`rdb_core::run_join_method`], then the full race via
//! [`rdb_core::run_join`]. Reported per run: wall time (best of 3 after
//! a warm-up pass), cost-meter units, and delivered pairs; pair counts
//! are cross-checked between every method before anything is timed.
//!
//! **Gate:** the dynamic competition's cost must stay within
//! `JOIN_GATE_MAX` (default 1.5×) of the best static method on every
//! shape. The committed `BENCH_join.json` baseline (bounded 128-page
//! pool, cold pool before every pass) observed ratios of 1.00/1.00/1.14,
//! so 1.5 leaves a noise band without letting a real regression (a lost
//! race, a broken kill heuristic) through. Cost units are deterministic,
//! so the gate is not wall-clock flaky.
//!
//! Environment knobs:
//!
//! * `JOIN_JSON` — path to write the machine-readable report (the
//!   committed `BENCH_join.json` at the repo root).
//! * `JOIN_GATE_MAX` — dynamic-over-best-static cost ceiling (default
//!   `1.5`; set it empty or huge to effectively disable).
//! * `JOIN_POOL_PAGES` — buffer-pool capacity each shape runs under
//!   (default 128: smaller than the two heaps plus indexes, so every
//!   method races in the beyond-RAM eviction regime rather than with
//!   both tables fully resident).
//!
//! Run: `cargo run --release -p rdb-bench --bin join_methods`

use std::sync::Arc;
use std::time::Instant;

use rdb_bench::report::print_table;
use rdb_btree::BTree;
use rdb_core::{
    run_join, run_join_method, JoinConfig, JoinMethod, JoinOp, JoinRequest, JoinSide, RecordPred,
    SideId, Tracer,
};
use rdb_storage::{
    shared_meter, shared_pool, Column, CostConfig, FileId, HeapTable, Record, Schema, SharedPool,
    Value, ValueType,
};

struct Shape {
    name: &'static str,
    note: &'static str,
    left: HeapTable,
    right: HeapTable,
    idx_l: BTree,
    idx_r: BTree,
    pool: SharedPool,
    left_residual: Option<(RecordPred, f64)>,
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1_442_695_040_888_963_407);
    *state >> 33
}

fn pool_pages() -> usize {
    std::env::var("JOIN_POOL_PAGES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(128)
}

fn build_shape(
    name: &'static str,
    note: &'static str,
    n_parent: u64,
    n_child: u64,
    fk: impl Fn(&mut u64) -> i64,
    left_residual: Option<(RecordPred, f64)>,
) -> Shape {
    let pool = shared_pool(pool_pages(), shared_meter(CostConfig::default()));
    let schema = || {
        Schema::new(vec![
            Column::new("K", ValueType::Int),
            Column::new("V", ValueType::Int),
        ])
    };
    let mut left = HeapTable::with_page_bytes("PARENT", FileId(0), schema(), pool.clone(), 2048);
    let mut right = HeapTable::with_page_bytes("CHILD", FileId(1), schema(), pool.clone(), 2048);
    let mut idx_l = BTree::new("IDX_P", FileId(2), pool.clone(), vec![0], 32);
    let mut idx_r = BTree::new("IDX_C", FileId(3), pool.clone(), vec![0], 32);
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ name.len() as u64;
    for i in 0..n_parent as i64 {
        let rid = left
            .insert(Record::new(vec![Value::Int(i), Value::Int(i % 16)]))
            .expect("insert parent");
        idx_l.insert(vec![Value::Int(i)], rid);
    }
    for i in 0..n_child as i64 {
        let k = fk(&mut state);
        let rid = right
            .insert(Record::new(vec![Value::Int(k), Value::Int(i % 32)]))
            .expect("insert child");
        idx_r.insert(vec![Value::Int(k)], rid);
    }
    Shape {
        name,
        note,
        left,
        right,
        idx_l,
        idx_r,
        pool,
        left_residual,
    }
}

fn shapes() -> Vec<Shape> {
    vec![
        build_shape(
            "pk-fk-uniform",
            "2k unique parents, 8k children, FK uniform over the parent keys",
            2_000,
            8_000,
            |s| (lcg(s) % 2_000) as i64,
            None,
        ),
        build_shape(
            "skewed-fk",
            "2k parents, 8k children, FK quadratically skewed toward low keys",
            2_000,
            8_000,
            |s| {
                let u = (lcg(s) % 10_000) as f64 / 10_000.0;
                (u * u * 2_000.0) as i64
            },
            None,
        ),
        build_shape(
            "selective-left",
            "left residual keeps 1/16 of parents before the join",
            2_000,
            8_000,
            |s| (lcg(s) % 2_000) as i64,
            Some((
                Arc::new(|r: &Record| r[1] == Value::Int(3)),
                2_000.0 / 16.0,
            )),
        ),
    ]
}

impl Shape {
    fn request(&self) -> JoinRequest<'_> {
        let mut l = JoinSide::new(&self.left).on_column(0).with_index(&self.idx_l);
        if let Some((pred, est)) = &self.left_residual {
            l = l.with_residual(pred.clone(), *est);
        }
        let r = JoinSide::new(&self.right).on_column(0).with_index(&self.idx_r);
        JoinRequest::new(l, r, JoinOp::Eq, self.pool.cost().clone())
    }
}

struct Timed {
    label: String,
    pairs: usize,
    cost: f64,
    best_ns: f64,
}

fn time_run(label: String, mut run: impl FnMut() -> (usize, f64)) -> Timed {
    let (pairs, cost) = run(); // warm-up, also the checked answer
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let (p, _) = run();
        assert_eq!(p, pairs, "{label}: pair count drifted between passes");
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    Timed {
        label,
        pairs,
        cost,
        best_ns: best,
    }
}

fn main() {
    let gate_max: f64 = std::env::var("JOIN_GATE_MAX")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.5);
    let mut gate_violations: Vec<String> = Vec::new();
    let cfg = JoinConfig::default();
    let methods = [
        JoinMethod::NestedLoop { outer: SideId::Left },
        JoinMethod::IndexNested { outer: SideId::Left },
        JoinMethod::IndexNested { outer: SideId::Right },
        JoinMethod::Hash { build: SideId::Left },
        JoinMethod::Hash { build: SideId::Right },
        JoinMethod::Merge,
    ];

    let mut json_shapes: Vec<String> = Vec::new();
    for shape in shapes() {
        let mut runs: Vec<Timed> = Vec::new();
        for method in methods {
            runs.push(time_run(method.label(), || {
                // Every pass starts cold: under the bounded pool, pages a
                // previous method left resident would otherwise subsidise
                // whoever happens to run next.
                shape.pool.clear();
                let out = run_join_method(&shape.request(), method, &cfg).expect("forced method");
                (out.pairs.len(), out.cost)
            }));
        }
        let truth = runs[0].pairs;
        for r in &runs {
            assert_eq!(r.pairs, truth, "{}: {} disagrees on pairs", shape.name, r.label);
        }
        let mut winner = String::new();
        runs.push(time_run("dynamic".into(), || {
            shape.pool.clear();
            let out =
                run_join(&shape.request(), &cfg, &Tracer::disabled()).expect("join competition");
            assert_eq!(out.pairs.len(), truth, "dynamic disagrees on pairs");
            winner = out.strategy.clone();
            (out.pairs.len(), out.cost)
        }));

        println!("shape {} — {}", shape.name, shape.note);
        let table: Vec<Vec<String>> = runs
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    r.pairs.to_string(),
                    format!("{:.1}", r.cost),
                    format!("{:.2}", r.best_ns / 1e6),
                ]
            })
            .collect();
        print_table(&["method", "pairs", "cost units", "best ms"], &table);
        println!("dynamic winner: {winner}\n");

        let best_static_cost = runs[..runs.len() - 1]
            .iter()
            .map(|r| r.cost)
            .fold(f64::INFINITY, f64::min);
        let dynamic = runs.last().expect("dynamic run");
        let ratio = dynamic.cost / best_static_cost;
        if ratio > gate_max {
            gate_violations.push(format!(
                "shape {}: dynamic cost {:.1} is {ratio:.2}x the best static \
                 {best_static_cost:.1} (gate {gate_max:.2}x)",
                shape.name, dynamic.cost
            ));
        }
        let entries: Vec<String> = runs
            .iter()
            .map(|r| {
                format!(
                    "      {{\"method\": \"{}\", \"pairs\": {}, \"cost_units\": {:.1}, \"best_ms\": {:.3}}}",
                    r.label,
                    r.pairs,
                    r.cost,
                    r.best_ns / 1e6
                )
            })
            .collect();
        json_shapes.push(format!(
            "    {{\n      \"shape\": \"{}\",\n      \"note\": \"{}\",\n      \"winner\": \"{}\",\n      \"dynamic_over_best_static_cost\": {:.2},\n      \"runs\": [\n{}\n      ]\n    }}",
            shape.name,
            shape.note,
            winner,
            dynamic.cost / best_static_cost,
            entries.join(",\n")
        ));
    }

    if let Ok(path) = std::env::var("JOIN_JSON") {
        let out = format!(
            "{{\n  \"bench\": \"crates/bench/src/bin/join_methods.rs\",\n  \
             \"command\": \"JOIN_JSON=BENCH_join.json cargo run --release -p rdb-bench --bin join_methods\",\n  \
             \"note\": \"Every join method forced to completion, then the dynamic competition, on \
             three canonical two-table shapes, all under a bounded buffer pool (JOIN_POOL_PAGES, \
             smaller than the heaps plus indexes) so the race runs in the beyond-RAM eviction \
             regime. Pair counts are cross-checked between all methods before timing. Gated: \
             dynamic cost must stay within JOIN_GATE_MAX (default 1.5x) of the best static method \
             on every shape.\",\n  \"gate_max\": {:.2},\n  \"pool_pages\": {},\n  \"shapes\": [\n{}\n  ]\n}}\n",
            gate_max,
            pool_pages(),
            json_shapes.join(",\n")
        );
        std::fs::write(&path, out).expect("write join json");
        println!("wrote {path}");
    }

    if gate_violations.is_empty() {
        println!("join gate: every shape within {gate_max:.2}x of its best static method");
    } else {
        for v in &gate_violations {
            eprintln!("join gate FAILED: {v}");
        }
        std::process::exit(1);
    }
}
