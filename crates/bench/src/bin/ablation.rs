//! Ablations of the dynamic optimizer's design choices.
//!
//! * **A1** — the two-stage switch threshold (the paper's "e.g. becomes
//!   95%"): sweep it on a misestimated workload.
//! * **A2** — the tiny-list shortcut of Section 5/6: on vs off on an
//!   OLTP-style point workload.
//! * **A3** — limited simultaneous scanning of adjacent indexes
//!   (Section 6): on vs off when the initial order is wrong.
//! * **A4** — cache interference (Section 3(c)): the same query's cost
//!   under increasing foreign-page pressure.
//!
//! Run: `cargo run --release -p rdb-bench --bin ablation`

use std::sync::Arc;

use rdb_bench::fixtures::JscanFixture;
use rdb_bench::report::{fmt, print_table};
use rdb_btree::KeyRange;
use rdb_core::{
    DynamicConfig, DynamicOptimizer, IndexChoice, Jscan, JscanConfig, JscanIndex, JscanOutcome,
    OptimizeGoal, RecordPred, RetrievalRequest,
};
use rdb_storage::{FileId, Record, Value};

/// A1: switch-threshold sweep, on two opposing workloads.
///
/// *abandon-right*: the second index covers 40% of the table — abandoning
/// its scan early is correct, so lower thresholds pay.
/// *abandon-wrong*: the second index is small and its intersection cuts
/// the final fetch well below the guaranteed best — a threshold of 0.3
/// abandons a scan that would have paid off.
/// The paper's 0.95 is near-best on the second workload while giving up
/// little on the first — the compromise the paper chose.
fn threshold_sweep() {
    println!("== A1: two-stage switch threshold (paper uses 0.95) ==\n");
    // abandon-right: c1 <= 1 covers 2/5 of the table.
    let right = JscanFixture::build(30_000, &[500, 5], 200_000);
    // abandon-wrong: c1 == 1 is a 500-entry scan whose intersection (20
    // rids) is far below the 60-rid guaranteed best.
    let wrong = JscanFixture::build(30_000, &[500, 60], 200_000);

    let mut rows = Vec::new();
    for threshold in [0.3f64, 0.6, 0.95, 1.5, 1e9] {
        let run_one = |f: &JscanFixture, hi: i64| -> (usize, f64, usize) {
            let residual: RecordPred = Arc::new(move |r: &Record| {
                r[0] == Value::Int(1) && r[1].as_i64().unwrap() <= hi
            });
            let request = RetrievalRequest {
                table: &f.table,
                cost: f.table.pool().cost().clone(),
                indexes: vec![
                    IndexChoice::fetch_needed(&f.indexes[0], KeyRange::eq(1)),
                    IndexChoice::fetch_needed(&f.indexes[1], KeyRange::at_most(hi)),
                ],
                residual,
                goal: OptimizeGoal::TotalTime,
                order_required: false,
                limit: None,
            };
            let optimizer = DynamicOptimizer::new(DynamicConfig {
                jscan: JscanConfig {
                    switch_threshold: threshold,
                    // Disable the direct spend criterion so the ablation
                    // isolates the two-stage threshold.
                    scan_spend_limit: 1e9,
                    tiny_list_shortcut: 0,
                    ..JscanConfig::default()
                },
                ..DynamicConfig::default()
            });
            f.cold();
            let run = optimizer.run(&request).unwrap();
            let abandoned = run
                .events
                .iter()
                .filter(|e| e.contains("discarded"))
                .count();
            (run.deliveries.len(), run.cost, abandoned)
        };
        let (_r1, cost_right, ab1) = run_one(&right, 1);
        let (_r2, cost_wrong, ab2) = run_one(&wrong, 1);
        rows.push(vec![
            if threshold > 1e6 {
                "never switch".into()
            } else {
                format!("{threshold}")
            },
            fmt(cost_right),
            ab1.to_string(),
            fmt(cost_wrong),
            ab2.to_string(),
        ]);
    }
    print_table(
        &[
            "threshold",
            "abandon-right cost",
            "abandoned",
            "abandon-wrong cost",
            "abandoned",
        ],
        &rows,
    );
}

/// A2: tiny-list shortcut on/off on point lookups.
fn tiny_shortcut() {
    println!("\n== A2: tiny-list shortcut (<=20 RIDs ends Jscan immediately) ==\n");
    let f = JscanFixture::build(30_000, &[10_000, 5], 200_000);
    let mut rows = Vec::new();
    for (label, shortcut) in [("on (paper)", 20usize), ("off", 0)] {
        let residual: RecordPred =
            Arc::new(|r: &Record| r[0] == Value::Int(7) && r[1].as_i64().unwrap() <= 3);
        let request = RetrievalRequest {
            table: &f.table,
            cost: f.table.pool().cost().clone(),
            indexes: vec![
                IndexChoice::fetch_needed(&f.indexes[0], KeyRange::eq(7)),
                IndexChoice::fetch_needed(&f.indexes[1], KeyRange::at_most(3)),
            ],
            residual,
            goal: OptimizeGoal::TotalTime,
            order_required: false,
            limit: None,
        };
        let optimizer = DynamicOptimizer::new(DynamicConfig {
            jscan: JscanConfig {
                tiny_list_shortcut: shortcut,
                ..JscanConfig::default()
            },
            initial: rdb_core::InitialStage {
                // Disable the *initial-stage* tiny shortcut so the ablation
                // isolates the Jscan-level one.
                tiny_range_threshold: 0,
            },
            ..DynamicConfig::default()
        });
        f.cold();
        let run = optimizer.run(&request).unwrap();
        rows.push(vec![
            label.into(),
            format!("{}", run.deliveries.len()),
            fmt(run.cost),
        ]);
    }
    print_table(&["tiny shortcut", "rows", "cost"], &rows);
}

/// A3: simultaneous adjacent scanning when the preorder is wrong.
fn simultaneous() {
    println!("\n== A3: simultaneous adjacent scans vs sequential (misordered estimates) ==\n");
    let f = JscanFixture::build(30_000, &[5, 300], 200_000);
    let mut rows = Vec::new();
    for (label, simultaneous) in [("sequential (default)", false), ("simultaneous", true)] {
        // Hand Jscan a deliberately wrong order: the big index first.
        let jscan = Jscan::new(
            &f.table,
            vec![
                JscanIndex {
                    tree: &f.indexes[0],
                    range: KeyRange::eq(1),
                    estimate: 10.0, // lie: actually ~6000
                },
                JscanIndex {
                    tree: &f.indexes[1],
                    range: KeyRange::eq(1),
                    estimate: 100.0,
                },
            ],
            JscanConfig {
                simultaneous_adjacent: simultaneous,
                switch_threshold: 10.0, // isolate ordering from abandonment
                scan_spend_limit: 100.0,
                tiny_list_shortcut: 0,
                ..JscanConfig::default()
            },
            f.table.pool().cost().clone(),
        );
        f.cold();
        let before = f.cost.total();
        let mut jscan = jscan;
        let outcome = jscan.run();
        let cost = f.cost.total() - before;
        let kept = match &outcome {
            JscanOutcome::FinalList(list) => list.len().to_string(),
            other => format!("{other:?}"),
        };
        rows.push(vec![label.into(), kept, fmt(cost)]);
    }
    print_table(&["mode", "final RIDs", "jscan cost"], &rows);
    println!(
        "\nWith simultaneous scanning the truly smaller index finishes first and\n\
         becomes the filter, repairing the bad preorder mid-flight."
    );
}

/// A4: cache interference (Section 3(c)).
fn interference() {
    println!("\n== A4: cache interference makes identical runs cost differently ==\n");
    let f = JscanFixture::build(30_000, &[500], 200_000);
    let residual: RecordPred = Arc::new(|r: &Record| r[0] == Value::Int(1));
    let request = || RetrievalRequest {
        table: &f.table,
        cost: f.table.pool().cost().clone(),
        indexes: vec![IndexChoice::fetch_needed(&f.indexes[0], KeyRange::eq(1))],
        residual: residual.clone(),
        goal: OptimizeGoal::TotalTime,
        order_required: false,
        limit: None,
    };
    let optimizer = DynamicOptimizer::default();
    f.cold();
    let cold = optimizer.run(&request()).unwrap().cost;
    let mut rows = vec![vec!["cold start".to_string(), fmt(cold)]];
    // The fixture pool holds 200k pages; pressure beyond that evicts the
    // query's working set.
    for foreign_pages in [0u32, 100_000, 199_000, 400_000] {
        // Warm up, interfere, measure.
        let _ = optimizer.run(&request()).unwrap();
        f.table.pool().perturb(FileId(4242), foreign_pages);
        let cost = optimizer.run(&request()).unwrap().cost;
        rows.push(vec![format!("warm + {foreign_pages} foreign pages"), fmt(cost)]);
    }
    print_table(&["scenario", "cost"], &rows);
    println!(
        "\nThe same retrieval's cost varies by orders of magnitude with cache\n\
         state alone — the uncertainty source the paper says only run-time\n\
         competition can absorb."
    );
}

fn main() {
    threshold_sweep();
    tiny_shortcut();
    simultaneous();
    interference();
}
