//! Prepared-statement payoff — the gate for the plan cache.
//!
//! The paper's driving scenario is a parameterized statement executed
//! over and over with shifting host variables. Ad-hoc execution pays
//! parse + name resolution + predicate lowering + index-metadata
//! assembly on every run; [`rdb_query::Db::prepare`] pays them once and
//! additionally seeds each run with the previous winner as a favored
//! tactic (kill rules stay armed). This binary measures that tax
//! directly: a mixed point/range binding sweep executed ad-hoc versus
//! through prepared handles.
//!
//! The two sides are timed as *adjacent pass pairs* (one ad-hoc pass,
//! then one prepared pass, repeated), and the gate statistic is the
//! **median per-pair ratio** — slow background drift on a shared box
//! hits both halves of a pair roughly equally, where best-of-N per side
//! can compare a lucky pass against an unlucky one.
//!
//! Row sets are diffed against expectations for every binding (prepared
//! twice: cold skeleton + hinted replay) before anything is timed, so
//! the speedup comes from verified-identical answers.
//!
//! Environment knobs:
//!
//! * `PREPARED_SWEEPS` — binding-sweep executions per timed pass
//!   (default 400).
//! * `PREPARED_ROUNDS` — ad-hoc/prepared pass pairs (default 7).
//! * `PREPARED_MIN_SPEEDUP` — required median prepared/ad-hoc ratio
//!   (default 1.3; set 0 to report without gating).
//! * `PREPARED_JSON` — path to write the machine-readable report (the
//!   committed `BENCH_prepared.json` at the repo root).
//!
//! Run: `cargo run --release -p rdb-bench --bin prepared_vs_adhoc`

use std::time::Instant;

use rdb_bench::report::{fmt, print_table};
use rdb_query::{QueryOptions, QueryResult};
use rdb_workload::{families_db, FamiliesConfig};

/// The OLTP-shaped statement mix: the paper's repeated-parameterized
/// scenario across the query shapes the dynamic optimizer competes on.
/// Each entry is one statement plus the host-variable bindings swept per
/// pass; Zipf-tail cities keep every answer selective (a handful of
/// rows), so per-execution plan overhead is a real fraction of the work.
fn build_mix() -> Vec<(&'static str, Vec<QueryOptions>)> {
    vec![
        // Point lookups on the skewed column.
        (
            "select * from FAMILIES where CITY = :C",
            [411i64, 433, 452]
                .iter()
                .map(|&c| QueryOptions::new().with_param("C", c))
                .collect(),
        ),
        // Top-N reporting range: ordered delivery, first rows only.
        (
            "select * from FAMILIES where AGE >= :A1 order by AGE limit to 10 rows",
            [95i64, 97]
                .iter()
                .map(|&a| QueryOptions::new().with_param("A1", a))
                .collect(),
        ),
        // Selective conjunction with a projection: several constrained
        // indexes race, parse + resolve carry three names and three vars.
        (
            "select ID, AGE, CITY from FAMILIES \
             where AGE >= :A1 and INCOME_BAND >= :I and CITY = :C",
            [(80i64, 80i64, 411i64), (78, 82, 452), (85, 85, 467)]
                .iter()
                .map(|&(a, i, c)| {
                    QueryOptions::new()
                        .with_param("A1", a)
                        .with_param("I", i)
                        .with_param("C", c)
                })
                .collect(),
        ),
        // Four-parameter window: BETWEEN plus two more constraints — the
        // verbose shape where re-parsing and re-lowering hurt most.
        (
            "select ID, AGE from FAMILIES \
             where AGE between :L and :H and CITY = :C and INCOME_BAND >= :I",
            [
                (30i64, 60i64, 433i64, 50i64),
                (20, 40, 411, 70),
                (40, 80, 467, 40),
            ]
            .iter()
            .map(|&(l, h, c, i)| {
                QueryOptions::new()
                    .with_param("L", l)
                    .with_param("H", h)
                    .with_param("C", c)
                    .with_param("I", i)
            })
            .collect(),
        ),
    ]
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn sorted_ids(r: &QueryResult) -> Vec<i64> {
    let id = r
        .columns
        .iter()
        .position(|c| c == "ID")
        .expect("ID column");
    let mut out: Vec<i64> = r
        .rows
        .iter()
        .map(|row| row[id].as_i64().expect("ID is an int"))
        .collect();
    out.sort_unstable();
    out
}

fn best_of(passes: usize, mut pass: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut executions = 0;
    for _ in 0..passes {
        let t = Instant::now();
        executions = pass();
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    (best, executions)
}

fn main() {
    let sweeps = env_f64("PREPARED_SWEEPS", 400.0) as usize;
    let rounds = env_f64("PREPARED_ROUNDS", 7.0) as usize;
    let min: f64 = env_f64("PREPARED_MIN_SPEEDUP", 1.3);
    let rows = 40_000;
    let db = families_db(&FamiliesConfig {
        rows,
        ..FamiliesConfig::default()
    });

    let mix = build_mix();
    let bindings: Vec<(&str, QueryOptions)> = mix
        .iter()
        .flat_map(|(sql, opts)| opts.iter().map(move |o| (*sql, o.clone())))
        .collect();

    // Expected answers, computed once. The verification sweep below diffs
    // both sides against these on every binding before anything is timed;
    // the timed passes then run the bare execution loop so the measured
    // delta is plan overhead, not assertion bookkeeping.
    let expected: Vec<Vec<i64>> = bindings
        .iter()
        .map(|(sql, opts)| sorted_ids(&db.query(sql, opts).expect("expectation query")))
        .collect();
    let stmts: Vec<_> = bindings
        .iter()
        .map(|(sql, _)| db.prepare(sql).expect("prepare"))
        .collect();
    for (i, (sql, opts)) in bindings.iter().enumerate() {
        let adhoc = db.query(sql, opts).expect("ad-hoc query");
        assert_eq!(sorted_ids(&adhoc), expected[i], "ad-hoc diverged on {sql}");
        // Twice: cold skeleton + hinted replay must both agree.
        for _ in 0..2 {
            let prep = stmts[i].execute(opts).expect("prepared execute");
            assert_eq!(sorted_ids(&prep), expected[i], "prepared diverged on {sql}");
        }
    }

    // The verification sweep has also warmed the pool, so both sides run
    // against the same resident working set; the contest is plan
    // overhead, not page faults. Passes run as adjacent pairs and the
    // gate takes the median pair ratio (see module docs).
    let adhoc_pass = || {
        let mut n = 0u64;
        for _ in 0..sweeps {
            for (sql, opts) in &bindings {
                let r = db.query(sql, opts).expect("ad-hoc query");
                std::hint::black_box(r.rows.len());
                n += 1;
            }
        }
        n
    };
    let prepared_pass = || {
        let mut n = 0u64;
        for _ in 0..sweeps {
            for (stmt, (_, opts)) in stmts.iter().zip(&bindings) {
                let r = stmt.execute(opts).expect("prepared execute");
                std::hint::black_box(r.rows.len());
                n += 1;
            }
        }
        n
    };
    let mut executions = 0u64;
    let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t = Instant::now();
        executions = adhoc_pass();
        let a_ns = t.elapsed().as_nanos() as f64;
        let t = Instant::now();
        prepared_pass();
        let p_ns = t.elapsed().as_nanos() as f64;
        pairs.push((a_ns, p_ns));
    }
    let mut ratios: Vec<f64> = pairs.iter().map(|(a, p)| a / p).collect();
    ratios.sort_by(|x, y| x.partial_cmp(y).expect("finite ratios"));
    let speedup = ratios[ratios.len() / 2];
    let best_adhoc_ns = pairs.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let best_prepared_ns = pairs.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);

    // Per-statement breakdown: where the tax actually lands.
    let mut breakdown = Vec::new();
    for (sql, opts) in &mix {
        let stmt = db.prepare(sql).expect("prepare");
        let (a_ns, a_n) = best_of(3, || {
            let mut n = 0u64;
            for _ in 0..sweeps {
                for o in opts.iter() {
                    std::hint::black_box(db.query(sql, o).expect("ad-hoc").rows.len());
                    n += 1;
                }
            }
            n
        });
        let (p_ns, p_n) = best_of(3, || {
            let mut n = 0u64;
            for _ in 0..sweeps {
                for o in opts.iter() {
                    std::hint::black_box(stmt.execute(o).expect("prepared").rows.len());
                    n += 1;
                }
            }
            n
        });
        breakdown.push(vec![
            (*sql).to_string(),
            format!("{:.1}", a_ns / a_n as f64 / 1e3),
            format!("{:.1}", p_ns / p_n as f64 / 1e3),
            format!("{:.2}x", a_ns / p_ns),
        ]);
    }
    print_table(
        &["statement", "ad-hoc us", "prepared us", "speedup"],
        &breakdown,
    );
    println!();

    let stats = db.plan_cache_stats();

    let mut table = Vec::new();
    for (label, best_ns) in [("ad-hoc", best_adhoc_ns), ("prepared", best_prepared_ns)] {
        table.push(vec![
            label.to_string(),
            executions.to_string(),
            format!("{:.2}", best_ns / 1e6),
            fmt(executions as f64 / (best_ns / 1e9)),
            format!("{:.2}", best_ns / executions as f64 / 1e3),
        ]);
    }
    print_table(
        &["side", "queries", "best pass ms", "qps", "us/query"],
        &table,
    );
    println!(
        "\npair ratios: [{}]",
        ratios
            .iter()
            .map(|r| format!("{r:.2}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "prepared vs ad-hoc: {speedup:.2}x median of {rounds} pairs (min {min:.2}x); \
         plan cache: {} statements, {} hits, {} misses",
        stats.statements, stats.hits, stats.misses
    );

    if let Ok(path) = std::env::var("PREPARED_JSON") {
        let mut out = String::from("{\n");
        out.push_str("  \"bench\": \"crates/bench/src/bin/prepared_vs_adhoc.rs\",\n");
        out.push_str(
            "  \"command\": \"PREPARED_JSON=BENCH_prepared.json cargo run --release -p rdb-bench --bin prepared_vs_adhoc\",\n",
        );
        out.push_str(&format!("  \"rows\": {rows},\n"));
        out.push_str(&format!("  \"statements\": {},\n", mix.len()));
        out.push_str(&format!("  \"bindings_per_sweep\": {},\n", bindings.len()));
        out.push_str(&format!("  \"sweeps_per_pass\": {sweeps},\n"));
        out.push_str(&format!("  \"pass_pairs\": {rounds},\n"));
        out.push_str(
            "  \"note\": \"Mixed point/range parameterized sweep over FAMILIES (point lookups, \
             ordered top-N, multi-index conjunction, 4-parameter BETWEEN window), warmed pool. \
             Ad-hoc re-parses, re-resolves and re-lowers the predicate each execution; prepared \
             reuses the cached skeleton and favors the previous winner (kill rules armed). Row \
             sets are verified identical for every binding before timing. The gate is the \
             median ad-hoc/prepared ratio over adjacent pass pairs, which cancels slow drift \
             on shared hardware.\",\n",
        );
        for (label, best_ns) in [("ad_hoc", best_adhoc_ns), ("prepared", best_prepared_ns)] {
            out.push_str(&format!(
                "  \"{label}\": {{\"queries\": {}, \"best_pass_ms\": {:.2}, \"qps\": {:.1}, \"us_per_query\": {:.2}}},\n",
                executions,
                best_ns / 1e6,
                executions as f64 / (best_ns / 1e9),
                best_ns / executions as f64 / 1e3,
            ));
        }
        out.push_str(&format!(
            "  \"pair_ratios\": [{}],\n",
            ratios
                .iter()
                .map(|r| format!("{r:.2}"))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!(
            "  \"plan_cache\": {{\"statements\": {}, \"hits\": {}, \"misses\": {}}},\n",
            stats.statements, stats.hits, stats.misses
        ));
        out.push_str(&format!(
            "  \"gate\": {{\"min_speedup\": {min:.2}, \"achieved_median\": {speedup:.2}}}\n}}\n"
        ));
        std::fs::write(&path, out).expect("write prepared json");
        println!("wrote {path}");
    }

    if min > 0.0 {
        assert!(
            speedup >= min,
            "prepared-statement gate FAILED: median {speedup:.2}x < required {min:.2}x \
             (override with PREPARED_MIN_SPEEDUP)"
        );
        println!("prepared gate passed: {speedup:.2}x >= {min:.2}x");
    } else {
        println!("prepared gate disabled (PREPARED_MIN_SPEEDUP=0)");
    }
}
