//! E17 (supporting claim) — error propagation à la Ioannidis &
//! Christodoulakis \[IoCh91\], which the paper leans on: "the cardinality
//! error of n-way join grows exponentially with n even if we have good
//! estimates of the number of records delivered by the table scans."
//!
//! Using the Section 2 machinery: start from a *good* estimate (a tight
//! bell) and apply n JOIN-like (AND) steps under unknown correlation;
//! track how the relative spread and the high-probability-near-zero mass
//! grow with n, and how the distribution's shape class degenerates.
//!
//! Run: `cargo run --release -p rdb-bench --bin error_growth`

use rdb_bench::report::{fmt, print_table, sparkline};
use rdb_dist::{join_unique, Correlation, Pdf, ShapeSummary};

fn main() {
    println!("== Error growth with join chain length [IoCh91 via Section 2] ==\n");
    println!("start: selectivity estimate bell m=0.3, e=0.01; each step joins an");
    println!("equally-estimated relation under unknown correlation.\n");

    let base = Pdf::bell(0.3, 0.01);
    let mut current = base.clone();
    let mut rows = Vec::new();
    let mut prev_rel_spread: f64 = 0.0;
    for n in 0..=5 {
        let s = ShapeSummary::of(&current);
        let rel_spread = if s.mean > 1e-9 { s.std_dev / s.mean } else { f64::INFINITY };
        let growth = if n == 0 {
            "-".to_string()
        } else {
            format!("x{:.1}", rel_spread / prev_rel_spread.max(1e-12))
        };
        rows.push(vec![
            format!("{n} joins"),
            sparkline(&current, 24),
            fmt(s.mean),
            fmt(s.std_dev),
            fmt(rel_spread),
            growth,
            if s.is_l_shaped_at_zero() {
                "L-shape (Zipf-like)"
            } else if s.std_dev < 0.02 {
                "precise"
            } else {
                "spread"
            }
            .to_string(),
        ]);
        prev_rel_spread = rel_spread;
        current = join_unique(&current, &base, Correlation::Unknown);
    }
    print_table(
        &[
            "chain", "density", "mean", "sd", "sd/mean", "spread growth", "shape",
        ],
        &rows,
    );
    println!(
        "\nThe relative error multiplies with every join — the exponential\n\
         growth [IoCh91] proved, and the reason the paper abandons single-\n\
         plan compile-time optimization altogether."
    );
}
