//! Cold-cache storage bench — the real-I/O cost of the durable backend.
//!
//! Builds a file-backed database (fixed LCG seed), checkpoints it, then
//! measures the three paths a durable deployment actually pays for:
//!
//! * **open (clean)** — reopen after a clean close: catalog decode, frame
//!   loads, index rebuild, zero WAL replay;
//! * **open (replay)** — reopen after a crash with a WAL tail: the same
//!   plus ARIES-lite redo;
//! * **cold scan vs warm scan** — a full table scan with an empty buffer
//!   pool (every miss of a checkpointed page is a checksummed frame
//!   verify-read) against the same scan with every page resident.
//!
//! The run cross-checks the storage contract while it times: the cold
//! scan's real page reads must equal the cost meter's simulated misses
//! (the I/O unit is grounded), and the warm scan must do zero real I/O.
//!
//! **Report-only**: the artifact records the baseline; wall-clock gates
//! on file-system-bound numbers would be CI-noise, and the grounding
//! checks above are the non-flaky part (they do hard-fail).
//!
//! Environment knobs:
//!
//! * `STORAGE_JSON` — path to write the machine-readable report (the
//!   committed `BENCH_storage.json` at the repo root).
//!
//! Run: `cargo run --release -p rdb-bench --bin coldstore`

use std::path::PathBuf;
use std::time::Instant;

use rdb_bench::report::print_table;
use rdb_query::prelude::*;
use rdb_storage::{Column, Schema, ValueType};

const ROWS: i64 = 20_000;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1_442_695_040_888_963_407);
    *state >> 33
}

fn bench_dir() -> PathBuf {
    std::env::temp_dir().join(format!("rdb-bench-coldstore-{}", std::process::id()))
}

fn build(dir: &PathBuf) -> Db {
    let _ = std::fs::remove_dir_all(dir);
    let mut db = Db::builder().path(dir).open().expect("open fresh bench db");
    db.create_table(
        "SAMPLES",
        Schema::new(vec![
            Column::new("ID", ValueType::Int),
            Column::new("K", ValueType::Int),
            Column::new("PAYLOAD", ValueType::Str),
        ]),
    )
    .expect("create table");
    let mut state = 0x5DEE_CE66_D00D_F00Du64;
    for i in 0..ROWS {
        let k = (lcg(&mut state) % 1_000) as i64;
        // ~64 bytes of payload per row so the table spans hundreds of
        // 4K frames — enough pages for the cold/warm gap to mean something.
        let payload = format!("{k:>08}-{}", "x".repeat(54));
        db.insert(
            "SAMPLES",
            vec![Value::Int(i), Value::Int(k), Value::Str(payload)],
        )
        .expect("insert row");
    }
    db.create_index("IDX_K", "SAMPLES", &["K"]).expect("create index");
    db
}

fn best_of<T>(n: usize, mut run: impl FnMut() -> T) -> (T, f64) {
    let mut out = run(); // warm-up pass, also the returned value
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let t = Instant::now();
        out = run();
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    (out, best)
}

fn main() {
    let dir = bench_dir();
    let opts = QueryOptions::new();

    let mut db = build(&dir);
    db.checkpoint().expect("checkpoint");
    let pages = u64::from(db.heap("SAMPLES").expect("table").page_count());
    db.close().expect("clean close");

    // Open after a clean close: zero replay.
    let (db, open_clean_ns) = best_of(3, || {
        let db = Db::builder().path(&dir).open().expect("clean reopen");
        assert_eq!(
            db.recovery_report().expect("durable").records_applied,
            0,
            "clean close must replay nothing"
        );
        db
    });
    drop(db);

    // Grow a WAL tail, crash, and time the replaying open.
    let mut db = Db::builder().path(&dir).open().expect("reopen to mutate");
    let mut state = 0xBADC_0FFE_E0DD_F00Du64;
    for i in 0..2_000i64 {
        let k = (lcg(&mut state) % 1_000) as i64;
        db.insert(
            "SAMPLES",
            vec![Value::Int(ROWS + i), Value::Int(k), Value::Str("tail".into())],
        )
        .expect("tail insert");
    }
    drop(db); // the crash
    let (replayed, open_replay_ns) = best_of(3, || {
        let db = Db::builder().path(&dir).open().expect("replaying reopen");
        let report = db.recovery_report().expect("durable");
        assert!(report.records_applied > 0, "the WAL tail must replay");
        report.records_applied
    });

    // Cold vs warm full scan on the recovered database. Checkpoint first:
    // redo-recovered pages are dirty (no verify-read on miss), and the
    // cold-read contract below is about *clean* checkpointed frames.
    let mut db = Db::builder().path(&dir).open().expect("scan reopen");
    db.checkpoint().expect("pre-scan checkpoint");
    let db = db;
    let store = db.store().expect("durable store").clone();
    let expect_rows = (ROWS + 2_000) as usize;

    let (cold_stats, cold_ns) = best_of(3, || {
        db.clear_cache();
        let before = store.stats();
        let result = db.query("select ID from SAMPLES", &opts).expect("cold scan");
        assert_eq!(result.rows.len(), expect_rows);
        let real = store.stats().since(&before);
        assert_eq!(
            real.page_reads, result.metrics.pool_misses,
            "cost meter's I/O unit must match real page reads on a cold cache"
        );
        real
    });
    let (warm_stats, warm_ns) = best_of(3, || {
        let before = store.stats();
        let result = db.query("select ID from SAMPLES", &opts).expect("warm scan");
        assert_eq!(result.rows.len(), expect_rows);
        let real = store.stats().since(&before);
        assert_eq!(real.page_reads, 0, "warm scan must do zero real I/O");
        real
    });
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);

    let cold_over_warm = cold_ns / warm_ns.max(1.0);
    println!(
        "coldstore: {ROWS} + 2000 rows, {pages} checkpointed pages, {replayed} WAL records replayed"
    );
    let rows = vec![
        vec![
            "open (clean)".into(),
            format!("{:.2}", open_clean_ns / 1e6),
            "0".into(),
        ],
        vec![
            "open (replay)".into(),
            format!("{:.2}", open_replay_ns / 1e6),
            replayed.to_string(),
        ],
        vec![
            "cold scan".into(),
            format!("{:.2}", cold_ns / 1e6),
            cold_stats.page_reads.to_string(),
        ],
        vec![
            "warm scan".into(),
            format!("{:.2}", warm_ns / 1e6),
            warm_stats.page_reads.to_string(),
        ],
    ];
    print_table(&["path", "best ms", "real page reads / replays"], &rows);
    println!("cold/warm scan ratio: {cold_over_warm:.2}x\n");

    if let Ok(path) = std::env::var("STORAGE_JSON") {
        let out = format!(
            "{{\n  \"bench\": \"crates/bench/src/bin/coldstore.rs\",\n  \
             \"command\": \"STORAGE_JSON=BENCH_storage.json cargo run --release -p rdb-bench --bin coldstore\",\n  \
             \"note\": \"Durable-backend cold paths: reopen (clean and WAL-replaying) and cold-vs-warm \
             full scans. Report-only artifact; the hard contracts (real reads == simulated misses \
             cold, zero real reads warm, zero replay after clean close) are asserted in-run.\",\n  \
             \"rows\": {},\n  \"checkpointed_pages\": {pages},\n  \
             \"open_clean_ms\": {:.3},\n  \"open_replay_ms\": {:.3},\n  \"replayed_records\": {replayed},\n  \
             \"cold_scan_ms\": {:.3},\n  \"warm_scan_ms\": {:.3},\n  \"cold_over_warm\": {:.2},\n  \
             \"cold_real_page_reads\": {},\n  \"warm_real_page_reads\": {}\n}}\n",
            ROWS + 2_000,
            open_clean_ns / 1e6,
            open_replay_ns / 1e6,
            cold_ns / 1e6,
            warm_ns / 1e6,
            cold_over_warm,
            cold_stats.page_reads,
            warm_stats.page_reads,
        );
        std::fs::write(&path, out).expect("write storage json");
        println!("wrote {path}");
    }
}
