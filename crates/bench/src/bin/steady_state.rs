//! E19 — steady-state "production experience" (paper Section 8): a long
//! randomized query mix over skewed, correlated data with a warm cache,
//! comparing cumulative cost of
//!
//! * the dynamic optimizer (per-run decisions),
//! * each single static plan committed for the whole mix,
//! * the per-query oracle.
//!
//! The paper's retrospective claim — "the problem of incorrect strategy
//! selection is largely gone, and part of it is transformed into a
//! smaller problem of reducing the overhead of parallel strategy runs and
//! of unsuccessful (abandoned) runs" — translates to: dynamic ≈ oracle
//! with a small bounded overhead; every static commitment is much worse.
//!
//! Run: `cargo run --release -p rdb-bench --bin steady_state`

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdb_bench::report::{fmt, print_table};
use rdb_btree::KeyRange;
use rdb_core::{
    DynamicOptimizer, IndexChoice, OptimizeGoal, RecordPred, RetrievalRequest, StaticOptimizer,
    StaticPlan,
};
use rdb_storage::Record;
use rdb_workload::{families_db, FamiliesConfig};

fn main() {
    let db = families_db(&FamiliesConfig {
        rows: 20_000,
        ..FamiliesConfig::default()
    });
    let table = db.heap("FAMILIES").expect("fixture");
    let idx_age = db
        .indexes("FAMILIES")
        .expect("fixture")
        .iter()
        .find(|i| i.name() == "IDX_AGE")
        .expect("age index");

    let queries = 400;
    let mut rng = StdRng::seed_from_u64(19930411); // ICDE'93 week
    // Binding mix: mostly selective OLTP-ish probes, a tail of analytic
    // sweeps — an L-shaped workload, fittingly.
    let bindings: Vec<i64> = (0..queries)
        .map(|_| {
            if rng.gen_bool(0.8) {
                rng.gen_range(90..=105) // selective or empty
            } else {
                rng.gen_range(0..60) // broad
            }
        })
        .collect();

    let request = |a1: i64| -> RetrievalRequest<'_> {
        let residual: RecordPred = Arc::new(move |r: &Record| r[1].as_i64().unwrap() >= a1);
        RetrievalRequest {
            table,
            cost: table.pool().cost().clone(),
            indexes: vec![IndexChoice::fetch_needed(idx_age, KeyRange::at_least(a1))],
            residual,
            goal: OptimizeGoal::TotalTime,
            order_required: false,
            limit: None,
        }
    };

    let dynamic = DynamicOptimizer::default();
    let static_opt = StaticOptimizer::default();
    // Each contender runs the whole mix on its own warm cache timeline.
    let run_mix = |mode: &str| -> f64 {
        db.clear_cache();
        let mut total = 0.0;
        for &a1 in &bindings {
            let cost = match mode {
                "dynamic" => dynamic.run(&request(a1)).unwrap().cost,
                "tscan" => static_opt.execute(StaticPlan::Tscan, &request(a1)).unwrap().cost,
                "fscan" => {
                    static_opt
                        .execute(StaticPlan::Fscan { pos: 0 }, &request(a1))
                        .unwrap()
                        .cost
                }
                "oracle" => {
                    // Per-binding best of the two committed plans, measured
                    // on a shadow timeline to keep cache effects fair-ish.
                    let t = static_opt.execute(StaticPlan::Tscan, &request(a1)).unwrap().cost;
                    let f = static_opt
                        .execute(StaticPlan::Fscan { pos: 0 }, &request(a1))
                        .unwrap()
                        .cost;
                    t.min(f)
                }
                _ => unreachable!(),
            };
            total += cost;
        }
        total
    };

    let dynamic_total = run_mix("dynamic");
    let tscan_total = run_mix("tscan");
    let fscan_total = run_mix("fscan");
    let oracle_total = run_mix("oracle");

    print_table(
        &["contender", "total cost", "vs oracle"],
        &[
            vec![
                "dynamic optimizer".into(),
                fmt(dynamic_total),
                fmt(dynamic_total / oracle_total),
            ],
            vec![
                "committed Tscan".into(),
                fmt(tscan_total),
                fmt(tscan_total / oracle_total),
            ],
            vec![
                "committed Fscan".into(),
                fmt(fscan_total),
                fmt(fscan_total / oracle_total),
            ],
            vec!["per-query oracle*".into(), fmt(oracle_total), "1.0".into()],
        ],
    );
    println!(
        "\n{queries} queries, 80% selective probes / 20% broad sweeps, warm cache.\n\
         (*oracle pays both plans' costs internally; its number is the sum of\n\
         per-binding minima, an idealized lower bound.)\n\n\
         The dynamic total should sit within a small factor of the oracle —\n\
         the residual being the paper's 'smaller problem' of abandoned-run\n\
         overhead — while each committed plan pays heavily for the part of\n\
         the mix it is wrong about."
    );
}
