//! E16 — the headline end-to-end experiment: a mixed workload with skew,
//! clustering, correlation, and host variables, run through
//!
//! * the dynamic optimizer (this paper),
//! * the Selinger-style static optimizer committed per query shape,
//! * the per-run oracle (best single static plan for each binding).
//!
//! The paper's claim to reproduce: "The problem of incorrect strategy
//! selection is largely gone, and part of it is transformed into a smaller
//! problem of reducing the overhead of parallel strategy runs and of
//! unsuccessful (abandoned) runs."
//!
//! Run: `cargo run --release -p rdb-bench --bin headline`

use std::sync::Arc;

use rdb_bench::report::{fmt, print_table};
use rdb_btree::KeyRange;
use rdb_core::baseline::{PredShape, StaticIndexInfo};
use rdb_core::{
    DynamicOptimizer, IndexChoice, OptimizeGoal, RecordPred, RetrievalRequest, StaticOptimizer,
    StaticPlan,
};
use rdb_storage::{Record, Value};
use rdb_workload::{families_db, FamiliesConfig};

struct QueryCase {
    label: String,
    /// Index position (0=AGE,1=CITY,2=REGION,3=INCOME) and bound range.
    index: usize,
    range: KeyRange,
    residual: RecordPred,
    shape: PredShape,
}

fn main() {
    let db = families_db(&FamiliesConfig {
        rows: 30_000,
        ..FamiliesConfig::default()
    });
    let table = db.heap("FAMILIES").expect("fixture");
    let indexes = db.indexes("FAMILIES").expect("fixture");
    let col = |name: &str| -> usize {
        table
            .schema()
            .column_index(name)
            .expect("fixture column")
    };
    let (age_c, city_c, region_c) = (col("AGE"), col("CITY"), col("REGION"));

    // A workload mixing the paper's uncertainty sources.
    let mut cases: Vec<QueryCase> = Vec::new();
    for a1 in [0i64, 50, 90, 99] {
        cases.push(QueryCase {
            label: format!("AGE >= {a1} (host var sweep)"),
            index: 0,
            range: KeyRange::at_least(a1),
            residual: Arc::new(move |r: &Record| r[1].as_i64().unwrap() >= a1),
            shape: PredShape::Range,
        });
    }
    for city in [0i64, 5, 300] {
        cases.push(QueryCase {
            label: format!("CITY = {city} (zipf skew)"),
            index: 1,
            range: KeyRange::eq(city),
            residual: Arc::new(move |r: &Record| r[2] == Value::Int(city)),
            shape: PredShape::Eq,
        });
    }
    cases.push(QueryCase {
        label: "REGION = 3 (clustered)".into(),
        index: 2,
        range: KeyRange::eq(3),
        residual: Arc::new(move |r: &Record| r[3] == Value::Int(3)),
        shape: PredShape::Eq,
    });
    let _ = (age_c, city_c, region_c);

    let dynamic = DynamicOptimizer::default();
    let static_opt = StaticOptimizer::default();

    let mut rows = Vec::new();
    let (mut sum_dyn, mut sum_static, mut sum_oracle) = (0.0, 0.0, 0.0);
    for case in &cases {
        let tree = &indexes[case.index];
        let stats = tree.stats();
        let committed = static_opt.plan(
            table,
            &[StaticIndexInfo {
                entries: stats.entries,
                distinct_keys: stats.distinct_keys,
                avg_fanout: stats.avg_fanout,
                shape: case.shape,
                self_sufficient: false,
            }],
        );
        let request = || RetrievalRequest {
            table,
            cost: table.pool().cost().clone(),
            indexes: vec![IndexChoice::fetch_needed(tree, case.range.clone())],
            residual: case.residual.clone(),
            goal: OptimizeGoal::TotalTime,
            order_required: false,
            limit: None,
        };
        db.clear_cache();
        let dyn_run = dynamic.run(&request()).unwrap();
        db.clear_cache();
        let stat_run = static_opt.execute(committed, &request()).unwrap();
        db.clear_cache();
        let t = static_opt.execute(StaticPlan::Tscan, &request()).unwrap();
        db.clear_cache();
        let fs = static_opt.execute(StaticPlan::Fscan { pos: 0 }, &request()).unwrap();
        let oracle = t.cost.min(fs.cost);
        assert_eq!(dyn_run.deliveries.len(), stat_run.deliveries.len());
        sum_dyn += dyn_run.cost;
        sum_static += stat_run.cost;
        sum_oracle += oracle;
        rows.push(vec![
            case.label.clone(),
            format!("{}", dyn_run.deliveries.len()),
            fmt(dyn_run.cost),
            fmt(stat_run.cost),
            fmt(oracle),
            fmt(dyn_run.cost / oracle.max(1e-9)),
            fmt(stat_run.cost / oracle.max(1e-9)),
        ]);
    }
    rows.push(vec![
        "TOTAL".into(),
        String::new(),
        fmt(sum_dyn),
        fmt(sum_static),
        fmt(sum_oracle),
        fmt(sum_dyn / sum_oracle),
        fmt(sum_static / sum_oracle),
    ]);
    print_table(
        &[
            "query",
            "rows",
            "dynamic",
            "static(committed)",
            "oracle",
            "dyn/oracle",
            "static/oracle",
        ],
        &rows,
    );
    println!(
        "\nShape to check: dyn/oracle stays within a small constant everywhere\n\
         (the residual overhead of abandoned competitors), while static/oracle\n\
         explodes wherever the compile-time selectivity guess was wrong."
    );
}
