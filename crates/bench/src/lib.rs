#![forbid(unsafe_code)]

//! # rdb-bench
//!
//! The experiment harness reproducing every figure and quantified claim of
//! *Dynamic Query Optimization in Rdb/VMS* (Antoshenkov, ICDE 1993). Each
//! `src/bin/*` binary regenerates one artifact; `benches/paper.rs` holds
//! the wall-time Criterion benches. `EXPERIMENTS.md` at the repository
//! root records paper-expected vs measured outcomes.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig2_1` | Figure 2.1 + the hyperbola-fit errors (E1, E2) |
//! | `fig2_2` | Figure 2.2 degradation-of-certainty panels (E3) |
//! | `competition` | Section 3 direct & two-stage competition (E4, E5) |
//! | `host_var` | Section 4 `AGE >= :A1` example (E6) |
//! | `estimation` | Figure 5 descent-to-split-node estimation (E7, E8) |
//! | `jscan` | Section 6 Jscan vs baselines + RID tiers (E9, E10) |
//! | `tactics` | Section 7 four tactics (E11-E14) |
//! | `headline` | End-to-end dynamic vs static (E16) |

pub mod fixtures;
pub mod report;
