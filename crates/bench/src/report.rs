//! Plain-text reporting helpers shared by the experiment binaries.

use rdb_dist::Pdf;

/// Prints an aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Renders a density as a unicode sparkline over `cols` columns.
pub fn sparkline(pdf: &Pdf, cols: usize) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let n = pdf.bins();
    let mut buckets = vec![0.0f64; cols];
    for i in 0..n {
        let b = (i * cols / n).min(cols - 1);
        buckets[b] += pdf.weight(i);
    }
    let max = buckets.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
    buckets
        .iter()
        .map(|&w| {
            let level = ((w / max) * 7.0).round() as usize;
            BLOCKS[level.min(7)]
        })
        .collect()
}

/// Formats a float compactly.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_shape_tracks_distribution() {
        let s = sparkline(&Pdf::bell(0.1, 0.02), 10);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 10);
        assert!(
            chars[0] == '█' || chars[1] == '█',
            "mass near 0.1 peaks in the first buckets: {s}"
        );
        assert_eq!(chars[9], '▁', "no mass near 1");
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(42.42), "42.4");
        assert_eq!(fmt(1.2345), "1.234");
    }
}
