//! Microbenchmarks for the engine's hot paths: buffer-pool page
//! classification, RID-filter probing, and tiered RID-list building.
//!
//! The `pool` group doubles as the regression gate for the open-addressed
//! pool rewrite: on the hit-dominated (`*_hot_100k`) and sequential-run
//! (`*_seq*`) regimes the new pool must stay >=2x pages/sec ahead of the
//! seed `HashMap`+slab implementation ([`rdb_storage::ReferencePool`]),
//! which runs the identical workload. The eviction-bound `*_mixed_100k`
//! pair is reported too (both sides are memory-bound there, so the gap is
//! smaller). Results are recorded in `BENCH_hotpath.json` at the repository
//! root; regenerate it with
//! `CRITERION_MEASURE_MS=1200 CRITERION_JSON=/tmp/hotpath.json cargo bench --bench hotpath`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use rdb_core::filter::Filter;
use rdb_core::ridlist::{RidListBuilder, RidTierConfig};
use rdb_storage::{
    shared_meter, shared_pool, BufferPool, CostConfig, FileId, PageId, ReferencePool, Rid,
};

/// Accesses per pool-benchmark iteration (pages/sec = this / seconds).
const WORKLOAD: usize = 100_000;

fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x
}

/// Deterministic eviction-heavy workload: three files, 24576 distinct hot
/// pages against a 4096-page pool — ~83% misses, stressing the probe +
/// evict + backward-shift path.
fn mixed_pages() -> Vec<PageId> {
    let mut x = 42u64;
    (0..WORKLOAD)
        .map(|_| {
            let r = lcg(&mut x);
            PageId::new(FileId((r >> 60) as u32 % 3), (r >> 33) as u32 % 8192)
        })
        .collect()
}

/// Deterministic hit-heavy workload: 3072 distinct hot pages, which fit in
/// the 4096-page pool — after warmup every access is a hit. This is the
/// engine's common regime (B-tree upper levels and RID-sorted fetches
/// re-touch a resident working set) and isolates pure lookup + LRU-splice
/// speed.
fn hot_pages() -> Vec<PageId> {
    let mut x = 7u64;
    (0..WORKLOAD)
        .map(|_| {
            let r = lcg(&mut x);
            PageId::new(FileId((r >> 60) as u32 % 3), (r >> 33) as u32 % 1024)
        })
        .collect()
}

/// Regression gate for the lock-free hit path: measures the pure-hit
/// regime directly (independent of criterion's `--test` mode, so the CI
/// smoke run enforces it too) and fails unless the pool stays at or above
/// `HOTPATH_MIN_SPEEDUP` times the reference pool's pages/sec (default
/// 1.0 — the seqlock probe must at least pay back the shard-lock tax on
/// pure hits). Both pools are built and warmed once outside the timed
/// region: the gate is about the steady-state hit path, not construction
/// or cold faulting (the `*_mixed_100k` pair covers the miss regime).
/// Override like `THROUGHPUT_MIN_SPEEDUP`:
/// `HOTPATH_MIN_SPEEDUP=0.9 cargo bench --bench hotpath -- --test`.
fn bench_hot_gate(_c: &mut Criterion) {
    use std::time::Instant;
    let hot = hot_pages();
    let best_of = |f: &mut dyn FnMut() -> u64| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..7 {
            let t = Instant::now();
            criterion::black_box(f());
            best = best.min(t.elapsed().as_nanos() as f64);
        }
        best
    };
    let pool = BufferPool::new(4096, shared_meter(CostConfig::default()));
    for &p in &hot {
        pool.access(p, pool.cost());
    }
    let new_ns = best_of(&mut || {
        for &p in &hot {
            pool.access(p, pool.cost());
        }
        pool.hits()
    });
    let mut rpool = ReferencePool::new(4096, shared_meter(CostConfig::default()));
    for &p in &hot {
        rpool.access(p);
    }
    let ref_ns = best_of(&mut || {
        for &p in &hot {
            rpool.access(p);
        }
        rpool.hits()
    });
    let speedup = ref_ns / new_ns;
    let min: f64 = std::env::var("HOTPATH_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    println!(
        "pool/hot_100k gate: new {:.2} ms vs reference {:.2} ms -> speedup {speedup:.2}x (min {min:.2}x)",
        new_ns / 1e6,
        ref_ns / 1e6,
    );
    assert!(
        speedup >= min,
        "hot-hit regression: pool is {speedup:.2}x the reference on the pure-hit \
         workload, below the HOTPATH_MIN_SPEEDUP floor of {min:.2}x"
    );
}

/// Floor for the eviction-bound regime: on the miss-heavy mixed workload
/// the open-addressed pool must stay at or above `MIXED_MIN_SPEEDUP`
/// times the reference pool's pages/sec (default 0.95 — both sides are
/// memory-bound here, so the gate guards against the probe + backward-
/// shift path regressing, not for a win). Construction and cold faulting
/// are part of the measurement on both sides: eviction pressure is the
/// point of this regime.
fn bench_mixed_gate(_c: &mut Criterion) {
    use std::time::Instant;
    let pages = mixed_pages();
    let run_new = || {
        let pool = BufferPool::new(4096, shared_meter(CostConfig::default()));
        for &p in &pages {
            pool.access(p, pool.cost());
        }
        pool.hits()
    };
    let run_ref = || {
        let mut rpool = ReferencePool::new(4096, shared_meter(CostConfig::default()));
        for &p in &pages {
            rpool.access(p);
        }
        rpool.hits()
    };
    // Interleave the two sides round by round so clock-frequency drift
    // hits both equally; best-of per side.
    criterion::black_box(run_new());
    criterion::black_box(run_ref());
    let (mut new_ns, mut ref_ns) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..9 {
        let t = Instant::now();
        criterion::black_box(run_new());
        new_ns = new_ns.min(t.elapsed().as_nanos() as f64);
        let t = Instant::now();
        criterion::black_box(run_ref());
        ref_ns = ref_ns.min(t.elapsed().as_nanos() as f64);
    }
    let speedup = ref_ns / new_ns;
    let min: f64 = std::env::var("MIXED_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.95);
    println!(
        "pool/mixed_100k gate: new {:.2} ms vs reference {:.2} ms -> speedup {speedup:.2}x (min {min:.2}x)",
        new_ns / 1e6,
        ref_ns / 1e6,
    );
    assert!(
        speedup >= min,
        "mixed-workload regression: pool is {speedup:.2}x the reference on the \
         eviction-bound workload, below the MIXED_MIN_SPEEDUP floor of {min:.2}x"
    );
}

fn bench_pool(c: &mut Criterion) {
    let pages = mixed_pages();
    let hot = hot_pages();
    let mut group = c.benchmark_group("pool");
    group.bench_function("open_addressed_mixed_100k", |b| {
        b.iter(|| {
            let pool = BufferPool::new(4096, shared_meter(CostConfig::default()));
            for &p in &pages {
                pool.access(p, pool.cost());
            }
            pool.hits()
        })
    });
    group.bench_function("reference_mixed_100k", |b| {
        b.iter(|| {
            let mut pool = ReferencePool::new(4096, shared_meter(CostConfig::default()));
            for &p in &pages {
                pool.access(p);
            }
            pool.hits()
        })
    });
    // The hot pair measures the steady-state pure-hit path: the pool is
    // built and warmed outside the timed closure (construction and cold
    // faulting belong to the mixed pair above).
    let warm = BufferPool::new(4096, shared_meter(CostConfig::default()));
    for &p in &hot {
        warm.access(p, warm.cost());
    }
    group.bench_function("open_addressed_hot_100k", |b| {
        b.iter(|| {
            for &p in &hot {
                warm.access(p, warm.cost());
            }
            warm.hits()
        })
    });
    let mut rwarm = ReferencePool::new(4096, shared_meter(CostConfig::default()));
    for &p in &hot {
        rwarm.access(p);
    }
    group.bench_function("reference_hot_100k", |b| {
        b.iter(|| {
            for &p in &hot {
                rwarm.access(p);
            }
            rwarm.hits()
        })
    });
    group.bench_function("open_addressed_seq_runs_100k", |b| {
        b.iter(|| {
            let pool = BufferPool::new(4096, shared_meter(CostConfig::default()));
            let mut touched = 0u64;
            for chunk in 0..(WORKLOAD as u32 / 512) {
                let (h, m) = pool.access_run(FileId(0), (chunk * 512) % 16384, 512, pool.cost());
                touched += h + m;
            }
            touched
        })
    });
    group.bench_function("reference_seq_100k", |b| {
        b.iter(|| {
            let mut pool = ReferencePool::new(4096, shared_meter(CostConfig::default()));
            let mut touched = 0u64;
            for chunk in 0..(WORKLOAD as u32 / 512) {
                let first = (chunk * 512) % 16384;
                for p in first..first + 512 {
                    pool.access(PageId::new(FileId(0), p));
                    touched += 1;
                }
            }
            touched
        })
    });
    group.finish();
}

fn bench_filter(c: &mut Criterion) {
    let rids: Vec<Rid> = (0..20_000).map(|i| Rid::new(i * 3, 0)).collect();
    let filter = Filter::sorted(rids.clone());
    // Ascending probe stream over the filter's whole range, 1-in-3 members:
    // the pattern an index scan feeds the intersection filter.
    let probes: Vec<Rid> = (0..60_000).map(|i| Rid::new(i, 0)).collect();
    let mut group = c.benchmark_group("filter");
    group.bench_function("binary_probe_60k", |b| {
        b.iter(|| {
            let mut n = 0u32;
            for &r in &probes {
                if filter.contains(r) {
                    n += 1;
                }
            }
            n
        })
    });
    group.bench_function("galloping_probe_60k", |b| {
        b.iter(|| {
            let mut cursor = 0;
            let mut n = 0u32;
            for &r in &probes {
                if filter.contains_seq(&mut cursor, r) {
                    n += 1;
                }
            }
            n
        })
    });
    let shared: Arc<[Rid]> = rids.into();
    group.bench_function("build_shared_20k", |b| {
        b.iter(|| Filter::from_shared(shared.clone()).source_len())
    });
    group.bench_function("build_copied_20k", |b| {
        b.iter(|| Filter::sorted(shared.to_vec()).source_len())
    });
    group.finish();
}

fn bench_ridlist(c: &mut Criterion) {
    let pool = shared_pool(64, shared_meter(CostConfig::default()));
    let mut group = c.benchmark_group("ridlist");
    group.bench_function("inline_build_20", |b| {
        b.iter(|| {
            let mut bld = RidListBuilder::new(
                RidTierConfig::default(),
                pool.clone(),
                FileId(9),
                pool.cost().clone(),
            );
            for i in 0..20u32 {
                bld.push(Rid::new(i, 0));
            }
            bld.finish().len()
        })
    });
    group.bench_function("buffer_build_4096", |b| {
        b.iter(|| {
            let mut bld = RidListBuilder::new(
                RidTierConfig::default(),
                pool.clone(),
                FileId(9),
                pool.cost().clone(),
            );
            for i in 0..4096u32 {
                bld.push(Rid::new(i, 0));
            }
            bld.finish().len()
        })
    });
    group.finish();
}

criterion_group!(
    hotpath,
    bench_hot_gate,
    bench_mixed_gate,
    bench_pool,
    bench_filter,
    bench_ridlist
);
criterion_main!(hotpath);
