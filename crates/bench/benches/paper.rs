//! Criterion wall-time benches over the real code paths, one group per
//! experiment family. (The simulated cost units of each experiment come
//! from the `src/bin/*` harnesses; these benches confirm the *wall-time*
//! behaviour of the implementation itself.)

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use rdb_bench::fixtures::JscanFixture;
use rdb_btree::KeyRange;
use rdb_competition::{direct_competition_cost, simultaneous_cost, CostDist};
use rdb_core::baseline::{estimate_all, StaticJscan, StaticJscanConfig};
use rdb_core::{
    DynamicOptimizer, IndexChoice, OptimizeGoal, RecordPred, RetrievalRequest, RidListBuilder,
    RidTierConfig, StaticOptimizer, StaticPlan,
};
use rdb_storage::{shared_meter, shared_pool, CostConfig, FileId, Record, Rid, Value};

fn bench_competition(c: &mut Criterion) {
    let mut group = c.benchmark_group("competition");
    let a1 = CostDist::l_shape(1.0, 200.0);
    let a2 = CostDist::l_shape(1.0, 240.0);
    group.bench_function("direct_analytic", |b| {
        b.iter(|| direct_competition_cost(&a1, &a2, 1.0))
    });
    group.bench_function("simultaneous_mc_10k", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| simultaneous_cost(&a1, &a2, 1.0, None, &mut rng, 10_000))
    });
    group.finish();
}

fn host_var_request(f: &JscanFixture, a1: i64) -> RetrievalRequest<'_> {
    let residual: RecordPred = Arc::new(move |r: &Record| r[0].as_i64().unwrap() >= a1);
    RetrievalRequest {
        table: &f.table,
        cost: f.table.pool().cost().clone(),
        indexes: vec![IndexChoice::fetch_needed(
            &f.indexes[0],
            KeyRange::at_least(a1),
        )],
        residual,
        goal: OptimizeGoal::TotalTime,
        order_required: false,
        limit: None,
    }
}

fn bench_host_variable(c: &mut Criterion) {
    let f = JscanFixture::build(10_000, &[100], 100_000);
    let dynamic = DynamicOptimizer::default();
    let static_opt = StaticOptimizer::default();
    let mut group = c.benchmark_group("host_variable");
    for a1 in [0i64, 99] {
        group.bench_with_input(BenchmarkId::new("dynamic", a1), &a1, |b, &a1| {
            b.iter(|| {
                f.cold();
                dynamic.run(&host_var_request(&f, a1)).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("static_fscan", a1), &a1, |b, &a1| {
            b.iter(|| {
                f.cold();
                static_opt.execute(StaticPlan::Fscan { pos: 0 }, &host_var_request(&f, a1)).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("static_tscan", a1), &a1, |b, &a1| {
            b.iter(|| {
                f.cold();
                static_opt.execute(StaticPlan::Tscan, &host_var_request(&f, a1)).unwrap()
            })
        });
    }
    group.finish();
}

fn jscan_request(f: &JscanFixture) -> RetrievalRequest<'_> {
    let residual: RecordPred =
        Arc::new(move |r: &Record| r[0] == Value::Int(1) && r[1] == Value::Int(1));
    RetrievalRequest {
        table: &f.table,
        cost: f.table.pool().cost().clone(),
        indexes: vec![
            IndexChoice::fetch_needed(&f.indexes[0], KeyRange::eq(1)),
            IndexChoice::fetch_needed(&f.indexes[1], KeyRange::eq(1)),
        ],
        residual,
        goal: OptimizeGoal::TotalTime,
        order_required: false,
        limit: None,
    }
}

fn bench_jscan(c: &mut Criterion) {
    let f = JscanFixture::build(20_000, &[200, 80], 200_000);
    let dynamic = DynamicOptimizer::default();
    let static_jscan = StaticJscan::new(StaticJscanConfig::default());
    let mut group = c.benchmark_group("jscan");
    group.bench_function("dynamic", |b| {
        b.iter(|| {
            f.cold();
            dynamic.run(&jscan_request(&f)).unwrap()
        })
    });
    group.bench_function("static_moha90", |b| {
        b.iter(|| {
            f.cold();
            let req = jscan_request(&f);
            let est = estimate_all(&req);
            static_jscan.run(&req, &est).unwrap()
        })
    });
    group.finish();
}

fn bench_rid_tiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("rid_tiers");
    for n in [10usize, 1000, 50_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let pool = shared_pool(64, shared_meter(CostConfig::default()));
                let cost = pool.cost().clone();
                let mut builder =
                    RidListBuilder::new(RidTierConfig::default(), pool, FileId(9), cost);
                for i in 0..n {
                    builder.push(Rid::new(i as u32, 0));
                }
                builder.finish().len()
            })
        });
    }
    group.finish();
}

fn bench_estimation(c: &mut Criterion) {
    let f = JscanFixture::build(100_000, &[1000], 200_000);
    let idx = &f.indexes[1];
    let mut group = c.benchmark_group("estimation");
    group.bench_function("descent_to_split", |b| {
        b.iter(|| idx.estimate_range(&KeyRange::closed(5_000, 8_000), idx.pool().cost()))
    });
    group.bench_function("exact_count_scan", |b| {
        b.iter(|| idx.count_range(KeyRange::closed(5_000, 8_000), idx.pool().cost()))
    });
    let hist = rdb_btree::Histogram::equi_depth(idx, 100, idx.pool().cost()).expect("numeric keys");
    group.bench_function("stored_histogram_probe", |b| {
        b.iter(|| hist.estimate_range(&KeyRange::closed(5_000, 8_000)))
    });
    group.bench_function("stored_histogram_build", |b| {
        b.iter(|| rdb_btree::Histogram::equi_depth(idx, 100, idx.pool().cost()))
    });
    group.finish();
}

fn bench_union(c: &mut Criterion) {
    let f = JscanFixture::build(20_000, &[100, 150], 200_000);
    let dynamic = DynamicOptimizer::default();
    let mut group = c.benchmark_group("union_scan");
    group.bench_function("or_two_arms", |b| {
        b.iter(|| {
            f.cold();
            let residual: RecordPred = Arc::new(move |r: &Record| {
                r[0] == Value::Int(1) || r[1] == Value::Int(2)
            });
            dynamic.run_union(
                &f.table,
                vec![
                    (&f.indexes[0], KeyRange::eq(1)),
                    (&f.indexes[1], KeyRange::eq(2)),
                ],
                &residual,
                None,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_competition,
    bench_host_variable,
    bench_jscan,
    bench_rid_tiers,
    bench_estimation,
    bench_union
);
criterion_main!(benches);
