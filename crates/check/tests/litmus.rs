//! Litmus tests for the checker's memory model: classic message-passing
//! shapes that must pass or fail exactly as C11 semantics dictate. These
//! validate the engine itself before the storage harnesses lean on it.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use rdb_check::engine::{explore, parse_schedule, replay, spawn, Config, Outcome};
use rdb_check::sync::{ModelMutex, ModelSync, ModelWord};
use rdb_storage::sync::{AtomicWord, SyncFacade};

fn cfg() -> Config {
    Config::default()
}

/// Release store / acquire load message passing: the payload is always
/// visible once the flag is seen set.
#[test]
fn message_passing_release_acquire_passes() {
    let out = explore(&cfg(), || {
        let data = Arc::new(ModelWord::new(0));
        let flag = Arc::new(ModelWord::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let w = spawn(move || {
            d.store(42, Ordering::Relaxed);
            f.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale payload after acquire");
        }
        w.join();
    });
    assert!(out.passed(), "unexpected failure: {out:?}");
    if let Outcome::Pass { schedules, .. } = out {
        assert!(schedules > 1, "exploration never branched");
    }
}

/// With a relaxed flag the payload may lag: the checker must find the
/// stale interleaving.
#[test]
fn message_passing_relaxed_flag_fails() {
    let out = explore(&cfg(), || {
        let data = Arc::new(ModelWord::new(0));
        let flag = Arc::new(ModelWord::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let w = spawn(move || {
            d.store(42, Ordering::Relaxed);
            f.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale payload");
        }
        w.join();
    });
    assert!(!out.passed(), "relaxed message passing must be refutable");
}

/// An acquire fence after a relaxed flag load restores the guarantee
/// (C11 fence synchronization).
#[test]
fn acquire_fence_upgrades_relaxed_load() {
    let out = explore(&cfg(), || {
        let data = Arc::new(ModelWord::new(0));
        let flag = Arc::new(ModelWord::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let w = spawn(move || {
            d.store(42, Ordering::Relaxed);
            f.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            ModelSync::fence(Ordering::Acquire);
            assert_eq!(data.load(Ordering::Relaxed), 42, "fence did not upgrade");
        }
        w.join();
    });
    assert!(out.passed(), "unexpected failure: {out:?}");
}

/// A relaxed load really can return every admissible value: a run
/// asserting either fixed outcome is refuted.
#[test]
fn relaxed_load_explores_both_values() {
    for expect in [0u64, 1u64] {
        let out = explore(&cfg(), move || {
            let x = Arc::new(ModelWord::new(0));
            let x2 = Arc::clone(&x);
            let w = spawn(move || x2.store(1, Ordering::Relaxed));
            assert_eq!(x.load(Ordering::Relaxed), expect);
            w.join();
        });
        assert!(!out.passed(), "load pinned to {expect} was not refuted");
    }
}

/// Two unsynchronized relaxed stores of an invariant pair can be seen
/// torn; a mutex around both sides cannot.
#[test]
fn torn_pair_found_and_mutex_fixes_it() {
    let torn = explore(&cfg(), || {
        let a = Arc::new(ModelWord::new(0));
        let b = Arc::new(ModelWord::new(0));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let w = spawn(move || {
            a2.store(7, Ordering::Relaxed);
            b2.store(7, Ordering::Relaxed);
        });
        let (x, y) = (a.load(Ordering::Relaxed), b.load(Ordering::Relaxed));
        assert_eq!(x, y, "torn pair: {x} vs {y}");
        w.join();
    });
    assert!(!torn.passed(), "torn pair must be observable");

    let fixed = explore(&cfg(), || {
        let pair = Arc::new(ModelMutex::new((0u64, 0u64)));
        let p2 = Arc::clone(&pair);
        let w = spawn(move || p2.with(|p| *p = (7, 7)));
        pair.with(|p| assert_eq!(p.0, p.1, "torn under mutex"));
        w.join();
    });
    assert!(fixed.passed(), "unexpected failure: {fixed:?}");
}

/// RMW atomicity: concurrent `fetch_add`s never lose an update.
#[test]
fn concurrent_fetch_add_never_loses_updates() {
    let out = explore(&cfg(), || {
        let n = Arc::new(ModelWord::new(0));
        let (n1, n2) = (Arc::clone(&n), Arc::clone(&n));
        let t1 = spawn(move || {
            n1.fetch_add(1, Ordering::Relaxed);
        });
        let t2 = spawn(move || {
            n2.fetch_add(1, Ordering::Relaxed);
        });
        t1.join();
        t2.join();
        assert_eq!(n.load(Ordering::Acquire), 2, "lost update");
    });
    assert!(out.passed(), "unexpected failure: {out:?}");
}

/// A failing schedule replays to the same failure, with a trace.
#[test]
fn replay_reproduces_reported_failure() {
    let program = || {
        let data = Arc::new(ModelWord::new(0));
        let flag = Arc::new(ModelWord::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let w = spawn(move || {
            d.store(42, Ordering::Relaxed);
            f.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale payload");
        }
        w.join();
    };
    let Outcome::Fail(report) = explore(&cfg(), program) else {
        panic!("expected a failure to replay");
    };
    let decisions = parse_schedule(&report.schedule).expect("well-formed schedule");
    let rerun = replay(&cfg(), &decisions, program);
    let failure = rerun.failure.expect("replay must fail the same way");
    assert!(failure.contains("stale payload"), "wrong failure: {failure}");
    assert!(!rerun.trace.is_empty(), "replay must produce a trace");
}

/// Deadlock (lock-order inversion) is reported as such.
#[test]
fn lock_order_inversion_deadlocks() {
    let out = explore(&cfg(), || {
        let a = Arc::new(ModelMutex::new(()));
        let b = Arc::new(ModelMutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let w = spawn(move || a2.with(|_| b2.with(|_| ())));
        b.with(|_| a.with(|_| ()));
        w.join();
    });
    let Outcome::Fail(report) = out else {
        panic!("expected deadlock, got {out:?}");
    };
    assert!(report.message.contains("deadlock"), "wrong failure: {}", report.message);
}
