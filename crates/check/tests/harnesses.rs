//! The harness suite as tests: every real protocol passes exhaustive
//! exploration, every seeded-bug mutant is caught (the mutant ratchet),
//! failing schedules replay deterministically, and the deterministic
//! promotion-equivalence sweep holds.

use rdb_check::engine::{parse_schedule, replay, Config, Outcome};
use rdb_check::harness::{self, check_variant, promotion};

fn cfg() -> Config {
    Config::default()
}

#[test]
fn real_protocols_pass_and_mutants_are_caught() {
    for h in harness::all() {
        for v in &h.variants {
            let report = check_variant(&cfg(), h.name, v);
            assert!(
                report.ok,
                "{} violated its expectation (expect_caught={}): {:?}",
                report.label, v.expect_caught, report.outcome
            );
        }
    }
}

#[test]
fn mutant_failures_replay_deterministically() {
    for h in harness::all() {
        for v in h.variants.iter().filter(|v| v.expect_caught) {
            let Outcome::Fail(report) = check_variant(&cfg(), h.name, v).outcome else {
                panic!("{}/{} was not caught", h.name, v.name);
            };
            let decisions = parse_schedule(&report.schedule).expect("well-formed schedule");
            for _ in 0..2 {
                let rerun = replay(&cfg(), &decisions, (v.make)());
                let failure = rerun
                    .failure
                    .unwrap_or_else(|| panic!("{}/{} replay did not fail", h.name, v.name));
                assert_eq!(
                    failure, report.message,
                    "{}/{} replay diverged from exploration",
                    h.name, v.name
                );
                assert!(!rerun.trace.is_empty(), "replay must trace");
            }
        }
    }
}

#[test]
fn pruning_only_skips_covered_states() {
    // Pruned and unpruned exploration must agree — on a reduced
    // teardown-shaped program, since the full harnesses' unpruned trees
    // are enormous. Real variant passes both ways; leaking the tally
    // fails both ways.
    use rdb_check::engine::{explore, spawn};
    use rdb_check::sync::ModelSync;
    use rdb_storage::touch::{DeferredCounters, PendingTally};
    use std::sync::Arc;

    fn program(leak: bool) -> impl Fn() + Send + Sync + 'static {
        move || {
            let counters = Arc::new(DeferredCounters::<ModelSync>::default());
            let c1 = Arc::clone(&counters);
            let w = spawn(move || {
                let mut tally = PendingTally::new(c1);
                tally.record();
                if leak {
                    std::mem::forget(tally);
                }
            });
            let observed = counters.total();
            assert!(observed <= 1, "tally overshot");
            w.join();
            assert_eq!(counters.total(), 1, "teardown lost the count");
        }
    }

    for leak in [false, true] {
        let pruned = explore(&cfg(), program(leak));
        let unpruned = explore(
            &Config {
                prune: false,
                ..Config::default()
            },
            program(leak),
        );
        assert_eq!(
            pruned.passed(),
            !leak,
            "pruned verdict wrong for leak={leak}: {pruned:?}"
        );
        assert_eq!(
            pruned.passed(),
            unpruned.passed(),
            "pruning changed the verdict for leak={leak}: {pruned:?} vs {unpruned:?}"
        );
    }
}

#[test]
fn promotion_equivalence_sweep_holds() {
    let stats = promotion::equivalence_exhaustive(3, 4).expect("sweep must hold");
    assert!(stats.programs > 9_000, "sweep unexpectedly small: {stats:?}");
}
