//! The execution engine: virtual threads, modeled memory, and the DFS
//! over schedules.
//!
//! # How a check runs
//!
//! A *program* is a closure over modeled primitives ([`crate::ModelSync`]
//! atomics, [`crate::ModelMutex`], [`spawn`]). The
//! explorer runs it to completion once per **schedule**: at every model
//! operation the executing virtual thread parks, and a controller picks
//! which parked thread runs next. Each such pick — and each admissible
//! stale value a relaxed load may return — is a recorded decision. After
//! a run completes, the deepest not-yet-exhausted decision is advanced
//! and the program re-executes from scratch down the new branch:
//! depth-first search over the whole bounded schedule tree.
//!
//! Virtual threads are real OS threads serialized by a condvar baton —
//! exactly one runs between two scheduling points, so user code between
//! operations needs no instrumentation.
//!
//! # The memory model
//!
//! Each atomic word keeps an explicit **modification order**: the list of
//! stores performed on it, each carrying the *message view* it publishes.
//! Threads carry vector-clock views mapping each word to the oldest store
//! index they may still read:
//!
//! * a load chooses (a DFS decision) among the stores at or above the
//!   thread's floor for that word — relaxed loads really do return stale
//!   values here;
//! * an `Acquire` load joins the chosen store's message view into the
//!   thread view; a `Relaxed` load stashes it, to be applied by a later
//!   acquire fence (C11 fence synchronization);
//! * a `Release` store publishes the thread view; a `Relaxed` store
//!   publishes the view captured at the last release fence;
//! * read-modify-writes read the newest store and continue its release
//!   sequence.
//!
//! `SeqCst` is approximated conservatively as acquire-release plus
//! read-newest; the storage protocols under check use only
//! relaxed/acquire/release and fences, so the approximation is never
//! load-bearing.
//!
//! # Pruning
//!
//! At every thread-choice decision the controller hashes the whole
//! modeled state (memory, views, mutexes, ghost state, plus each
//! thread's *observation history* — what its loads returned — which is
//! what makes pruning sound for deterministic programs). Subtrees rooted
//! at a state that some exhausted subtree already covered are skipped.

use std::collections::{BTreeMap, HashSet};
use std::hash::{Hash, Hasher};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Index of a virtual thread.
pub type ThreadId = usize;

/// Per-word vector clock: for each atomic cell, the oldest store index
/// the holder may still read (coherence floor). Joining clocks is the
/// pointwise max.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub(crate) struct Clock(BTreeMap<u32, usize>);

impl Clock {
    fn floor(&self, cell: u32) -> usize {
        self.0.get(&cell).copied().unwrap_or(0)
    }

    fn raise(&mut self, cell: u32, idx: usize) {
        let e = self.0.entry(cell).or_insert(0);
        if idx > *e {
            *e = idx;
        }
    }

    fn join(&mut self, other: &Clock) {
        for (&cell, &idx) in &other.0 {
            self.raise(cell, idx);
        }
    }

    fn clear(&mut self) {
        self.0.clear();
    }
}

/// One store in a word's modification order: the value plus the message
/// view it publishes to synchronizing readers.
#[derive(Debug, Clone, Hash)]
struct StoreMsg {
    val: u64,
    clock: Clock,
}

/// One modeled atomic word.
#[derive(Debug, Hash)]
struct Cell {
    /// The modification order; never empty (index 0 is the initial value).
    hist: Vec<StoreMsg>,
}

/// What a blocked thread is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum BlockOn {
    /// A [`crate::ModelMutex`], by index.
    Mutex(usize),
    /// Another virtual thread finishing.
    Join(ThreadId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Status {
    Live,
    Blocked(BlockOn),
    Finished,
}

#[derive(Debug)]
struct ThreadState {
    status: Status,
    /// True while the OS thread is waiting for a grant (or finished).
    parked: bool,
    /// Read floors plus everything acquired so far.
    view: Clock,
    /// Message views stashed by relaxed loads, applied at the next
    /// acquire fence.
    pending: Clock,
    /// View captured at the last release fence; published by subsequent
    /// relaxed stores.
    rel_fence: Clock,
    /// Model operations performed (the livelock bound).
    ops: u64,
    /// Hash of the values this thread has observed; part of the state
    /// hash so pruning never merges runs the program could distinguish.
    obs: u64,
}

impl ThreadState {
    fn child(view: Clock) -> ThreadState {
        ThreadState {
            status: Status::Live,
            parked: false,
            view,
            pending: Clock::default(),
            rel_fence: Clock::default(),
            ops: 0,
            obs: 0,
        }
    }
}

/// One modeled mutex.
#[derive(Debug, Hash)]
struct MutexState {
    owner: Option<ThreadId>,
    /// View released by the last unlock; joined on acquisition.
    clock: Clock,
}

/// One recorded decision: which of `arity` alternatives was taken.
/// `hash` is the pre-decision state hash for thread choices (the pruning
/// key); value choices carry `None`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Choice {
    chosen: u32,
    arity: u32,
    hash: Option<u64>,
}

/// Why a run stopped.
#[derive(Debug, Clone)]
pub(crate) struct Failure {
    /// Human-readable cause (panic message, deadlock, bound).
    pub message: String,
}

/// The shared mutable execution state, behind `Exec::state`.
pub(crate) struct ExecState {
    threads: Vec<ThreadState>,
    cells: Vec<Cell>,
    mutexes: Vec<MutexState>,
    schedule: Vec<Choice>,
    cursor: usize,
    running: Option<ThreadId>,
    failure: Option<Failure>,
    abort: bool,
    /// Global operation sequence number (ghost timestamps).
    op_seq: u64,
    /// Per-op human-readable trace, recorded when tracing is on.
    trace: Option<Vec<String>>,
    max_ops: u64,
}

/// One execution's shared context: the state, the baton condvar, the
/// ghost hashers, and the worker pool running virtual threads.
pub(crate) struct Exec {
    state: Mutex<ExecState>,
    cv: Condvar,
    ghosts: Mutex<Vec<Box<dyn Fn() -> u64 + Send>>>,
    pool: Arc<WorkerPool>,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolQueue {
    jobs: std::collections::VecDeque<Job>,
    idle: usize,
    closed: bool,
}

/// Reuses OS threads across the thousands of re-executions a DFS
/// performs: spawning a fresh thread per virtual thread per schedule
/// dominates exploration time otherwise. One pool lives for the whole
/// `explore`/`replay` call; workers exit at shutdown.
struct WorkerPool {
    queue: Mutex<PoolQueue>,
    cv: Condvar,
}

impl WorkerPool {
    fn new() -> Arc<WorkerPool> {
        Arc::new(WorkerPool {
            queue: Mutex::new(PoolQueue {
                jobs: std::collections::VecDeque::new(),
                idle: 0,
                closed: false,
            }),
            cv: Condvar::new(),
        })
    }

    fn submit(self: &Arc<Self>, job: Job) {
        let mut q = lock(&self.queue);
        q.jobs.push_back(job);
        if q.idle == 0 {
            let pool = Arc::clone(self);
            std::thread::Builder::new()
                // The "rdb-check-vt" prefix keeps the quiet panic hook
                // applying to pooled virtual threads.
                .name("rdb-check-vt-pool".to_string())
                .spawn(move || pool.worker_loop())
                .expect("spawn pool worker");
        }
        drop(q);
        self.cv.notify_one();
    }

    fn worker_loop(self: Arc<Self>) {
        let mut q = lock(&self.queue);
        loop {
            while q.jobs.is_empty() && !q.closed {
                q.idle += 1;
                q = self.cv.wait(q).unwrap_or_else(PoisonError::into_inner);
                q.idle -= 1;
            }
            let Some(job) = q.jobs.pop_front() else {
                return; // closed and drained
            };
            drop(q);
            job();
            q = lock(&self.queue);
        }
    }

    fn shutdown(&self) {
        lock(&self.queue).closed = true;
        self.cv.notify_all();
    }
}

thread_local! {
    /// The execution this OS thread belongs to, while acting as a virtual
    /// thread. Installed by the wrapper, cleared by its drop guard.
    static CURRENT: std::cell::RefCell<Option<(Arc<Exec>, ThreadId)>> =
        const { std::cell::RefCell::new(None) };
}

/// Clears [`CURRENT`] when a virtual-thread wrapper exits, panicking or
/// not, so a pooled test thread never leaks a dead execution handle.
struct CurrentGuard;

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.borrow_mut().take());
    }
}

/// Panic payload used to unwind virtual threads when a run is aborted
/// (prune, failure elsewhere, replay done). Never reported as a failure.
struct AbortToken;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn current() -> (Arc<Exec>, ThreadId) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("model primitive used outside a checker execution")
    })
}

fn is_acquire(order: Ordering) -> bool {
    matches!(order, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(order: Ordering) -> bool {
    matches!(order, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// FNV-style fold of one observation into a thread's history hash.
fn mix(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x100_0000_01b3)
}

/// Outcome of one attempt at a blocking operation.
enum Attempt<R> {
    Ready(R),
    Block(BlockOn),
}

impl ExecState {
    /// Consumes the next decision (or records a fresh one) with `arity`
    /// alternatives; returns the branch to take. Used for value choices;
    /// thread choices go through the controller.
    fn choose(&mut self, arity: usize) -> usize {
        if arity <= 1 {
            return 0;
        }
        if self.cursor == self.schedule.len() {
            self.schedule.push(Choice {
                chosen: 0,
                arity: arity as u32,
                hash: None,
            });
        } else {
            let c = &mut self.schedule[self.cursor];
            if c.arity == 0 {
                // Replay schedules carry choices without arities; fill in.
                c.arity = arity as u32;
            }
            if c.chosen as usize >= arity {
                self.fail("replay schedule does not fit this program (bad branch index)");
                self.cursor += 1;
                return 0;
            }
        }
        let c = self.schedule[self.cursor];
        self.cursor += 1;
        c.chosen as usize
    }

    fn fail(&mut self, message: impl Into<String>) {
        if self.failure.is_none() {
            self.failure = Some(Failure {
                message: message.into(),
            });
        }
        self.abort = true;
    }

    fn trace(&mut self, line: impl FnOnce() -> String) {
        if let Some(t) = self.trace.as_mut() {
            t.push(line());
        }
    }

    // ---------------------------------------------------- memory model

    /// Allocates a fresh atomic word holding `init`.
    pub(crate) fn alloc_cell(&mut self, init: u64) -> u32 {
        let id = self.cells.len() as u32;
        self.cells.push(Cell {
            hist: vec![StoreMsg {
                val: init,
                clock: Clock::default(),
            }],
        });
        id
    }

    /// Atomic load: picks (as a DFS decision) among the admissible stores
    /// in the word's modification order and applies the synchronization
    /// the ordering grants.
    pub(crate) fn atomic_load(&mut self, tid: ThreadId, cell: u32, order: Ordering) -> u64 {
        let len = self.cells[cell as usize].hist.len();
        let lo = if order == Ordering::SeqCst {
            // Conservative SC approximation: read the newest store.
            len - 1
        } else {
            self.threads[tid].view.floor(cell).min(len - 1)
        };
        let pick = lo + self.choose(len - lo);
        let msg = self.cells[cell as usize].hist[pick].clone();
        let t = &mut self.threads[tid];
        t.view.raise(cell, pick);
        if is_acquire(order) {
            t.view.join(&msg.clock);
        } else {
            t.pending.join(&msg.clock);
        }
        t.obs = mix(t.obs, (u64::from(cell) << 32) ^ pick as u64);
        t.obs = mix(t.obs, msg.val);
        self.trace(|| format!("t{tid} load c{cell} -> {} (mo[{pick}], {order:?})", msg.val));
        msg.val
    }

    /// Atomic store: appends to the modification order, publishing the
    /// view the ordering dictates.
    pub(crate) fn atomic_store(&mut self, tid: ThreadId, cell: u32, val: u64, order: Ordering) {
        let idx = self.cells[cell as usize].hist.len();
        let t = &mut self.threads[tid];
        let mut msg = if is_release(order) {
            t.view.clone()
        } else {
            t.rel_fence.clone()
        };
        msg.raise(cell, idx);
        t.view.raise(cell, idx);
        self.cells[cell as usize].hist.push(StoreMsg { val, clock: msg });
        self.trace(|| format!("t{tid} store c{cell} <- {val} (mo[{idx}], {order:?})"));
    }

    /// Atomic read-modify-write: reads the newest store (RMW atomicity),
    /// writes `f(old)`, and continues the release sequence of the store
    /// it read.
    pub(crate) fn atomic_rmw(
        &mut self,
        tid: ThreadId,
        cell: u32,
        order: Ordering,
        f: impl FnOnce(u64) -> Option<u64>,
    ) -> u64 {
        let idx_read = self.cells[cell as usize].hist.len() - 1;
        let prev = self.cells[cell as usize].hist[idx_read].clone();
        let t = &mut self.threads[tid];
        t.view.raise(cell, idx_read);
        if is_acquire(order) {
            t.view.join(&prev.clock);
        } else {
            t.pending.join(&prev.clock);
        }
        t.obs = mix(t.obs, (u64::from(cell) << 32) ^ prev.val);
        if let Some(new) = f(prev.val) {
            let idx = idx_read + 1;
            let mut msg = if is_release(order) {
                t.view.clone()
            } else {
                t.rel_fence.clone()
            };
            // A RMW continues the release sequence headed by the store it
            // read: its message carries that store's view too, so a
            // relaxed RMW does not break an acquire/release chain.
            msg.join(&prev.clock);
            msg.raise(cell, idx);
            t.view.raise(cell, idx);
            self.cells[cell as usize].hist.push(StoreMsg {
                val: new,
                clock: msg,
            });
            self.trace(|| format!("t{tid} rmw c{cell} {} -> {new} ({order:?})", prev.val));
        } else {
            self.trace(|| format!("t{tid} rmw c{cell} {} (no write, {order:?})", prev.val));
        }
        prev.val
    }

    /// Standalone fence.
    pub(crate) fn fence(&mut self, tid: ThreadId, order: Ordering) {
        let t = &mut self.threads[tid];
        if is_acquire(order) {
            // Acquire fence: upgrade every earlier relaxed load — their
            // stashed message views become acquired now.
            let pending = std::mem::take(&mut t.pending);
            t.view.join(&pending);
            t.pending.clear();
        }
        if is_release(order) {
            t.rel_fence = t.view.clone();
        }
        self.trace(|| format!("t{tid} fence {order:?}"));
    }

    // --------------------------------------------------------- mutexes

    pub(crate) fn alloc_mutex(&mut self) -> usize {
        let id = self.mutexes.len();
        self.mutexes.push(MutexState {
            owner: None,
            clock: Clock::default(),
        });
        id
    }

    fn try_lock_mutex(&mut self, tid: ThreadId, m: usize) -> Attempt<()> {
        if self.mutexes[m].owner.is_some() {
            return Attempt::Block(BlockOn::Mutex(m));
        }
        self.mutexes[m].owner = Some(tid);
        let clock = self.mutexes[m].clock.clone();
        self.threads[tid].view.join(&clock);
        self.trace(|| format!("t{tid} lock m{m}"));
        Attempt::Ready(())
    }

    fn unlock_mutex(&mut self, tid: ThreadId, m: usize) {
        debug_assert_eq!(self.mutexes[m].owner, Some(tid));
        self.mutexes[m].clock = self.threads[tid].view.clone();
        self.mutexes[m].owner = None;
        self.trace(|| format!("t{tid} unlock m{m}"));
    }

    // ------------------------------------------------------ scheduling

    /// Threads the controller may grant right now, ascending.
    fn schedulable(&self) -> Vec<ThreadId> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                t.parked
                    && match t.status {
                        Status::Live => true,
                        Status::Blocked(BlockOn::Mutex(m)) => self.mutexes[m].owner.is_none(),
                        Status::Blocked(BlockOn::Join(o)) => {
                            self.threads[o].status == Status::Finished
                        }
                        Status::Finished => false,
                    }
            })
            .map(|(i, _)| i)
            .collect()
    }

    fn state_hash(&self, ghosts: &[Box<dyn Fn() -> u64 + Send>]) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for t in &self.threads {
            t.status.hash(&mut h);
            t.view.hash(&mut h);
            t.pending.hash(&mut h);
            t.rel_fence.hash(&mut h);
            t.ops.hash(&mut h);
            t.obs.hash(&mut h);
        }
        self.cells.hash(&mut h);
        self.mutexes.hash(&mut h);
        for g in ghosts {
            g().hash(&mut h);
        }
        h.finish()
    }
}

// ------------------------------------------------------------- op entry

/// Parks the calling virtual thread at a scheduling point, waits for the
/// controller's grant, then runs `f` on the locked state. `f` may be
/// re-attempted (blocking ops): returning `Attempt::Block` re-parks with
/// the given reason.
fn op_attempt<R>(mut f: impl FnMut(&mut ExecState, ThreadId) -> Attempt<R>) -> R {
    let (exec, tid) = current();
    let mut st = lock(&exec.state);
    if std::thread::panicking() {
        // Drop guards may perform model ops while a failing (or aborted)
        // run unwinds — e.g. a tally absorbing its pending count. The
        // run's fate is already decided, so apply the effect directly
        // instead of scheduling: parking here would panic again inside
        // the unwind and abort the whole process. Blocked resources are
        // force-released — mutual exclusion no longer matters in a run
        // whose result is discarded, and the owner may never run again.
        loop {
            match f(&mut st, tid) {
                Attempt::Ready(r) => return r,
                Attempt::Block(BlockOn::Mutex(m)) => st.mutexes[m].owner = None,
                Attempt::Block(BlockOn::Join(t)) => st.threads[t].status = Status::Finished,
            }
        }
    }
    loop {
        st.threads[tid].parked = true;
        st.running = None;
        exec.cv.notify_all();
        while st.running != Some(tid) {
            if st.abort {
                drop(st);
                panic::panic_any(AbortToken);
            }
            st = exec
                .cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if st.abort {
            drop(st);
            panic::panic_any(AbortToken);
        }
        match f(&mut st, tid) {
            Attempt::Ready(r) => {
                st.threads[tid].status = Status::Live;
                st.threads[tid].ops += 1;
                st.op_seq += 1;
                if st.threads[tid].ops > st.max_ops {
                    let bound = st.max_ops;
                    st.fail(format!(
                        "thread {tid} exceeded the {bound}-operation bound (livelock?)"
                    ));
                    drop(st);
                    panic::panic_any(AbortToken);
                }
                return r;
            }
            Attempt::Block(on) => {
                st.threads[tid].status = Status::Blocked(on);
            }
        }
    }
}

/// A non-blocking model operation: one scheduling point, then `f`.
pub(crate) fn op<R>(f: impl FnOnce(&mut ExecState, ThreadId) -> R) -> R {
    let mut f = Some(f);
    op_attempt(move |st, tid| {
        let g = f.take().expect("non-blocking op attempted twice");
        Attempt::Ready(g(st, tid))
    })
}

/// Runs `f` on the execution state *without* a scheduling point — for
/// bookkeeping (allocation, ghost timestamps) that is not a visible
/// memory action.
pub(crate) fn with_state<R>(f: impl FnOnce(&mut ExecState, ThreadId) -> R) -> R {
    let (exec, tid) = current();
    let mut st = lock(&exec.state);
    f(&mut st, tid)
}

/// Registers a ghost-state hasher for pruning soundness; returns nothing.
pub(crate) fn register_ghost(hasher: Box<dyn Fn() -> u64 + Send>) {
    let (exec, _) = current();
    lock(&exec.ghosts).push(hasher);
}

/// The global op sequence number — a ghost timestamp for linearization
/// interval assertions. Not a scheduling point.
pub fn now() -> u64 {
    with_state(|st, _| st.op_seq)
}

/// Folds an observation a harness made through ghost state into the
/// calling thread's observation hash, keeping pruning sound when ghost
/// data influences later assertions.
pub(crate) fn observe(x: u64) {
    with_state(|st, tid| {
        let t = &mut st.threads[tid];
        t.obs = mix(t.obs, x);
    });
}

/// A pure scheduling point: models a stretch of real work (a frame
/// write, a page copy) during which other threads may run and observe
/// shared state. No memory effect.
pub fn yield_now() {
    op(|st, tid| st.trace(|| format!("t{tid} yield")));
}

/// Locks a modeled mutex (one scheduling point; blocks until free).
pub(crate) fn mutex_lock(m: usize) {
    op_attempt(|st, tid| st.try_lock_mutex(tid, m));
}

/// Unlocks a modeled mutex (one scheduling point).
pub(crate) fn mutex_unlock(m: usize) {
    op(|st, tid| st.unlock_mutex(tid, m));
}

// ----------------------------------------------------------- threading

/// Handle to a spawned virtual thread.
#[derive(Debug)]
pub struct JoinHandle {
    tid: ThreadId,
}

impl JoinHandle {
    /// Blocks (virtually) until the thread finishes, acquiring its final
    /// view — the model analogue of `std::thread::JoinHandle::join`.
    pub fn join(self) {
        op_attempt(|st, tid| {
            let target = self.tid;
            if st.threads[target].status == Status::Finished {
                let v = st.threads[target].view.clone();
                st.threads[tid].view.join(&v);
                st.trace(|| format!("t{tid} joined t{target}"));
                Attempt::Ready(())
            } else {
                Attempt::Block(BlockOn::Join(target))
            }
        })
    }
}

/// Spawns a virtual thread running `f`. Must be called from inside a
/// checker execution.
pub fn spawn(f: impl FnOnce() + Send + 'static) -> JoinHandle {
    // The spawn itself is a scheduling point; the child inherits the
    // parent's view (thread creation synchronizes-with thread start).
    let tid = op(|st, me| {
        let view = st.threads[me].view.clone();
        let tid = st.threads.len();
        st.threads.push(ThreadState::child(view));
        st.trace(|| format!("t{me} spawned t{tid}"));
        tid
    });
    let (exec, _) = current();
    let exec2 = Arc::clone(&exec);
    let pool = Arc::clone(&exec.pool);
    pool.submit(Box::new(move || wrapper(exec2, tid, f)));
    JoinHandle { tid }
}

/// Body of every virtual OS thread: park for the first grant, run the
/// user closure (which parks at each model op), then mark finished —
/// recording a real panic as the run's failure.
fn wrapper(exec: Arc<Exec>, tid: ThreadId, f: impl FnOnce()) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
    let _guard = CurrentGuard;
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        // The start-of-thread scheduling point: user code runs only once
        // the controller grants this thread.
        op(|st, t| st.trace(|| format!("t{t} start")));
        f();
    }));
    let mut st = lock(&exec.state);
    if let Err(payload) = result {
        if payload.downcast_ref::<AbortToken>().is_none() {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            st.fail(format!("thread {tid} panicked: {msg}"));
        }
    }
    st.threads[tid].status = Status::Finished;
    st.threads[tid].parked = true;
    if st.running == Some(tid) {
        st.running = None;
    }
    exec.cv.notify_all();
}

// ------------------------------------------------------------ explorer

/// Exploration knobs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Per-thread model-operation bound; exceeding it fails the run.
    pub max_ops: u64,
    /// Cap on explored schedules; exceeding it yields [`Outcome::Capped`].
    pub max_schedules: u64,
    /// Enable state-hash subtree pruning.
    pub prune: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_ops: 5_000,
            max_schedules: 2_000_000,
            prune: true,
        }
    }
}

/// A failing schedule, reported so `--replay` can rerun it.
#[derive(Debug, Clone)]
pub struct FailReport {
    /// What went wrong (assertion message, deadlock, bound).
    pub message: String,
    /// The decision string to pass to `--replay`.
    pub schedule: String,
    /// Per-operation trace of the failing run (filled by replay runs).
    pub trace: Vec<String>,
}

/// Result of exploring a program.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Every schedule in the bounded tree passed.
    Pass {
        /// Schedules executed (pruned subtrees count once).
        schedules: u64,
        /// Runs cut short because their state was already covered.
        pruned: u64,
    },
    /// Some schedule failed.
    Fail(FailReport),
    /// The schedule cap was hit before the tree was exhausted.
    Capped {
        /// Schedules executed before giving up.
        schedules: u64,
    },
}

impl Outcome {
    /// True when the exploration proved every bounded schedule passes.
    pub fn passed(&self) -> bool {
        matches!(self, Outcome::Pass { .. })
    }
}

struct RunOutput {
    failure: Option<Failure>,
    pruned: bool,
    trace: Vec<String>,
}

/// Runs `program` once under `schedule` (extending it at fresh decision
/// points), returning the failure if any. `schedule` comes back possibly
/// extended; `done` is consulted for pruning only.
fn run_once(
    program: &Arc<dyn Fn() + Send + Sync>,
    schedule: &mut Vec<Choice>,
    done: &HashSet<u64>,
    cfg: &Config,
    trace: bool,
    pool: &Arc<WorkerPool>,
) -> RunOutput {
    let exec = Arc::new(Exec {
        state: Mutex::new(ExecState {
            threads: vec![ThreadState::child(Clock::default())],
            cells: Vec::new(),
            mutexes: Vec::new(),
            schedule: std::mem::take(schedule),
            cursor: 0,
            running: None,
            failure: None,
            abort: false,
            op_seq: 0,
            trace: trace.then(Vec::new),
            max_ops: cfg.max_ops,
        }),
        cv: Condvar::new(),
        ghosts: Mutex::new(Vec::new()),
        pool: Arc::clone(pool),
    });

    install_quiet_panic_hook();
    {
        let p = Arc::clone(program);
        let exec2 = Arc::clone(&exec);
        pool.submit(Box::new(move || wrapper(exec2, 0, move || p())));
    }

    let mut pruned = false;
    let mut st = lock(&exec.state);
    loop {
        while !(st.running.is_none() && st.threads.iter().all(|t| t.parked)) {
            st = exec.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if st.failure.is_some() || st.abort {
            break;
        }
        if st.threads.iter().all(|t| t.status == Status::Finished) {
            if st.cursor < st.schedule.len() {
                st.fail("program finished before consuming its schedule (nondeterministic?)");
            }
            break;
        }
        let sched = st.schedulable();
        if sched.is_empty() {
            let blocked: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status != Status::Finished)
                .map(|(i, t)| format!("t{i} {:?}", t.status))
                .collect();
            st.fail(format!("deadlock: {}", blocked.join(", ")));
            break;
        }
        let pick = if sched.len() == 1 {
            sched[0]
        } else {
            if st.cursor == st.schedule.len() {
                let h = st.state_hash(&lock(&exec.ghosts));
                if cfg.prune && done.contains(&h) {
                    pruned = true;
                    st.abort = true;
                    break;
                }
                st.schedule.push(Choice {
                    chosen: 0,
                    arity: sched.len() as u32,
                    hash: Some(h),
                });
            } else {
                let cursor = st.cursor;
                let c = &mut st.schedule[cursor];
                if c.arity == 0 {
                    c.arity = sched.len() as u32;
                }
                if c.chosen as usize >= sched.len() {
                    st.fail("replay schedule does not fit this program (bad thread index)");
                    break;
                }
            }
            let c = st.schedule[st.cursor];
            st.cursor += 1;
            sched[c.chosen as usize]
        };
        st.threads[pick].parked = false;
        st.running = Some(pick);
        exec.cv.notify_all();
    }

    // Drain: wake everything with the abort flag up and wait for every
    // virtual thread to unwind.
    st.abort = true;
    exec.cv.notify_all();
    while !st.threads.iter().all(|t| t.status == Status::Finished) {
        st = exec.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        exec.cv.notify_all();
    }
    let failure = st.failure.take();
    let run_trace = st.trace.take().unwrap_or_default();
    *schedule = std::mem::take(&mut st.schedule);
    drop(st);
    RunOutput {
        failure,
        pruned,
        trace: run_trace,
    }
}

/// Silences panic output from checker virtual threads (each failing
/// schedule deliberately panics; thousands may be explored). Installed
/// once, chains to the previous hook for every other thread.
fn install_quiet_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let quiet = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("rdb-check-vt"));
            if !quiet {
                prev(info);
            }
        }));
    });
}

fn encode_schedule(schedule: &[Choice]) -> String {
    schedule
        .iter()
        .map(|c| c.chosen.to_string())
        .collect::<Vec<_>>()
        .join(".")
}

/// A `--replay` decision string that failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleParseError {
    /// The token that is not a decision index.
    pub token: String,
}

impl std::fmt::Display for ScheduleParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad schedule token {:?}", self.token)
    }
}

impl std::error::Error for ScheduleParseError {}

/// Parses a `--replay` decision string (`"1.0.2"`).
pub fn parse_schedule(s: &str) -> Result<Vec<u32>, ScheduleParseError> {
    let s = s.trim();
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split('.')
        .map(|tok| {
            tok.trim().parse::<u32>().map_err(|_| ScheduleParseError {
                token: tok.to_string(),
            })
        })
        .collect()
}

/// Explores every schedule of `program` (depth-first, pruned) under
/// `cfg`.
pub fn explore(cfg: &Config, program: impl Fn() + Send + Sync + 'static) -> Outcome {
    let pool = WorkerPool::new();
    let out = explore_with(cfg, Arc::new(program), &pool);
    pool.shutdown();
    out
}

fn explore_with(
    cfg: &Config,
    program: Arc<dyn Fn() + Send + Sync>,
    pool: &Arc<WorkerPool>,
) -> Outcome {
    let mut schedule: Vec<Choice> = Vec::new();
    let mut done: HashSet<u64> = HashSet::new();
    let mut schedules = 0u64;
    let mut pruned = 0u64;
    loop {
        if schedules >= cfg.max_schedules {
            return Outcome::Capped { schedules };
        }
        schedules += 1;
        let run = run_once(&program, &mut schedule, &done, cfg, false, pool);
        if let Some(f) = run.failure {
            return Outcome::Fail(FailReport {
                message: f.message,
                schedule: encode_schedule(&schedule),
                trace: run.trace,
            });
        }
        if run.pruned {
            pruned += 1;
        }
        loop {
            match schedule.last() {
                None => return Outcome::Pass { schedules, pruned },
                Some(c) if c.chosen + 1 < c.arity => {
                    let last = schedule.last_mut().expect("nonempty");
                    last.chosen += 1;
                    break;
                }
                Some(c) => {
                    if let Some(h) = c.hash {
                        done.insert(h);
                    }
                    schedule.pop();
                }
            }
        }
    }
}

/// Reruns exactly one schedule (from a [`FailReport`] or `--replay`),
/// with per-operation tracing on. Fresh decision points beyond the given
/// prefix take branch 0.
pub fn replay(cfg: &Config, decisions: &[u32], program: impl Fn() + Send + Sync + 'static) -> RunReport {
    let program: Arc<dyn Fn() + Send + Sync> = Arc::new(program);
    let mut schedule: Vec<Choice> = decisions
        .iter()
        .map(|&chosen| Choice {
            chosen,
            arity: 0,
            hash: None,
        })
        .collect();
    let done = HashSet::new();
    let pool = WorkerPool::new();
    let run = run_once(&program, &mut schedule, &done, cfg, true, &pool);
    pool.shutdown();
    RunReport {
        failure: run.failure.map(|f| f.message),
        trace: run.trace,
        schedule: encode_schedule(&schedule),
    }
}

/// Outcome of a single replayed schedule.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The failure message, if the run failed.
    pub failure: Option<String>,
    /// Per-operation trace of the run.
    pub trace: Vec<String>,
    /// The full decision string actually taken (prefix + defaults).
    pub schedule: String,
}
