//! The model world: `ModelSync` (the checker's [`SyncFacade`]), modeled
//! mutexes, and ghost state for specification-only bookkeeping.
//!
//! Everything here may only be used inside a program run by
//! [`crate::explore`] / [`crate::replay`]; constructing a model primitive
//! outside an execution panics with a clear message.

use std::cell::UnsafeCell;
use std::hash::{Hash, Hasher};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use rdb_storage::sync::{AtomicWord, SyncFacade};

use crate::engine;

/// The checker's world: modeled atomics and fences, recorded and
/// explored by the engine. Plugs into the storage protocols through the
/// same [`SyncFacade`] the production [`rdb_storage::RealSync`] uses.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModelSync;

/// A modeled 64-bit atomic word: an index into the execution's cell
/// table. Cheap to copy around; all state lives in the engine.
#[derive(Debug)]
pub struct ModelWord {
    cell: u32,
}

impl AtomicWord for ModelWord {
    fn new(value: u64) -> Self {
        ModelWord {
            cell: engine::with_state(|st, _| st.alloc_cell(value)),
        }
    }

    fn load(&self, order: Ordering) -> u64 {
        engine::op(|st, tid| st.atomic_load(tid, self.cell, order))
    }

    fn store(&self, value: u64, order: Ordering) {
        engine::op(|st, tid| st.atomic_store(tid, self.cell, value, order))
    }

    fn fetch_add(&self, delta: u64, order: Ordering) -> u64 {
        engine::op(|st, tid| st.atomic_rmw(tid, self.cell, order, |v| Some(v.wrapping_add(delta))))
    }

    fn fetch_max(&self, value: u64, order: Ordering) -> u64 {
        engine::op(|st, tid| st.atomic_rmw(tid, self.cell, order, |v| Some(v.max(value))))
    }

    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        engine::op(|st, tid| {
            let mut swapped = false;
            let order = success; // the read-modify-write path's ordering
            let prev = st.atomic_rmw(tid, self.cell, order, |v| {
                if v == current {
                    swapped = true;
                    Some(new)
                } else {
                    None
                }
            });
            if swapped {
                Ok(prev)
            } else {
                // Failed CAS is a plain load with the failure ordering;
                // the rmw above already observed the newest store, so no
                // second value choice is introduced.
                let _ = failure;
                Err(prev)
            }
        })
    }
}

// SAFETY: a ModelWord is only an index; all mutation happens inside the
// engine's state mutex.
unsafe impl Send for ModelWord {}
// SAFETY: as above — shared references never touch unsynchronized data.
unsafe impl Sync for ModelWord {}

impl SyncFacade for ModelSync {
    type Word = ModelWord;

    fn fence(order: Ordering) {
        engine::op(|st, tid| st.fence(tid, order));
    }
}

/// A modeled mutex: lock acquisition is a scheduling point that blocks
/// the virtual thread while another owns it; unlock releases the owner's
/// view to the next acquirer (the usual mutex happens-before edge).
#[derive(Debug)]
pub struct ModelMutex<T> {
    id: usize,
    data: UnsafeCell<T>,
}

// SAFETY: access to `data` only happens between the modeled lock and
// unlock operations, which the engine serializes: at most one virtual
// thread owns the mutex, and at most one virtual thread runs at all;
// real-memory visibility rides on the engine's state-mutex handoffs.
unsafe impl<T: Send> Send for ModelMutex<T> {}
// SAFETY: as above.
unsafe impl<T: Send> Sync for ModelMutex<T> {}

impl<T: Send> ModelMutex<T> {
    /// A fresh modeled mutex guarding `value`.
    pub fn new(value: T) -> Self {
        ModelMutex {
            id: engine::with_state(|st, _| st.alloc_mutex()),
            data: UnsafeCell::new(value),
        }
    }

    /// Locks, runs `f` on the guarded data, unlocks. The closure runs
    /// between two scheduling points; operations inside it (modeled
    /// atomics, ghost updates) interleave as usual.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        engine::mutex_lock(self.id);
        // SAFETY: we hold the modeled lock (see the Sync impl argument),
        // so no other virtual thread can be between lock and unlock for
        // this mutex, and only one virtual thread runs at a time.
        let r = f(unsafe { &mut *self.data.get() });
        engine::mutex_unlock(self.id);
        r
    }
}

/// Ghost (auxiliary) state: specification-only data a harness updates at
/// linearization points and checks in assertions. Ghost access is **not**
/// a scheduling point and takes no part in the memory model — it is the
/// standard auxiliary-variable device of model checking.
///
/// Soundness contract: harness code must not *branch* on ghost data
/// except to panic (assert). The engine folds each post-access snapshot
/// hash into the pruning key, which covers mutations and assertions but
/// not silent control flow.
#[derive(Debug)]
pub struct Ghost<T> {
    inner: Arc<GhostInner<T>>,
}

#[derive(Debug)]
struct GhostInner<T> {
    data: UnsafeCell<T>,
}

// SAFETY: only the single running virtual thread (or the controller
// while every thread is parked) touches `data`; the engine's state mutex
// provides the real-memory handoff between them.
unsafe impl<T: Send> Send for GhostInner<T> {}
// SAFETY: as above.
unsafe impl<T: Send> Sync for GhostInner<T> {}

impl<T: Hash + Send + 'static> Ghost<T> {
    /// Fresh ghost state, registered with the engine so its content
    /// participates in the pruning state hash.
    pub fn new(init: T) -> Self {
        let inner = Arc::new(GhostInner {
            data: UnsafeCell::new(init),
        });
        let weak = Arc::downgrade(&inner);
        engine::register_ghost(Box::new(move || {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            if let Some(g) = weak.upgrade() {
                // SAFETY: the controller calls hashers only while every
                // virtual thread is parked (see GhostInner's Sync
                // argument).
                unsafe { &*g.data.get() }.hash(&mut h);
            }
            h.finish()
        }));
        Ghost { inner }
    }

    /// Mutably accesses the ghost data. Exclusive by construction: only
    /// the running virtual thread executes user code.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        // SAFETY: see GhostInner's Sync argument — single running thread.
        let r = f(unsafe { &mut *self.inner.data.get() });
        // Fold the post-access content into the thread's observation
        // hash so pruning distinguishes runs whose ghost state diverged.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        // SAFETY: as above.
        unsafe { &*self.inner.data.get() }.hash(&mut h);
        engine::observe(h.finish());
        r
    }
}

impl<T> Clone for Ghost<T> {
    fn clone(&self) -> Self {
        Ghost {
            inner: Arc::clone(&self.inner),
        }
    }
}
