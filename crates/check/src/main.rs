//! `rdb-check` CLI: runs every protocol harness through the exhaustive
//! interleaving engine, enforces the mutant ratchet (every seeded bug
//! must be caught), and replays recorded failing schedules.
//!
//! ```text
//! rdb-check                       # all harnesses + mutants + equivalence sweep
//! rdb-check --harness seqlock     # one harness (all its variants)
//! rdb-check --replay 1.0.2 --harness seqlock:publish-before-move
//! ```
//!
//! Exit code is non-zero when a real protocol fails, a mutant goes
//! uncaught, exploration hits its schedule cap, or the deterministic
//! promotion-equivalence sweep diverges.

use std::process::ExitCode;

use rdb_check::engine::{parse_schedule, replay, Config, Outcome};
use rdb_check::harness::{self, check_variant};

struct Args {
    harness: Option<String>,
    replay: Option<String>,
    max_schedules: Option<u64>,
    no_prune: bool,
    skip_equiv: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        harness: None,
        replay: None,
        max_schedules: None,
        no_prune: false,
        skip_equiv: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--harness" => {
                args.harness = Some(it.next().ok_or("--harness needs a value")?);
            }
            "--replay" => {
                args.replay = Some(it.next().ok_or("--replay needs a schedule")?);
            }
            "--max-schedules" => {
                let v = it.next().ok_or("--max-schedules needs a value")?;
                args.max_schedules =
                    Some(v.parse().map_err(|_| format!("bad --max-schedules {v:?}"))?);
            }
            "--no-prune" => args.no_prune = true,
            "--skip-equiv" => args.skip_equiv = true,
            "--help" | "-h" => {
                println!(
                    "usage: rdb-check [--harness NAME[:VARIANT]] [--replay SCHEDULE]\n\
                     \x20                [--max-schedules N] [--no-prune] [--skip-equiv]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn config(args: &Args) -> Config {
    let mut cfg = Config::default();
    if let Some(m) = args.max_schedules {
        cfg.max_schedules = m;
    }
    cfg.prune = !args.no_prune;
    cfg
}

fn run_replay(args: &Args) -> Result<(), String> {
    let spec = args
        .harness
        .as_deref()
        .ok_or("--replay needs --harness NAME[:VARIANT]")?;
    let (hname, vname) = match spec.split_once(':') {
        Some((h, v)) => (h, v),
        None => (spec, "real"),
    };
    let harnesses = harness::all();
    let h = harnesses
        .iter()
        .find(|h| h.name == hname)
        .ok_or_else(|| format!("unknown harness {hname:?}"))?;
    let v = h
        .variants
        .iter()
        .find(|v| v.name == vname)
        .ok_or_else(|| format!("harness {hname} has no variant {vname:?}"))?;
    let decisions =
        parse_schedule(args.replay.as_deref().unwrap_or("")).map_err(|e| e.to_string())?;
    let report = replay(&config(args), &decisions, (v.make)());
    println!("replaying {hname}/{vname} schedule {}", report.schedule);
    for line in &report.trace {
        println!("  {line}");
    }
    match report.failure {
        Some(msg) => {
            println!("FAILED: {msg}");
            Err("replayed schedule failed".into())
        }
        None => {
            println!("schedule passed");
            Ok(())
        }
    }
}

fn run_checks(args: &Args) -> Result<(), String> {
    let cfg = config(args);
    let filter = args.harness.as_deref();
    let mut failed = 0u32;
    let mut ran = 0u32;
    for h in harness::all() {
        if filter.is_some_and(|f| f != h.name) {
            continue;
        }
        println!("harness {}: {}", h.name, h.about);
        for v in &h.variants {
            let report = check_variant(&cfg, h.name, v);
            ran += 1;
            let verdict = match (&report.outcome, report.ok) {
                (Outcome::Pass { schedules, pruned }, true) => {
                    format!("ok      ({schedules} schedules, {pruned} pruned)")
                }
                (Outcome::Fail(f), true) => {
                    format!("caught  ({}; replay {})", f.message, f.schedule)
                }
                (Outcome::Pass { schedules, .. }, false) => {
                    format!("MISSED  (mutant survived {schedules} schedules)")
                }
                (Outcome::Fail(f), false) => {
                    format!("FAILED  ({}; replay {})", f.message, f.schedule)
                }
                (Outcome::Capped { schedules }, _) => {
                    format!("CAPPED  (gave up after {schedules} schedules)")
                }
            };
            println!("  {:<28} {verdict}", report.label);
            if !report.ok {
                failed += 1;
            }
        }
    }
    if ran == 0 {
        return Err(format!("no harness matched {:?}", filter.unwrap_or("")));
    }
    if !args.skip_equiv && filter.is_none_or(|f| f == "promotion") {
        match harness::promotion::equivalence_exhaustive(3, 4) {
            Ok(stats) => println!(
                "promotion equivalence sweep: ok ({} programs, {} accesses)",
                stats.programs, stats.accesses
            ),
            Err(e) => {
                println!("promotion equivalence sweep: FAILED ({e})");
                failed += 1;
            }
        }
    }
    if failed > 0 {
        Err(format!("{failed} check(s) failed"))
    } else {
        Ok(())
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rdb-check: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = if args.replay.is_some() {
        run_replay(&args)
    } else {
        run_checks(&args)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rdb-check: {e}");
            ExitCode::FAILURE
        }
    }
}
