//! Harness (b): deferred promotion is observationally equivalent to
//! immediate promotion.
//!
//! Two complementary checks:
//!
//! * **Concurrent protocol check** ([`variants`], run under the
//!   interleaving engine): a capacity-2 mini shard — entries and
//!   counters as hashed ghost state behind a [`ModelMutex`], residency
//!   mirrored in a real [`ProbeMirror`] — is driven by one thread taking
//!   validated optimistic hits (deferred tally + touch buffer, drained
//!   later under the lock with residency verification, exactly the
//!   `BufferPool` replay contract) while another faults a new page in
//!   and evicts. Invariants at every quiescent point: counter
//!   conservation (`deferred + locked hits + misses == accesses`),
//!   capacity, entry uniqueness, and mirror/table agreement. The mutant
//!   replays promotions *without* verifying residency, resurrecting
//!   evicted pages.
//!
//! * **Exhaustive drain-point equivalence** ([`equivalence_exhaustive`],
//!   deterministic): every access sequence over a small page set, at
//!   several capacities and both eviction policies, with `flush_session`
//!   forced at every combination of positions, must classify identically
//!   to the immediate-promotion [`ReferencePool`] — the "equivalent
//!   under deferred promotion" relaxation documented in `buffer.rs`,
//!   checked over the whole bounded space instead of sampled.

use std::sync::Arc;

use rdb_storage::mirror::{ProbeMirror, MIRROR_VACANT};
use rdb_storage::touch::{DeferredCounters, PendingTally};
use rdb_storage::{
    shared_meter, BufferPool, CostConfig, EvictionPolicy, FileId, PageId, ReferencePool,
};

use super::{BoxProgram, Variant};
use crate::engine::spawn;
use crate::sync::{Ghost, ModelMutex, ModelSync};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bug {
    /// The real replay contract: a drained touch promotes only an entry
    /// still resident.
    None,
    /// Drain replays touches as unconditional MRU inserts, resurrecting
    /// evicted pages.
    PromoteUnverified,
}

/// Shard capacity under check.
const CAP: usize = 2;
/// Mirror table length.
const TABLE: usize = 4;
/// Accesses the workload performs (the conserved access count).
const ACCESSES: u64 = 2;

/// The mini shard: MRU-ordered `(key, slot)` entries plus locked-path
/// counters. Ghost-held so its content participates in pruning.
#[derive(Debug, Default, Hash)]
struct MiniShard {
    entries: Vec<(u64, usize)>,
    locked_hits: u64,
    misses: u64,
}

struct World {
    lock: ModelMutex<()>,
    shard: Ghost<MiniShard>,
    mirror: ProbeMirror<ModelSync>,
    counters: Arc<DeferredCounters<ModelSync>>,
}

/// The locked access path: classify against the authoritative entry
/// list, evicting the LRU entry (mirror vacated inside one writer
/// section with the insert) on a full miss.
fn locked_access(w: &World, key: u64) {
    w.lock.with(|()| {
        let pos = w.shard.with(|sh| sh.entries.iter().position(|e| e.0 == key));
        if let Some(p) = pos {
            w.shard.with(|sh| {
                let e = sh.entries.remove(p);
                sh.entries.insert(0, e);
                sh.locked_hits += 1;
            });
            return;
        }
        let evicted = w.shard.with(|sh| {
            sh.misses += 1;
            if sh.entries.len() == CAP {
                sh.entries.pop()
            } else {
                None
            }
        });
        w.mirror.begin_write();
        if let Some((_, vslot)) = evicted {
            w.mirror.set(vslot, MIRROR_VACANT);
        }
        let slot = w.shard.with(|sh| {
            (0..TABLE)
                .find(|i| !sh.entries.iter().any(|e| e.1 == *i))
                .expect("shard smaller than table")
        });
        w.mirror.set(slot, key);
        w.mirror.end_write();
        w.shard.with(|sh| sh.entries.insert(0, (key, slot)));
    });
}

/// The optimistic access path: a validated resident probe defers the
/// hit (tally + touch buffer); anything else falls back to the lock.
fn optimistic_access(
    w: &World,
    key: u64,
    tally: &mut PendingTally<ModelSync>,
    touches: &mut Vec<(u64, usize)>,
) {
    match w.mirror.probe_resident(key) {
        Some((true, slot)) => {
            tally.record();
            touches.push((key, slot as usize));
        }
        _ => locked_access(w, key),
    }
}

/// Drains a thread's deferred state under the lock: absorb the tally,
/// replay touches as promotions — verified against residency for the
/// real protocol, blindly for the mutant.
fn drain(w: &World, bug: Bug, tally: &mut PendingTally<ModelSync>, touches: &mut Vec<(u64, usize)>) {
    w.lock.with(|()| {
        tally.absorb();
        for (key, slot) in touches.drain(..) {
            w.shard.with(|sh| match bug {
                Bug::None => {
                    if let Some(p) = sh.entries.iter().position(|e| e.0 == key) {
                        let e = sh.entries.remove(p);
                        sh.entries.insert(0, e);
                    }
                }
                Bug::PromoteUnverified => sh.entries.insert(0, (key, slot)),
            });
        }
    });
}

fn program(bug: Bug) {
    let mirror = ProbeMirror::<ModelSync>::new(TABLE);
    // Keys: k1 is probed optimistically, so it must sit at its home
    // slot; k2 takes any other slot; k3 is the faulting page.
    let k1 = 1u64;
    let (k2, k3) = (2u64, 3u64);
    let h1 = mirror.home_slot(k1);
    let s2 = (h1 + 2) & (TABLE - 1);

    let w = Arc::new(World {
        lock: ModelMutex::new(()),
        shard: Ghost::new(MiniShard::default()),
        mirror,
        counters: Arc::new(DeferredCounters::default()),
    });

    // Seed: k2 at MRU, k1 at LRU (the eviction victim while its
    // promotion is still deferred), shard full.
    w.mirror.begin_write();
    w.mirror.set(h1, k1);
    w.mirror.set(s2, k2);
    w.mirror.end_write();
    w.shard
        .with(|sh| sh.entries = vec![(k2, s2), (k1, h1)]);

    // Thread 1: optimistic hit on k1, then drain (the deferred
    // promotion racing the eviction below).
    let w1 = Arc::clone(&w);
    let t1 = spawn(move || {
        let mut tally = PendingTally::new(Arc::clone(&w1.counters));
        let mut touches = Vec::new();
        optimistic_access(&w1, k1, &mut tally, &mut touches);
        drain(&w1, bug, &mut tally, &mut touches);
    });

    // Thread 2: fault k3 in — a full miss that evicts the LRU entry.
    let w2 = Arc::clone(&w);
    let t2 = spawn(move || locked_access(&w2, k3));

    t1.join();
    t2.join();

    // Quiescent invariants.
    let deferred = w.counters.total();
    w.shard.with(|sh| {
        assert!(sh.entries.len() <= CAP, "capacity exceeded: {:?}", sh.entries);
        assert_eq!(
            deferred + sh.locked_hits + sh.misses,
            ACCESSES,
            "classification not conserved"
        );
        for i in 0..sh.entries.len() {
            for j in i + 1..sh.entries.len() {
                assert_ne!(sh.entries[i].0, sh.entries[j].0, "duplicate entry");
                assert_ne!(sh.entries[i].1, sh.entries[j].1, "slot collision");
            }
        }
    });
    for i in 0..TABLE {
        let k = w.mirror.peek(i);
        w.shard.with(|sh| {
            let entry = sh.entries.iter().find(|e| e.1 == i).map(|e| e.0);
            if k == MIRROR_VACANT {
                assert_eq!(entry, None, "mirror slot {i} vacant but table occupied");
            } else {
                assert_eq!(entry, Some(k), "mirror slot {i} disagrees with table");
            }
        });
    }
}

/// The harness's program variants: the real protocol plus its mutant.
pub fn variants() -> Vec<Variant> {
    fn make(bug: Bug) -> BoxProgram {
        Box::new(move || program(bug))
    }
    vec![
        Variant {
            name: "real",
            about: "drain verifies residency before promoting",
            expect_caught: false,
            make: Box::new(|| make(Bug::None)),
        },
        Variant {
            name: "promote-unverified",
            about: "drain re-inserts touched keys blindly",
            expect_caught: true,
            make: Box::new(|| make(Bug::PromoteUnverified)),
        },
    ]
}

/// Tallies from the deterministic sweep, for reporting.
#[derive(Debug, Default, Clone, Copy)]
pub struct EquivStats {
    /// `(sequence, drain mask, capacity, policy)` programs executed.
    pub programs: u64,
    /// Individual page accesses classified.
    pub accesses: u64,
}

/// The first divergence the deterministic sweep found, with the full
/// program coordinates needed to reproduce it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Human-readable description: program coordinates and the two
    /// classifications that disagreed.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.detail)
    }
}

impl std::error::Error for Divergence {}

/// Exhaustive drain-point equivalence on the *real* [`BufferPool`]:
/// every access sequence of length 1..=`max_len` over `pages` pages,
/// under every drain mask (forcing `flush_session` after each chosen
/// position), at each capacity and policy, must classify exactly like
/// the immediate-promotion [`ReferencePool`]. Returns the sweep size, or
/// the first divergence.
pub fn equivalence_exhaustive(pages: u32, max_len: u32) -> Result<EquivStats, Divergence> {
    let mut stats = EquivStats::default();
    for policy in [EvictionPolicy::Lru, EvictionPolicy::Midpoint] {
        for capacity in 1..=3usize {
            for len in 1..=max_len {
                let seqs = u64::from(pages).pow(len);
                for seq_code in 0..seqs {
                    for drain_mask in 0u32..(1 << len) {
                        stats.programs += 1;
                        run_one(
                            policy, capacity, pages, len, seq_code, drain_mask, &mut stats,
                        )?;
                    }
                }
            }
        }
    }
    Ok(stats)
}

fn divergence(detail: String) -> Divergence {
    Divergence { detail }
}

fn run_one(
    policy: EvictionPolicy,
    capacity: usize,
    pages: u32,
    len: u32,
    seq_code: u64,
    drain_mask: u32,
    stats: &mut EquivStats,
) -> Result<(), Divergence> {
    let cost_pool = shared_meter(CostConfig::default());
    let cost_ref = shared_meter(CostConfig::default());
    let pool = BufferPool::with_policy(capacity, 1, policy, cost_pool.clone());
    let mut reference = ReferencePool::with_policy(capacity, policy, cost_ref);
    let mut code = seq_code;
    for pos in 0..len {
        let page = PageId::new(FileId(7), (code % u64::from(pages)) as u32);
        code /= u64::from(pages);
        stats.accesses += 1;
        let got = pool.access(page, &cost_pool);
        let want = reference.access(page);
        if got != want {
            return Err(divergence(format!(
                "divergence: policy {policy:?} cap {capacity} seq {seq_code} len {len} \
                 mask {drain_mask:#b} pos {pos} page {page:?}: pool {got:?} vs reference {want:?}"
            )));
        }
        if drain_mask & (1 << pos) != 0 {
            pool.flush_session();
        }
    }
    pool.flush_session();
    if pool.hits() != reference.hits() || pool.misses() != reference.misses() {
        return Err(divergence(format!(
            "counter divergence: policy {policy:?} cap {capacity} seq {seq_code} mask \
             {drain_mask:#b}: pool {}h/{}m vs reference {}h/{}m",
            pool.hits(),
            pool.misses(),
            reference.hits(),
            reference.misses()
        )));
    }
    for p in 0..pages {
        let page = PageId::new(FileId(7), p);
        if pool.contains(page) != reference.contains(page) {
            return Err(divergence(format!(
                "residency divergence on {page:?}: policy {policy:?} cap {capacity} \
                 seq {seq_code} mask {drain_mask:#b}"
            )));
        }
    }
    Ok(())
}
