//! Harness (a): a validated [`ProbeMirror`] walk never observes a torn
//! key set.
//!
//! Setup: a 4-slot mirror holding key `A` at its home slot. A writer —
//! the shard-mutex holder in production — displaces `A` with a colliding
//! key `B` and moves `A` one slot down the probe chain, the exact key
//! movement an eviction-plus-insert performs. `A` is logically resident
//! throughout, so any **validated** probe for `A` must report it
//! resident; observing the mid-move hole (`B` at home, vacancy behind
//! it) is a torn read. The checker explores every interleaving of the
//! reader's walk against the writer's stores, plus every stale value a
//! relaxed load may return.

use std::sync::Arc;

use rdb_storage::mirror::{ProbeMirror, MIRROR_VACANT};

use super::{BoxProgram, Variant};
use crate::engine::spawn;
use crate::sync::ModelSync;

/// Seeded bugs for the mutant ratchet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bug {
    /// The real protocol: moves bracketed by `begin_write`/`end_write`.
    None,
    /// Writer moves keys with no writer section at all: the version
    /// never changes, so readers validate torn walks.
    NoWriterSection,
    /// Writer closes the section *before* moving keys: the new even
    /// version is published while the chain is still mid-move.
    PublishBeforeMove,
}

/// Two distinct keys sharing a home slot on a mirror of `len` slots —
/// the collision the probe chain needs.
fn colliding_pair(mirror: &ProbeMirror<ModelSync>) -> (u64, u64) {
    let a = 1u64;
    let home = mirror.home_slot(a);
    let mut b = 2u64;
    while mirror.home_slot(b) != home || b == MIRROR_VACANT {
        b += 1;
    }
    (a, b)
}

fn program(bug: Bug) {
    let mirror = Arc::new(ProbeMirror::<ModelSync>::new(4));
    let (key_a, key_b) = colliding_pair(&mirror);
    let home = mirror.home_slot(key_a);
    let next = (home + 1) & 3;

    // Seed: A resident at its home slot (single-threaded, but keep the
    // writer discipline).
    mirror.begin_write();
    mirror.set(home, key_a);
    mirror.end_write();

    let m = Arc::clone(&mirror);
    let writer = spawn(move || match bug {
        Bug::None => {
            m.begin_write();
            m.set(home, key_b);
            m.set(next, key_a);
            m.end_write();
        }
        Bug::NoWriterSection => {
            m.set(home, key_b);
            m.set(next, key_a);
        }
        Bug::PublishBeforeMove => {
            m.begin_write();
            m.end_write();
            m.set(home, key_b);
            m.set(next, key_a);
        }
    });

    // Reader: A is logically resident the whole time, so a walk that
    // validates and still reports it absent observed a torn chain.
    for _ in 0..2 {
        if let Some((resident, _slot)) = mirror.probe_resident(key_a) {
            assert!(resident, "validated probe lost a resident key (torn mirror read)");
        }
    }
    writer.join();
}

/// The harness's program variants: the real protocol plus its mutants.
pub fn variants() -> Vec<Variant> {
    fn make(bug: Bug) -> BoxProgram {
        Box::new(move || program(bug))
    }
    vec![
        Variant {
            name: "real",
            about: "begin_write/end_write-bracketed key moves",
            expect_caught: false,
            make: Box::new(|| make(Bug::None)),
        },
        Variant {
            name: "no-writer-section",
            about: "keys move with the version untouched",
            expect_caught: true,
            make: Box::new(|| make(Bug::NoWriterSection)),
        },
        Variant {
            name: "publish-before-move",
            about: "even version published before the keys move",
            expect_caught: true,
            make: Box::new(|| make(Bug::PublishBeforeMove)),
        },
    ]
}
