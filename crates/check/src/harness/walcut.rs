//! Harness (d): the WAL tail never publishes an LSN before its record is
//! framed.
//!
//! [`WalTail`] is the `FilePageStore` protocol piece: appenders allocate
//! LSNs and frame records under the store's inner mutex, then publish
//! the framed frontier with a release `fetch_max`; `checkpoint_done`
//! trusts an acquire load of that frontier. Here framing is a ghost
//! event (a set of framed LSNs updated at the point the real code
//! completes its `write_all`), segment rotation included: one appender
//! rotates to a fresh ghost segment before framing, like the real
//! rotation path. The reader plays `checkpoint_done`: whatever frontier
//! it loads, every LSN at or below it must already be framed.

use std::sync::Arc;

use rdb_storage::lsn::WalTail;

use super::{BoxProgram, Variant};
use crate::engine::{spawn, yield_now};
use crate::sync::{Ghost, ModelMutex, ModelSync};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bug {
    /// The real protocol: frame, then publish.
    None,
    /// Publish the LSN before the frame hits the segment.
    PublishBeforeFrame,
}

/// Ghost image of the WAL: which LSNs are framed, and in which segment.
#[derive(Debug, Default, Hash)]
struct GhostWal {
    /// LSNs whose frames are fully written, in framing order.
    framed: Vec<u64>,
    /// Segment rotations performed.
    segments: u64,
}

/// First LSN handed out (mirrors `WalTail::new(1)`).
const FIRST_LSN: u64 = 1;

/// Models the frame `write_all`: real work taking real time (a
/// scheduling point other threads may run across), then the ghost record
/// of the completed frame.
fn frame(ghost: &Ghost<GhostWal>, lsn: u64) {
    yield_now();
    ghost.with(|g| g.framed.push(lsn));
}

fn append(
    tail: &WalTail<ModelSync>,
    inner: &ModelMutex<()>,
    ghost: &Ghost<GhostWal>,
    bug: Bug,
    rotate: bool,
) {
    inner.with(|()| {
        let lsn = tail.allocate();
        if rotate {
            ghost.with(|g| g.segments += 1);
        }
        match bug {
            Bug::None => {
                frame(ghost, lsn);
                tail.publish(lsn);
            }
            Bug::PublishBeforeFrame => {
                tail.publish(lsn);
                frame(ghost, lsn);
            }
        }
    });
}

fn program(bug: Bug) {
    let tail = Arc::new(WalTail::<ModelSync>::new(FIRST_LSN));
    let inner = Arc::new(ModelMutex::new(()));
    let ghost = Ghost::new(GhostWal::default());

    let (t1, m1, g1) = (Arc::clone(&tail), Arc::clone(&inner), ghost.clone());
    let a1 = spawn(move || append(&t1, &m1, &g1, bug, false));
    let (t2, m2, g2) = (Arc::clone(&tail), Arc::clone(&inner), ghost.clone());
    let a2 = spawn(move || append(&t2, &m2, &g2, bug, true));

    // The checkpoint path: the frontier it loads bounds what it may
    // truncate, so everything at or below it must already be framed.
    let (t3, g3) = (Arc::clone(&tail), ghost.clone());
    let reader = spawn(move || {
        let p = t3.published();
        g3.with(|g| {
            for lsn in FIRST_LSN..=p {
                assert!(
                    g.framed.contains(&lsn),
                    "LSN {lsn} published at frontier {p} before its frame was written"
                );
            }
        });
        // Acquire loads of a fetch_max frontier are monotone.
        let p2 = t3.published();
        assert!(p2 >= p, "published frontier went backwards: {p} -> {p2}");
    });

    a1.join();
    a2.join();
    reader.join();
    assert_eq!(tail.published(), FIRST_LSN + 1, "final frontier wrong");
    ghost.with(|g| {
        let mut sorted = g.framed.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![FIRST_LSN, FIRST_LSN + 1], "framed set wrong");
        assert_eq!(g.segments, 1, "rotation count wrong");
    });
}

/// The harness's program variants: the real protocol plus its mutant.
pub fn variants() -> Vec<Variant> {
    fn make(bug: Bug) -> BoxProgram {
        Box::new(move || program(bug))
    }
    vec![
        Variant {
            name: "real",
            about: "frame under the mutex, then release-publish",
            expect_caught: false,
            make: Box::new(|| make(Bug::None)),
        },
        Variant {
            name: "publish-before-frame",
            about: "LSN published before its frame is written",
            expect_caught: true,
            make: Box::new(|| make(Bug::PublishBeforeFrame)),
        },
    ]
}
