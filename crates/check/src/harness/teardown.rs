//! Harness (c): the [`PendingTally`] drop guard loses no counters on any
//! exit interleaving.
//!
//! Threads record deferred hits into per-thread tallies and exit —
//! some absorbing mid-way, some relying entirely on the `Drop` guard,
//! exactly what thread teardown does to the thread-local touch buffers.
//! A concurrent reader checks the shared tally is monotone and never
//! overshoots; after all joins the total must equal every hit recorded
//! on every path: the `hits + misses == accesses` conservation property.

use std::sync::Arc;

use rdb_storage::touch::{DeferredCounters, PendingTally};

use super::{BoxProgram, Variant};
use crate::engine::spawn;
use crate::sync::ModelSync;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bug {
    /// The real protocol: every exit path drops (and thus absorbs) the
    /// tally.
    None,
    /// One exit path leaks its tally (`mem::forget`), dropping two
    /// recorded hits on the floor.
    ForgetTally,
}

/// Hits recorded across all threads; the conserved quantity.
const TOTAL_HITS: u64 = 4;

fn program(bug: Bug) {
    let counters = Arc::new(DeferredCounters::<ModelSync>::default());

    let c1 = Arc::clone(&counters);
    let w1 = spawn(move || {
        let mut tally = PendingTally::new(c1);
        tally.record();
        tally.record();
        match bug {
            // Exit with pending count: only the drop guard stands
            // between these two hits and oblivion.
            Bug::None => drop(tally),
            Bug::ForgetTally => std::mem::forget(tally),
        }
    });

    let c2 = Arc::clone(&counters);
    let w2 = spawn(move || {
        let mut tally = PendingTally::new(c2);
        tally.record();
        tally.absorb();
        tally.record();
        // Implicit drop: the second hit rides the guard.
    });

    let c3 = Arc::clone(&counters);
    let reader = spawn(move || {
        let first = c3.total();
        let second = c3.total();
        assert!(second >= first, "shared tally went backwards");
        assert!(second <= TOTAL_HITS, "shared tally overshot");
    });

    w1.join();
    w2.join();
    reader.join();
    assert_eq!(
        counters.total(),
        TOTAL_HITS,
        "deferred hits lost across thread teardown"
    );
}

/// The harness's program variants: the real protocol plus its mutant.
pub fn variants() -> Vec<Variant> {
    fn make(bug: Bug) -> BoxProgram {
        Box::new(move || program(bug))
    }
    vec![
        Variant {
            name: "real",
            about: "drop-guard absorption on every exit path",
            expect_caught: false,
            make: Box::new(|| make(Bug::None)),
        },
        Variant {
            name: "forget-tally",
            about: "one exit path leaks its tally",
            expect_caught: true,
            make: Box::new(|| make(Bug::ForgetTally)),
        },
    ]
}
