//! Protocol harnesses: each exhaustively verifies one storage invariant
//! under the interleaving engine, and ships seeded-bug mutants the
//! checker must catch — a mutant the exploration fails to refute is
//! itself a failure (the mutant ratchet).

pub mod promotion;
pub mod seqlock;
pub mod teardown;
pub mod walcut;

use crate::engine::{explore, Config, Outcome};

/// A runnable program instance (the engine re-executes it per schedule).
pub type BoxProgram = Box<dyn Fn() + Send + Sync>;

/// One program variant of a harness: the real protocol, or a seeded bug.
pub struct Variant {
    /// Variant name (`real` or the mutant's name).
    pub name: &'static str,
    /// One-line description.
    pub about: &'static str,
    /// True for mutants: exploration MUST find a failing schedule.
    pub expect_caught: bool,
    /// Builds a fresh program instance.
    pub make: Box<dyn Fn() -> BoxProgram + Send + Sync>,
}

/// A named harness: one invariant, several variants.
pub struct Harness {
    /// Harness name, as accepted by `--harness`.
    pub name: &'static str,
    /// The invariant under check.
    pub about: &'static str,
    /// `real` first, then the mutants.
    pub variants: Vec<Variant>,
}

/// Every registered harness, in reporting order.
pub fn all() -> Vec<Harness> {
    vec![
        Harness {
            name: "seqlock",
            about: "validated mirror probes never observe a torn key set",
            variants: seqlock::variants(),
        },
        Harness {
            name: "promotion",
            about: "deferred promotion is equivalent to immediate promotion",
            variants: promotion::variants(),
        },
        Harness {
            name: "teardown",
            about: "tally drop guards conserve counters on every exit path",
            variants: teardown::variants(),
        },
        Harness {
            name: "walcut",
            about: "no LSN is published before its WAL record is framed",
            variants: walcut::variants(),
        },
    ]
}

/// Outcome of checking one variant, judged against its expectation.
#[derive(Debug, Clone)]
pub struct VariantReport {
    /// `harness/variant` label.
    pub label: String,
    /// What exploration returned.
    pub outcome: Outcome,
    /// True when the outcome matches the variant's expectation (real
    /// code passes; mutants are caught).
    pub ok: bool,
}

/// Explores one variant and judges it: real variants must pass every
/// schedule, mutants must be refuted.
pub fn check_variant(cfg: &Config, harness: &str, v: &Variant) -> VariantReport {
    let outcome = explore(cfg, (v.make)());
    let ok = if v.expect_caught {
        matches!(outcome, Outcome::Fail(_))
    } else {
        outcome.passed()
    };
    VariantReport {
        label: format!("{harness}/{}", v.name),
        outcome,
        ok,
    }
}
