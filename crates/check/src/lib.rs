//! # rdb-check
//!
//! A dependency-free, loom-style exhaustive interleaving checker for the
//! lock-free protocols in `rdb-storage`.
//!
//! The engine runs a bounded concurrent *program* (2–3 virtual threads)
//! once per schedule, enumerating by depth-first search every
//! interleaving of its scheduling points — modeled atomic operations,
//! fences, mutex acquisitions — and, for relaxed loads, every value the
//! C++11-style per-cell modification order permits. State-hash pruning
//! collapses schedules that reconverge to an identical modeled state.
//!
//! Storage protocols come in unchanged: they are generic over
//! [`rdb_storage::SyncFacade`], so the same seqlock / deferred-touch /
//! WAL-tail code that runs in production under
//! [`rdb_storage::RealSync`] runs here under [`ModelSync`].
//!
//! Harnesses (see [`harness`]) assert the four protocol invariants from
//! the roadmap — torn-read freedom, promotion equivalence, teardown
//! conservation, and WAL publication order — and each ships a seeded-bug
//! mutant the checker must catch; a missed mutant fails the run.

pub mod engine;
pub mod harness;
pub mod sync;

pub use engine::{
    explore, parse_schedule, replay, spawn, Config, FailReport, Outcome, RunReport,
};
pub use sync::{Ghost, ModelMutex, ModelSync, ModelWord};
