//! Property-based tests of the selectivity-distribution algebra: the
//! invariants of Section 2 must hold for *arbitrary* operand shapes and
//! correlation assumptions, not just the figures' inputs.

use proptest::prelude::*;
use rdb_dist::ops::and_selectivity;
use rdb_dist::{and, not, or, Correlation, Pdf};

fn arb_pdf() -> impl Strategy<Value = Pdf> {
    prop_oneof![
        Just(Pdf::uniform()),
        (0.02f64..0.98, 0.003f64..0.2).prop_map(|(m, e)| Pdf::bell(m, e)),
        (0.0f64..1.0).prop_map(Pdf::point),
        prop::collection::vec(0.0f64..1.0, 1..40).prop_map(|s| Pdf::from_samples(&s)),
    ]
}

fn arb_corr() -> impl Strategy<Value = Correlation> {
    prop_oneof![
        Just(Correlation::Unknown),
        (-1.0f64..=1.0).prop_map(Correlation::Exact),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The combination formula stays inside its Fréchet bounds for every
    /// correlation: max(0, sx+sy−1) ≤ s ≤ min(sx, sy).
    #[test]
    fn and_selectivity_respects_frechet_bounds(
        sx in 0.0f64..=1.0,
        sy in 0.0f64..=1.0,
        c in -1.0f64..=1.0,
    ) {
        let s = and_selectivity(sx, sy, c);
        let lower = (sx + sy - 1.0).max(0.0);
        let upper = sx.min(sy);
        prop_assert!(s >= lower - 1e-12 && s <= upper + 1e-12, "{s} outside [{lower},{upper}]");
    }

    /// Every operator output is a normalized distribution.
    #[test]
    fn operators_preserve_mass(x in arb_pdf(), y in arb_pdf(), corr in arb_corr()) {
        for z in [and(&x, &y, corr), or(&x, &y, corr), not(&x)] {
            prop_assert!((z.total_mass() - 1.0).abs() < 1e-9);
            prop_assert!((0..z.bins()).all(|i| z.weight(i) >= -1e-12));
        }
    }

    /// AND can only shrink the mean below min of the operand means' upper
    /// bound; OR can only grow it symmetrically (De Morgan).
    #[test]
    fn and_or_move_means_the_right_way(x in arb_pdf(), y in arb_pdf(), corr in arb_corr()) {
        let a = and(&x, &y, corr);
        let o = or(&x, &y, corr);
        prop_assert!(a.mean() <= x.mean().min(y.mean()) + 0.02, "AND mean too high");
        prop_assert!(o.mean() >= x.mean().max(y.mean()) - 0.02, "OR mean too low");
    }

    /// De Morgan duality holds pointwise for every shape and correlation.
    #[test]
    fn de_morgan_holds(x in arb_pdf(), y in arb_pdf(), corr in arb_corr()) {
        let lhs = or(&x, &y, corr);
        let rhs = not(&and(&not(&x), &not(&y), corr));
        for i in 0..lhs.bins() {
            prop_assert!((lhs.weight(i) - rhs.weight(i)).abs() < 1e-9);
        }
    }

    /// NOT is a mean-flipping involution.
    #[test]
    fn not_is_involution(x in arb_pdf()) {
        let back = not(&not(&x));
        for i in 0..x.bins() {
            prop_assert!((back.weight(i) - x.weight(i)).abs() < 1e-12);
        }
        prop_assert!((not(&x).mean() - (1.0 - x.mean())).abs() < 1e-9);
    }

    /// Monotonicity in the correlation parameter: higher assumed
    /// correlation never lowers the AND mean.
    #[test]
    fn and_mean_monotone_in_correlation(x in arb_pdf(), y in arb_pdf()) {
        let mut prev = f64::NEG_INFINITY;
        for c in [-1.0, -0.5, 0.0, 0.5, 1.0] {
            let m = and(&x, &y, Correlation::Exact(c)).mean();
            prop_assert!(m >= prev - 1e-9, "mean decreased at c={c}");
            prev = m;
        }
    }

    /// Quantiles are monotone and consistent with mass_below.
    #[test]
    fn quantiles_consistent(x in arb_pdf(), p in 0.05f64..0.95) {
        let q = x.quantile(p);
        prop_assert!((0.0..=1.0).contains(&q));
        prop_assert!(x.mass_below(q) >= p - 1e-9);
        let q2 = x.quantile((p + 0.04).min(1.0));
        prop_assert!(q2 >= q);
    }
}
