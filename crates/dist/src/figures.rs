//! Data series for the paper's Figure 2.1 and Figure 2.2.
//!
//! Each panel is a labelled distribution; the `fig2_1`/`fig2_2` binaries in
//! `rdb-bench` print them as aligned series, and the integration tests
//! assert the qualitative shape claims the figures illustrate.

use crate::ops::Correlation;
use crate::pdf::Pdf;
use crate::shape::ShapeSummary;
use crate::spec::apply_spec;

/// One labelled distribution of a figure.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Figure label, e.g. `"&X (c=+1)"`.
    pub label: String,
    /// The transformed distribution.
    pub pdf: Pdf,
}

impl Panel {
    /// Shape summary of the panel's distribution.
    pub fn summary(&self) -> ShapeSummary {
        ShapeSummary::of(&self.pdf)
    }
}

fn corr_label(corr: Correlation) -> String {
    match corr {
        Correlation::Exact(c) => format!("c={c:+.1}"),
        Correlation::Unknown => "unknown".to_owned(),
    }
}

/// Figure 2.1: transformations of the **uniform** selectivity distribution.
///
/// The paper shows AND/OR chains under correlation assumptions +1, 0, −0.9
/// and "unknown". Returns every (spec × correlation) panel in that grid.
pub fn figure_2_1() -> Vec<Panel> {
    let base = Pdf::uniform();
    let correlations = [
        Correlation::Exact(1.0),
        Correlation::Exact(0.0),
        Correlation::Exact(-0.9),
        Correlation::Unknown,
    ];
    let specs = ["&X", "&&X", "&&&X", "|X", "||X", "&|X", "|&X"];
    let mut panels = Vec::new();
    for spec in specs {
        for corr in correlations {
            panels.push(Panel {
                label: format!("{spec} ({})", corr_label(corr)),
                pdf: apply_spec(spec, &base, corr),
            });
        }
    }
    panels
}

/// Figure 2.2: degradation of certainty — AND/OR chains with unknown
/// correlation applied to an estimate bell with mean `m = 0.2` and error
/// `e = 0.005`, exactly the parameters quoted in the figure caption.
pub fn figure_2_2() -> Vec<Panel> {
    figure_2_2_with(0.2, 0.005)
}

/// Figure 2.2 engine with configurable bell parameters.
pub fn figure_2_2_with(m: f64, e: f64) -> Vec<Panel> {
    let base = Pdf::bell(m, e);
    let specs = [
        "X", "&X", "|X", "||X", "|||X", "&&X", "|||||&X", "&&&X",
    ];
    let mut panels = vec![];
    for spec in specs {
        panels.push(Panel {
            label: spec.to_owned(),
            pdf: apply_spec(spec, &base, Correlation::Unknown),
        });
    }
    panels
}

/// Mixed-operand panels: AND/OR of predicates with **different**
/// distributions. Section 2: "The effect of ANDing/ORing of predicates
/// with different distributions is largely the same as in the cases
/// above." Returns (label, result) pairs combining a uniform, a tight
/// bell, and an already-L-shaped operand.
pub fn mixed_operand_panels() -> Vec<Panel> {
    use crate::ops::{and, or};
    let uniform = Pdf::uniform();
    let bell = Pdf::bell(0.3, 0.01);
    let l_shape = apply_spec("&&X", &uniform, Correlation::Unknown);
    vec![
        Panel {
            label: "bell & uniform".into(),
            pdf: and(&bell, &uniform, Correlation::Unknown),
        },
        Panel {
            label: "bell | uniform".into(),
            pdf: or(&bell, &uniform, Correlation::Unknown),
        },
        Panel {
            label: "bell & L-shape".into(),
            pdf: and(&bell, &l_shape, Correlation::Unknown),
        },
        Panel {
            label: "uniform & L-shape".into(),
            pdf: and(&uniform, &l_shape, Correlation::Unknown),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(panels: &'a [Panel], label: &str) -> &'a Panel {
        panels
            .iter()
            .find(|p| p.label == label)
            .unwrap_or_else(|| panic!("panel {label:?} missing"))
    }

    #[test]
    fn figure_2_1_has_all_grid_panels() {
        let panels = figure_2_1();
        assert_eq!(panels.len(), 7 * 4);
        assert!(panels.iter().all(|p| (p.pdf.total_mass() - 1.0).abs() < 1e-9));
    }

    #[test]
    fn fig2_1_skewness_grows_with_operator_count() {
        let panels = figure_2_1();
        let s1 = find(&panels, "&X (unknown)").summary().skewness;
        let s2 = find(&panels, "&&X (unknown)").summary().skewness;
        let s3 = find(&panels, "&&&X (unknown)").summary().skewness;
        assert!(
            s1 < s2 && s2 < s3,
            "skewness must increase with ANDs: {s1} {s2} {s3}"
        );
    }

    #[test]
    fn fig2_1_skewness_grows_as_correlation_decreases() {
        let panels = figure_2_1();
        let plus = find(&panels, "&X (c=+1.0)").summary().skewness;
        let zero = find(&panels, "&X (c=+0.0)").summary().skewness;
        let neg = find(&panels, "&X (c=-0.9)").summary().skewness;
        assert!(
            plus < zero && zero < neg,
            "skewness by correlation: {plus} {zero} {neg}"
        );
    }

    #[test]
    fn fig2_1_balanced_mix_restores_symmetry() {
        let panels = figure_2_1();
        for label in ["&|X (unknown)", "|&X (unknown)"] {
            let s = find(&panels, label).summary();
            assert!(
                (s.mean - 0.5).abs() < 0.08,
                "{label} mean {} should be near 0.5",
                s.mean
            );
            assert!(s.skewness.abs() < 1.0, "{label} skew {}", s.skewness);
        }
    }

    #[test]
    fn fig2_2_single_op_nullifies_relative_precision() {
        // Paper statement (1): one AND or OR instantly grows the spread to
        // the order of the distance from the interval end (0.2), destroying
        // the original e=0.005 precision.
        let panels = figure_2_2();
        let base = find(&panels, "X").summary().std_dev;
        let anded = find(&panels, "&X").summary().std_dev;
        let ored = find(&panels, "|X").summary().std_dev;
        assert!(base < 0.01);
        assert!(anded > 10.0 * base, "&X spread {anded} vs base {base}");
        assert!(ored > 10.0 * base, "|X spread {ored} vs base {base}");
    }

    #[test]
    fn fig2_2_ors_spread_then_l_shape() {
        // Paper statement (2)/(3): repeated ORing spreads the bell toward
        // the centre and eventually produces an L-shape at the right end.
        let panels = figure_2_2();
        let or1 = find(&panels, "|X").summary();
        let or2 = find(&panels, "||X").summary();
        let or3 = find(&panels, "|||X").summary();
        assert!(
            or1.mean < or2.mean && or2.mean < or3.mean,
            "ORs keep pushing mass right: {} {} {}",
            or1.mean,
            or2.mean,
            or3.mean
        );
        assert!(
            or1.std_dev < or2.std_dev,
            "each OR roughly doubles the spread while the bell travels"
        );
        // Once past the centre, further ORs pile mass on the s=1 end.
        let long = find(&panels, "|||||&X").summary();
        assert!(long.mass_high > 0.3, "L-shape at one forming: {long:?}");
        assert!(long.skewness < -0.5);
    }

    #[test]
    fn mixed_operands_behave_like_same_distribution_cases() {
        // Paper: different operand distributions change nothing essential:
        // ANDing a precise bell with anything uncertain destroys the
        // precision, and any AND with an L-shape stays L-shaped.
        let panels = mixed_operand_panels();
        let get = |label: &str| {
            panels
                .iter()
                .find(|p| p.label == label)
                .unwrap_or_else(|| panic!("{label}"))
                .summary()
        };
        let band = get("bell & uniform");
        assert!(band.std_dev > 0.05, "precision destroyed: {band:?}");
        assert!(band.mean < 0.3, "AND lowers the mean");
        let bor = get("bell | uniform");
        assert!(bor.mean > 0.3, "OR raises the mean");
        assert!(get("bell & L-shape").is_l_shaped_at_zero());
        assert!(get("uniform & L-shape").is_l_shaped_at_zero());
    }

    #[test]
    fn fig2_2_ands_on_low_bell_make_l_shape_at_zero() {
        let panels = figure_2_2();
        let s = find(&panels, "&&&X").summary();
        assert!(
            s.is_l_shaped_at_zero(),
            "repeated ANDs on a 0.2-bell must concentrate at zero: {s:?}"
        );
    }
}
