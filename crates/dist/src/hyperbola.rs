//! Truncated-hyperbola approximation of skewed selectivity distributions.
//!
//! Paper, Section 2: "All asymmetrical transformations of uniform
//! distribution are well approximated (but not fully matched) by truncated
//! hyperbolas. For instance, truncated hyperbolas fit &X with relative
//! error 1/4, &&X with error 1/7, &&&X with error 1/23. Here relative
//! error of hyperbola h_X(s) fitted to p_X(s) is
//! max_s|p_X(s)−h_X(s)| / (max_s p_X(s) − min_s p_X(s))."
//!
//! The family fitted here is `h(s) = a / (s + b)` on `[0,1]`, mass-
//! normalized (so `a = 1 / ln((1+b)/b)`), optionally mirrored for
//! OR-dominated shapes whose legs hug `s = 1`.

use crate::pdf::Pdf;

/// A fitted truncated hyperbola.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperbolaFit {
    /// Scale `a` (determined by mass normalization).
    pub a: f64,
    /// Offset `b > 0`; smaller `b` = more skewed hyperbola.
    pub b: f64,
    /// True if the fit is against the mirrored axis (legs at `s = 1`).
    pub mirrored: bool,
    /// The paper's relative error metric.
    pub rel_error: f64,
}

impl HyperbolaFit {
    /// Density of the fitted hyperbola at selectivity `s`.
    pub fn density(&self, s: f64) -> f64 {
        let x = if self.mirrored { 1.0 - s } else { s };
        self.a / (x + self.b)
    }
}

/// The paper's relative error between a distribution and a candidate
/// hyperbola: `max|p−h| / (max p − min p)` over the grid, with `p` taken
/// as density.
fn relative_error(pdf: &Pdf, a: f64, b: f64, mirrored: bool) -> f64 {
    let n = pdf.bins();
    let mut max_p = f64::MIN;
    let mut min_p = f64::MAX;
    let mut max_diff = 0.0f64;
    for i in 0..n {
        let p = pdf.density(i);
        max_p = max_p.max(p);
        min_p = min_p.min(p);
        let s = pdf.s_at(i);
        let x = if mirrored { 1.0 - s } else { s };
        let h = a / (x + b);
        max_diff = max_diff.max((p - h).abs());
    }
    if max_p - min_p < 1e-12 {
        return max_diff; // flat target: degenerate, report absolute diff
    }
    max_diff / (max_p - min_p)
}

/// Fits a mass-normalized truncated hyperbola to `pdf` by golden-section-
/// refined grid search over `b`, trying both orientations. Returns the
/// better fit.
pub fn fit_hyperbola(pdf: &Pdf) -> HyperbolaFit {
    let mut best = HyperbolaFit {
        a: 1.0,
        b: 1.0,
        mirrored: false,
        rel_error: f64::MAX,
    };
    for mirrored in [false, true] {
        // Log-spaced coarse grid over b, then local refinement.
        let mut candidates: Vec<f64> = (0..60)
            .map(|i| 10f64.powf(-4.0 + 6.0 * i as f64 / 59.0))
            .collect();
        for _round in 0..3 {
            let mut best_b = candidates[0];
            let mut best_err = f64::MAX;
            for &b in &candidates {
                let a = 1.0 / ((1.0 + b) / b).ln();
                let err = relative_error(pdf, a * (pdf.bins() - 1) as f64 / pdf.bins() as f64, b, mirrored);
                if err < best_err {
                    best_err = err;
                    best_b = b;
                }
            }
            if best_err < best.rel_error {
                let a = 1.0 / ((1.0 + best_b) / best_b).ln();
                best = HyperbolaFit {
                    a: a * (pdf.bins() - 1) as f64 / pdf.bins() as f64,
                    b: best_b,
                    mirrored,
                    rel_error: best_err,
                };
            }
            // Refine around the winner.
            candidates = (0..40)
                .map(|i| best_b * 10f64.powf(-0.5 + 1.0 * i as f64 / 39.0))
                .collect();
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{and, or, Correlation};
    use crate::spec::apply_spec;

    #[test]
    fn fit_error_decreases_with_more_ands() {
        // Paper: errors 1/4, 1/7, 1/23 for &X, &&X, &&&X — strictly
        // improving fits as the hyperbola sharpens.
        let u = Pdf::uniform();
        let e1 = fit_hyperbola(&apply_spec("&X", &u, Correlation::Unknown)).rel_error;
        let e2 = fit_hyperbola(&apply_spec("&&X", &u, Correlation::Unknown)).rel_error;
        let e3 = fit_hyperbola(&apply_spec("&&&X", &u, Correlation::Unknown)).rel_error;
        assert!(e1 > e2 && e2 > e3, "errors must decrease: {e1} {e2} {e3}");
        assert!(e1 < 0.5, "&X should already be hyperbola-like: {e1}");
        assert!(e3 < 0.12, "&&&X should fit closely: {e3}");
    }

    #[test]
    fn or_shapes_fit_with_mirrored_hyperbola() {
        let u = Pdf::uniform();
        let x = or(&or(&u, &u, Correlation::Unknown), &or(&u, &u, Correlation::Unknown), Correlation::Unknown);
        let fit = fit_hyperbola(&x);
        assert!(fit.mirrored, "OR-dominated shape hugs s=1");
    }

    #[test]
    fn and_shapes_fit_unmirrored() {
        let u = Pdf::uniform();
        let x = and(&and(&u, &u, Correlation::Unknown), &and(&u, &u, Correlation::Unknown), Correlation::Unknown);
        let fit = fit_hyperbola(&x);
        assert!(!fit.mirrored);
    }

    #[test]
    fn fitted_density_is_positive_and_decreasing() {
        let u = Pdf::uniform();
        let x = and(&u, &u, Correlation::Unknown);
        let fit = fit_hyperbola(&x);
        let d0 = fit.density(0.0);
        let d5 = fit.density(0.5);
        let d1 = fit.density(1.0);
        assert!(d0 > d5 && d5 > d1, "AND hyperbola decreases: {d0} {d5} {d1}");
        assert!(d1 > 0.0);
    }
}
