//! Operator-chain notation from the paper's figures.
//!
//! Figure 2.1/2.2 label distributions with chains like `&X`, `&&X`, `|X`,
//! `&|X`, `|||||&X`: the unary operators `&` and `|` are "a shorthand for
//! X&Y, X|Y in cases when p_X ≡ p_Y", applied right to left (innermost op
//! is adjacent to `X`). `~` is NOT.

use crate::ops::{and, not, or, Correlation};
use crate::pdf::Pdf;

/// Applies a chain spec such as `"&&X"` or `"|&X"` to a base distribution.
///
/// Each `&` replaces the current distribution `p` with `AND(p, p')` where
/// `p'` is an independent predicate with the same distribution; `|`
/// likewise with OR; `~` mirrors. Operators apply right to left.
///
/// # Panics
/// On characters other than `&`, `|`, `~`, and a trailing `X`.
pub fn apply_spec(spec: &str, base: &Pdf, corr: Correlation) -> Pdf {
    let body = spec.strip_suffix('X').unwrap_or(spec);
    let mut current = base.clone();
    for op in body.chars().rev() {
        current = match op {
            '&' => and(&current, &current, corr),
            '|' => or(&current, &current, corr),
            '~' => not(&current),
            other => panic!("unknown operator {other:?} in spec {spec:?}"),
        };
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_identity() {
        let u = Pdf::uniform();
        assert_eq!(apply_spec("X", &u, Correlation::Unknown), u);
    }

    #[test]
    fn single_ops_match_direct_calls() {
        let u = Pdf::uniform();
        assert_eq!(
            apply_spec("&X", &u, Correlation::Unknown),
            and(&u, &u, Correlation::Unknown)
        );
        assert_eq!(
            apply_spec("|X", &u, Correlation::Unknown),
            or(&u, &u, Correlation::Unknown)
        );
        assert_eq!(apply_spec("~X", &u, Correlation::Unknown), not(&u));
    }

    #[test]
    fn chain_applies_right_to_left() {
        let u = Pdf::uniform();
        let inner = or(&u, &u, Correlation::Unknown);
        let expect = and(&inner, &inner, Correlation::Unknown);
        assert_eq!(apply_spec("&|X", &u, Correlation::Unknown), expect);
    }

    #[test]
    #[should_panic(expected = "unknown operator")]
    fn bad_spec_panics() {
        apply_spec("?X", &Pdf::uniform(), Correlation::Unknown);
    }
}
