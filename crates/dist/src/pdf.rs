//! Discretized probability densities over the selectivity interval `[0,1]`.
//!
//! The paper's numeric procedure: "we first transform pX, pY into two
//! groups of single weighted point estimates, then calculate points and
//! weights for all combinations … and then convert a 'point/weight' version
//! into an approximate probability density function." A [`Pdf`] is exactly
//! that point/weight representation: probability mass on an even grid of
//! `n` points `sᵢ = i/(n−1)` including both endpoints — the endpoints
//! matter because L-shaped results concentrate half their mass hard against
//! `s = 0` or `s = 1`.

/// Default grid resolution.
pub const DEFAULT_BINS: usize = 201;

/// A probability mass function on the grid `i/(n−1)`, `i = 0..n`,
/// normalized to total mass 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Pdf {
    weights: Vec<f64>,
}

impl Pdf {
    /// Uniform distribution (total ignorance of selectivity).
    pub fn uniform() -> Self {
        Self::uniform_with_bins(DEFAULT_BINS)
    }

    /// Uniform distribution on a custom grid size.
    pub fn uniform_with_bins(n: usize) -> Self {
        assert!(n >= 2);
        Pdf {
            weights: vec![1.0 / n as f64; n],
        }
    }

    /// All mass at one selectivity point (a fully trusted estimate).
    pub fn point(s: f64) -> Self {
        Self::point_with_bins(s, DEFAULT_BINS)
    }

    /// Point mass on a custom grid.
    pub fn point_with_bins(s: f64, n: usize) -> Self {
        let mut pdf = Pdf {
            weights: vec![0.0; n],
        };
        pdf.deposit(s, 1.0);
        pdf
    }

    /// Truncated-normal bell: an estimate with mean `m` and standard error
    /// `e` (the paper's Figure 2.2 uses `m = 0.2`, `e = 0.005`).
    pub fn bell(m: f64, e: f64) -> Self {
        Self::bell_with_bins(m, e, DEFAULT_BINS)
    }

    /// Bell on a custom grid.
    pub fn bell_with_bins(m: f64, e: f64, n: usize) -> Self {
        assert!(e > 0.0);
        let mut weights = vec![0.0; n];
        for (i, w) in weights.iter_mut().enumerate() {
            let s = i as f64 / (n - 1) as f64;
            let z = (s - m) / e;
            *w = (-0.5 * z * z).exp();
        }
        let mut pdf = Pdf { weights };
        pdf.normalize();
        pdf
    }

    /// Builds a Pdf from observed samples in `[0,1]` (used to model the
    /// empirical cost distributions of strategy runs).
    pub fn from_samples(samples: &[f64]) -> Self {
        Self::from_samples_with_bins(samples, DEFAULT_BINS)
    }

    /// Sample histogram on a custom grid.
    pub fn from_samples_with_bins(samples: &[f64], n: usize) -> Self {
        assert!(!samples.is_empty());
        let mut pdf = Pdf {
            weights: vec![0.0; n],
        };
        let w = 1.0 / samples.len() as f64;
        for &s in samples {
            pdf.deposit(s, w);
        }
        pdf
    }

    /// Grid size.
    pub fn bins(&self) -> usize {
        self.weights.len()
    }

    /// Selectivity of grid point `i`.
    pub fn s_at(&self, i: usize) -> f64 {
        i as f64 / (self.bins() - 1) as f64
    }

    /// Probability mass at grid point `i`.
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// The raw weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Density view: mass × (n−1), comparable to a continuous pdf.
    pub fn density(&self, i: usize) -> f64 {
        self.weights[i] * (self.bins() - 1) as f64
    }

    /// Deposits probability mass `w` at selectivity `s`, linearly split
    /// between the two neighbouring grid points.
    pub fn deposit(&mut self, s: f64, w: f64) {
        let n = self.bins();
        let x = s.clamp(0.0, 1.0) * (n - 1) as f64;
        let lo = x.floor() as usize;
        let frac = x - lo as f64;
        if lo + 1 < n {
            self.weights[lo] += w * (1.0 - frac);
            self.weights[lo + 1] += w * frac;
        } else {
            self.weights[n - 1] += w;
        }
    }

    /// Rescales to total mass 1.
    pub fn normalize(&mut self) {
        let total: f64 = self.weights.iter().sum();
        assert!(total > 0.0, "cannot normalize zero distribution");
        for w in &mut self.weights {
            *w /= total;
        }
    }

    /// Total mass (1.0 up to rounding for any constructed Pdf).
    pub fn total_mass(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Mean selectivity.
    pub fn mean(&self) -> f64 {
        self.weights
            .iter()
            .enumerate()
            .map(|(i, w)| self.s_at(i) * w)
            .sum()
    }

    /// Variance of selectivity.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.weights
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let d = self.s_at(i) - m;
                d * d * w
            })
            .sum()
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Probability that selectivity ≤ `s`.
    pub fn mass_below(&self, s: f64) -> f64 {
        self.weights
            .iter()
            .enumerate()
            .filter(|(i, _)| self.s_at(*i) <= s)
            .map(|(_, w)| w)
            .sum()
    }

    /// Smallest grid selectivity `q` with `mass_below(q) >= p` — the
    /// quantile function. `quantile(0.5)` is the knee `c` of the paper's
    /// L-shape reasoning (Section 3).
    pub fn quantile(&self, p: f64) -> f64 {
        let mut acc = 0.0;
        for (i, w) in self.weights.iter().enumerate() {
            acc += w;
            if acc >= p - 1e-12 {
                return self.s_at(i);
            }
        }
        1.0
    }

    /// Mirror-image distribution: `p(1−s)` — the paper's NOT transform.
    pub fn mirrored(&self) -> Pdf {
        let mut weights = self.weights.clone();
        weights.reverse();
        Pdf { weights }
    }

    /// Conditional mean of selectivity given `s <= cutoff` (the paper's
    /// `m₂`: mean cost of the cheap half of an L-shape). Returns `None` if
    /// no mass lies at or below `cutoff`.
    pub fn mean_below(&self, cutoff: f64) -> Option<f64> {
        let mut mass = 0.0;
        let mut acc = 0.0;
        for (i, w) in self.weights.iter().enumerate() {
            let s = self.s_at(i);
            if s <= cutoff {
                mass += w;
                acc += s * w;
            }
        }
        (mass > 1e-12).then(|| acc / mass)
    }

    /// Conditional mean of selectivity given `s > cutoff`.
    pub fn mean_above(&self, cutoff: f64) -> Option<f64> {
        let mut mass = 0.0;
        let mut acc = 0.0;
        for (i, w) in self.weights.iter().enumerate() {
            let s = self.s_at(i);
            if s > cutoff {
                mass += w;
                acc += s * w;
            }
        }
        (mass > 1e-12).then(|| acc / mass)
    }

    pub(crate) fn zero_like(&self) -> Pdf {
        Pdf {
            weights: vec![0.0; self.bins()],
        }
    }

    pub(crate) fn weights_mut(&mut self) -> &mut Vec<f64> {
        &mut self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_has_mass_one_and_mean_half() {
        let u = Pdf::uniform();
        assert!((u.total_mass() - 1.0).abs() < 1e-9);
        assert!((u.mean() - 0.5).abs() < 1e-9);
        // Uniform variance is 1/12.
        assert!((u.variance() - 1.0 / 12.0).abs() < 1e-3);
    }

    #[test]
    fn point_mass_concentrates() {
        let p = Pdf::point(0.3);
        assert!((p.mean() - 0.3).abs() < 1e-9);
        assert!(p.std_dev() < 0.01);
        assert!((p.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bell_matches_parameters() {
        let b = Pdf::bell(0.2, 0.02);
        assert!((b.mean() - 0.2).abs() < 1e-3);
        assert!((b.std_dev() - 0.02).abs() < 5e-3);
    }

    #[test]
    fn mirror_is_involution_and_flips_mean() {
        let b = Pdf::bell(0.2, 0.05);
        let m = b.mirrored();
        assert!((m.mean() - 0.8).abs() < 1e-3);
        assert_eq!(m.mirrored(), b);
    }

    #[test]
    fn quantile_and_mass_below_agree() {
        let u = Pdf::uniform();
        let med = u.quantile(0.5);
        assert!((med - 0.5).abs() < 0.01);
        assert!(u.mass_below(med) >= 0.5);
    }

    #[test]
    fn deposit_splits_mass_linearly() {
        let mut p = Pdf::uniform_with_bins(11).zero_like();
        p.deposit(0.25, 1.0); // between grid points 2 (0.2) and 3 (0.3)
        assert!((p.weight(2) - 0.5).abs() < 1e-9);
        assert!((p.weight(3) - 0.5).abs() < 1e-9);
        assert!((p.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn from_samples_histogram() {
        let p = Pdf::from_samples(&[0.1, 0.1, 0.9, 0.1]);
        assert!(p.mass_below(0.2) > 0.7);
        assert!((p.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn conditional_means_bracket_cutoff() {
        let u = Pdf::uniform();
        let below = u.mean_below(0.5).unwrap();
        let above = u.mean_above(0.5).unwrap();
        assert!((below - 0.25).abs() < 0.01);
        assert!((above - 0.75).abs() < 0.01);
        assert!(u.mean_below(-0.1).is_none());
    }

    #[test]
    fn endpoint_deposits_stay_in_range() {
        let mut p = Pdf::point(0.0);
        p.deposit(1.0, 1.0);
        p.normalize();
        assert!((p.total_mass() - 1.0).abs() < 1e-9);
        assert!(p.weight(0) > 0.4 && p.weight(p.bins() - 1) > 0.4);
    }
}
