#![forbid(unsafe_code)]

//! # rdb-dist
//!
//! The probability-distribution study of Section 2 of *Dynamic Query
//! Optimization in Rdb/VMS* (Antoshenkov, ICDE 1993), as an executable
//! library.
//!
//! A Boolean restriction's **selectivity** `s = r/c ∈ [0,1]` is modelled as
//! a probability density over `[0,1]` ([`Pdf`]). The paper computes how the
//! operators NOT, AND, OR (and JOIN, which behaves like AND on unique join
//! keys) transform such densities under *correlation assumptions*
//! `c ∈ [−1,+1]` between the operand predicates, including the **unknown
//! correlation** case — a uniform mixture over all `c` — and demonstrates:
//!
//! * uniform operands turn into crescent / triangle / L-shaped results
//!   whose skewness grows with operator count and AND/OR disbalance
//!   (Figure 2.1, reproduced by [`figures::figure_2_1`]);
//! * bell-shaped (well-estimated) operands degrade stepwise into the same
//!   L-shapes (Figure 2.2, reproduced by [`figures::figure_2_2`]);
//! * the asymmetric results are well approximated by truncated hyperbolas,
//!   with fit error shrinking as skewness grows ([`hyperbola`]).
//!
//! The same numeric machinery (point-weight transforms, exactly as the
//! paper describes) backs the runtime cost-distribution reasoning of the
//! competition model in `rdb-competition`.

pub mod figures;
pub mod hyperbola;
pub mod ops;
pub mod pdf;
pub mod shape;
pub mod spec;

pub use hyperbola::{fit_hyperbola, HyperbolaFit};
pub use ops::{and, join_unique, not, or, Correlation};
pub use pdf::Pdf;
pub use shape::ShapeSummary;
pub use spec::apply_spec;
