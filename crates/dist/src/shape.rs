//! Shape metrics for selectivity/cost distributions.
//!
//! The paper's dynamic optimizer is "engineering around the L-shape
//! distribution": half the probability hugs one end of the interval while
//! the rest spreads over a long tail. [`ShapeSummary`] quantifies that —
//! the knee (median), the mass concentrated near each end, and a skewness
//! measure — and [`ShapeSummary::is_l_shaped_at_zero`] implements the
//! detector the competition tactics reason with.

use crate::pdf::Pdf;

/// Descriptive statistics of a distribution's shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapeSummary {
    /// Mean.
    pub mean: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Third standardized moment (0 for symmetric shapes).
    pub skewness: f64,
    /// Median — the paper's L-shape knee `c` with 50% of mass below it.
    pub median: f64,
    /// Probability mass at or below selectivity 0.1.
    pub mass_low: f64,
    /// Probability mass above selectivity 0.9.
    pub mass_high: f64,
}

impl ShapeSummary {
    /// Computes the summary of `pdf`.
    pub fn of(pdf: &Pdf) -> ShapeSummary {
        let mean = pdf.mean();
        let std_dev = pdf.std_dev();
        let skewness = if std_dev > 1e-12 {
            (0..pdf.bins())
                .map(|i| {
                    let z = (pdf.s_at(i) - mean) / std_dev;
                    z * z * z * pdf.weight(i)
                })
                .sum()
        } else {
            0.0
        };
        ShapeSummary {
            mean,
            std_dev,
            skewness,
            median: pdf.quantile(0.5),
            mass_low: pdf.mass_below(0.1),
            mass_high: 1.0 - pdf.mass_below(0.9),
        }
    }

    /// The paper's dominant case: ≥ ~50% of mass concentrated in a small
    /// region near zero with the rest spread broadly to the right.
    pub fn is_l_shaped_at_zero(&self) -> bool {
        self.median <= 0.15 && self.mass_low >= 0.45 && self.skewness > 0.5
    }

    /// The OR-dominated mirror case: concentration at the highest point.
    pub fn is_l_shaped_at_one(&self) -> bool {
        self.median >= 0.85 && self.mass_high >= 0.45 && self.skewness < -0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{and, or, Correlation};

    #[test]
    fn uniform_is_symmetric_not_l_shaped() {
        let s = ShapeSummary::of(&Pdf::uniform());
        assert!(s.skewness.abs() < 0.05);
        assert!(!s.is_l_shaped_at_zero());
        assert!(!s.is_l_shaped_at_one());
    }

    #[test]
    fn repeated_ands_produce_l_shape_at_zero() {
        let u = Pdf::uniform();
        let mut x = u.clone();
        for _ in 0..3 {
            x = and(&x, &x, Correlation::Unknown);
        }
        let s = ShapeSummary::of(&x);
        assert!(s.is_l_shaped_at_zero(), "shape: {s:?}");
    }

    #[test]
    fn repeated_ors_produce_l_shape_at_one() {
        let u = Pdf::uniform();
        let mut x = u.clone();
        for _ in 0..3 {
            x = or(&x, &x, Correlation::Unknown);
        }
        let s = ShapeSummary::of(&x);
        assert!(s.is_l_shaped_at_one(), "shape: {s:?}");
    }

    #[test]
    fn mirror_flips_l_shape_side() {
        let u = Pdf::uniform();
        let mut x = u.clone();
        for _ in 0..3 {
            x = and(&x, &x, Correlation::Unknown);
        }
        let m = ShapeSummary::of(&x.mirrored());
        assert!(m.is_l_shaped_at_one());
    }

    #[test]
    fn bell_has_tiny_spread() {
        let s = ShapeSummary::of(&Pdf::bell(0.2, 0.005));
        assert!(s.std_dev < 0.01);
        assert!((s.median - 0.2).abs() < 0.01);
    }
}
