//! The paper's operator transforms on selectivity distributions.
//!
//! For predicates `X`, `Y` with selectivities `s_X`, `s_Y` and an assumed
//! correlation `c ∈ [−1, +1]`, the combined selectivity is linearly
//! interpolated between three anchor formulas (paper Section 2):
//!
//! | c  | `s_{X&Y}` |
//! |----|-----------|
//! | −1 | `max(0, s_X + s_Y − 1)` (smallest possible intersection) |
//! |  0 | `s_X · s_Y` (independence) |
//! | +1 | `min(s_X, s_Y)` (largest possible intersection) |
//!
//! OR is reduced to AND through De Morgan: `X|Y = ~(~X & ~Y)`, making
//! `p_{X|Y}` the mirror image of the AND of mirrored operands. The
//! **unknown correlation** assumption (notated `X&̄Y` in the paper) is a
//! uniform mixture of all correlations in `[−1, +1]`.

use crate::pdf::Pdf;

/// Correlation assumption between two operand predicates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Correlation {
    /// A specific assumed correlation in `[−1, +1]`.
    Exact(f64),
    /// Uniform mixture over `[−1, +1]` — the paper's "unknown correlation".
    Unknown,
}

/// Number of correlation points used to integrate the Unknown mixture.
const MIXTURE_POINTS: usize = 21;

/// Combined selectivity of `X AND Y` for given operand selectivities under
/// correlation `c`.
pub fn and_selectivity(sx: f64, sy: f64, c: f64) -> f64 {
    debug_assert!((-1.0..=1.0).contains(&c));
    let independent = sx * sy;
    if c >= 0.0 {
        let pos = sx.min(sy);
        independent + c * (pos - independent)
    } else {
        let neg = (sx + sy - 1.0).max(0.0);
        independent + (-c) * (neg - independent)
    }
}

/// NOT transform: the mirror image `p(1−s)`.
pub fn not(x: &Pdf) -> Pdf {
    x.mirrored()
}

/// AND transform of two independent *estimates* under a correlation
/// assumption. (The operands' estimate distributions are independent even
/// when the predicates themselves are assumed correlated — the correlation
/// enters through the selectivity combination formula.)
pub fn and(x: &Pdf, y: &Pdf, corr: Correlation) -> Pdf {
    match corr {
        Correlation::Exact(c) => and_exact(x, y, c),
        Correlation::Unknown => {
            let mut acc = x.zero_like();
            for k in 0..MIXTURE_POINTS {
                let c = -1.0 + 2.0 * k as f64 / (MIXTURE_POINTS - 1) as f64;
                let part = and_exact(x, y, c);
                let share = 1.0 / MIXTURE_POINTS as f64;
                for (i, w) in part.weights().iter().enumerate() {
                    acc.weights_mut()[i] += w * share;
                }
            }
            acc.normalize();
            acc
        }
    }
}

fn and_exact(x: &Pdf, y: &Pdf, c: f64) -> Pdf {
    assert_eq!(x.bins(), y.bins(), "operand grids must match");
    let mut out = x.zero_like();
    for i in 0..x.bins() {
        let wx = x.weight(i);
        if wx == 0.0 {
            continue;
        }
        let sx = x.s_at(i);
        for j in 0..y.bins() {
            let wy = y.weight(j);
            if wy == 0.0 {
                continue;
            }
            let sy = y.s_at(j);
            out.deposit(and_selectivity(sx, sy, c), wx * wy);
        }
    }
    out.normalize();
    out
}

/// OR transform via De Morgan: `p_{X|Y}` is mirror-symmetrical to
/// `p_{~X & ~Y}`.
pub fn or(x: &Pdf, y: &Pdf, corr: Correlation) -> Pdf {
    not(&and(&not(x), &not(y), corr))
}

/// JOIN on a key unique in all underlying tables "behaves almost
/// identically to the AND operator" (paper Section 2) once selectivity is
/// defined over the key domain; this alias documents that equivalence.
pub fn join_unique(x: &Pdf, y: &Pdf, corr: Correlation) -> Pdf {
    and(x, y, corr)
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNKNOWN: Correlation = Correlation::Unknown;
    const INDEP: Correlation = Correlation::Exact(0.0);

    #[test]
    fn and_selectivity_anchors() {
        assert_eq!(and_selectivity(0.5, 0.5, 0.0), 0.25);
        assert_eq!(and_selectivity(0.5, 0.5, 1.0), 0.5);
        assert_eq!(and_selectivity(0.5, 0.5, -1.0), 0.0);
        assert_eq!(and_selectivity(0.8, 0.7, -1.0), 0.5);
        // Interpolation is monotone in c.
        let lo = and_selectivity(0.6, 0.4, -0.5);
        let mid = and_selectivity(0.6, 0.4, 0.0);
        let hi = and_selectivity(0.6, 0.4, 0.5);
        assert!(lo < mid && mid < hi);
    }

    #[test]
    fn and_of_points_is_point_product_under_independence() {
        let x = Pdf::point(0.4);
        let y = Pdf::point(0.5);
        let z = and(&x, &y, INDEP);
        assert!((z.mean() - 0.2).abs() < 0.01);
        assert!(z.std_dev() < 0.02);
    }

    #[test]
    fn and_plus_one_correlation_of_identical_points_is_identity() {
        let x = Pdf::point(0.3);
        let z = and(&x, &x, Correlation::Exact(1.0));
        assert!((z.mean() - 0.3).abs() < 0.01);
    }

    #[test]
    fn or_of_points_independence_matches_formula() {
        // s_{X|Y} = 1 - (1-sx)(1-sy) = 0.7 + 0.2 - 0.14 = 0.76
        let x = Pdf::point(0.7);
        let y = Pdf::point(0.2);
        let z = or(&x, &y, INDEP);
        assert!((z.mean() - 0.76).abs() < 0.01, "mean {}", z.mean());
    }

    #[test]
    fn de_morgan_symmetry() {
        // p_{X|Y} must be the mirror of p_{~X & ~Y}.
        let x = Pdf::uniform();
        let or_xy = or(&x, &x, UNKNOWN);
        let and_mirror = not(&and(&not(&x), &not(&x), UNKNOWN));
        for i in 0..x.bins() {
            assert!((or_xy.weight(i) - and_mirror.weight(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn and_of_uniforms_shifts_mass_to_zero() {
        let u = Pdf::uniform();
        let z = and(&u, &u, UNKNOWN);
        assert!(z.mean() < u.mean(), "AND lowers mean selectivity");
        assert!(
            z.mass_below(0.25) > 0.5,
            "paper: ANDs concentrate ~50% near zero (got {})",
            z.mass_below(0.25)
        );
    }

    #[test]
    fn or_of_uniforms_shifts_mass_to_one() {
        let u = Pdf::uniform();
        let z = or(&u, &u, UNKNOWN);
        assert!(z.mean() > u.mean());
        assert!(z.mass_below(0.75) < 0.5, "ORs mirror the AND concentration");
    }

    #[test]
    fn negative_correlation_pushes_and_lower() {
        let u = Pdf::uniform();
        let pos = and(&u, &u, Correlation::Exact(0.9));
        let neg = and(&u, &u, Correlation::Exact(-0.9));
        assert!(neg.mean() < pos.mean());
    }

    #[test]
    fn results_remain_normalized() {
        let u = Pdf::uniform();
        let b = Pdf::bell(0.2, 0.01);
        for z in [
            and(&u, &b, UNKNOWN),
            or(&u, &b, UNKNOWN),
            and(&b, &b, Correlation::Exact(-1.0)),
            join_unique(&u, &u, INDEP),
        ] {
            assert!((z.total_mass() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn balanced_and_or_restores_symmetry() {
        // Paper: "A mixture of equal numbers of ANDs/ORs restores the
        // original symmetry" — &|X should have mean near 0.5 again.
        let u = Pdf::uniform();
        let or1 = or(&u, &u, UNKNOWN);
        let balanced = and(&or1, &or1, UNKNOWN);
        assert!(
            (balanced.mean() - 0.5).abs() < 0.1,
            "balanced mean {}",
            balanced.mean()
        );
    }
}
